"""Step 2 — DoE-driven measurement of security indicators.

For every run of a DoE design (each run = one system configuration,
i.e. one variant choice per diversified component kind), the plan
executes a Monte-Carlo batch of attack campaigns and records both the
per-replication responses (long format, for ANOVA) and the per-run
indicator summaries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Mapping, Optional

import numpy as np

from repro.attacks.campaign import AttackCampaign, CampaignConfig
from repro.attacks.profiles import ThreatProfile
from repro.core.indicators import IndicatorSet, compute_indicators
from repro.diversity.catalog import VariantCatalog
from repro.diversity.config import configuration_from_run
from repro.doe.design import Design
from repro.scada.network import SCADANetwork


@dataclass
class MeasurementResult:
    """Output of a measurement plan.

    Attributes:
        records: Long-format per-replication records; each has the
            factor levels plus responses ``success`` (0/1), ``tta``
            (restricted: horizon when censored), ``ttsf`` (restricted)
            and ``final_ratio``.
        run_indicators: Per-design-run indicator sets, parallel to
            ``design.runs``.
        design: The executed design.
        replications: Replications per run.
    """

    records: List[Dict[str, object]]
    run_indicators: List[IndicatorSet]
    design: Design
    replications: int

    def response_names(self) -> List[str]:
        """The response keys present in the records."""
        return ["success", "tta", "ttsf", "final_ratio"]


class MeasurementPlan:
    """Executes a DoE design against a SCADA system.

    Args:
        network_factory: Builds a *fresh* network per run (configurations
            mutate hosts, so each run must start clean).
        catalog: Variant catalog.
        threat: Threat profile to simulate.
        design: The DoE design; factor names must be
            :class:`~repro.scada.components.ComponentKind` values and
            levels variant names.
        replications: Campaign replications per design run.
        campaign_config: Campaign parameters.
    """

    def __init__(
        self,
        network_factory: Callable[[], SCADANetwork],
        catalog: VariantCatalog,
        threat: ThreatProfile,
        design: Design,
        replications: int = 30,
        campaign_config: Optional[CampaignConfig] = None,
    ) -> None:
        if replications < 1:
            raise ValueError(f"replications must be >= 1, got {replications}")
        self.network_factory = network_factory
        self.catalog = catalog
        self.threat = threat
        self.design = design
        self.replications = replications
        self.campaign_config = campaign_config or CampaignConfig()

    def execute(self, rng: np.random.Generator) -> MeasurementResult:
        """Run every design run and collect responses."""
        records: List[Dict[str, object]] = []
        run_indicators: List[IndicatorSet] = []
        horizon = self.campaign_config.horizon
        for run_index, run in enumerate(self.design.runs):
            network = self.network_factory()
            config = configuration_from_run(
                network, run.as_dict(), label=f"run_{run_index}"
            )
            config.apply(network)
            campaign = AttackCampaign(
                network, self.catalog, self.threat, self.campaign_config
            )
            outcomes = campaign.run_batch(self.replications, rng)
            indicators = compute_indicators(outcomes)
            run_indicators.append(indicators)
            for outcome in outcomes:
                record: Dict[str, object] = dict(run.as_dict())
                record["run"] = run_index
                record["success"] = 1.0 if outcome.success else 0.0
                record["tta"] = (
                    outcome.success_time if outcome.success else horizon
                )
                record["ttsf"] = (
                    outcome.detection_time
                    if not math.isnan(outcome.detection_time)
                    else horizon
                )
                record["final_ratio"] = outcome.compromised_ratio_at(horizon)
                records.append(record)
        return MeasurementResult(
            records=records,
            run_indicators=run_indicators,
            design=self.design,
            replications=self.replications,
        )
