"""Sensitivity analysis.

The paper's case study reports *"a preliminary sensitivity analysis"*
over component resilience.  This module provides model-agnostic tools:

* :func:`oat_sweep` — one-at-a-time sweeps over factor levels.
* :func:`tornado` — ranks factors by the response range of their sweep.
* :func:`morris` — Morris elementary-effects screening for continuous
  parameters (e.g. stage success probabilities).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Mapping, Sequence, Tuple

import numpy as np

Evaluator = Callable[[Mapping[str, Hashable]], float]


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated point of an OAT sweep."""

    factor: str
    level: Hashable
    response: float


def oat_sweep(
    evaluator: Evaluator,
    baseline: Mapping[str, Hashable],
    levels: Mapping[str, Sequence[Hashable]],
) -> List[SweepPoint]:
    """One-at-a-time sweep: vary each factor alone around the baseline.

    Args:
        evaluator: Maps a full factor assignment to a scalar response.
        baseline: The reference assignment.
        levels: Candidate levels per factor to sweep.

    Returns:
        One :class:`SweepPoint` per (factor, level) evaluated, including
        the baseline level.
    """
    points: List[SweepPoint] = []
    for factor, factor_levels in levels.items():
        if factor not in baseline:
            raise ValueError(f"factor {factor!r} missing from baseline")
        for level in factor_levels:
            assignment = dict(baseline)
            assignment[factor] = level
            points.append(
                SweepPoint(factor, level, float(evaluator(assignment)))
            )
    return points


def tornado(points: Sequence[SweepPoint]) -> List[Tuple[str, float, float, float]]:
    """Tornado ranking from OAT sweep points.

    Returns:
        ``(factor, low, high, range)`` tuples sorted by descending range
        — the classic tornado-diagram ordering.
    """
    by_factor: Dict[str, List[float]] = {}
    for p in points:
        by_factor.setdefault(p.factor, []).append(p.response)
    rows = [
        (factor, min(vals), max(vals), max(vals) - min(vals))
        for factor, vals in by_factor.items()
    ]
    return sorted(rows, key=lambda r: -r[3])


@dataclass
class MorrisResult:
    """Morris screening result for one parameter.

    Attributes:
        name: Parameter name.
        mu_star: Mean absolute elementary effect (overall influence).
        sigma: Standard deviation of effects (non-linearity /
            interaction involvement).
        entropy: When :func:`morris` drew fresh OS entropy for an
            omitted ``rng``, the ``SeedSequence`` entropy it drew —
            recorded so the screening can be reproduced exactly with
            ``default_rng(SeedSequence(entropy))``; ``None`` when the
            caller supplied the generator.
    """

    name: str
    mu_star: float
    sigma: float
    entropy: int | None = None


def morris(
    evaluator: Callable[[np.ndarray], float],
    bounds: Sequence[Tuple[float, float]],
    names: Sequence[str],
    n_trajectories: int = 10,
    n_levels: int = 4,
    rng: np.random.Generator | None = None,
) -> List[MorrisResult]:
    """Morris elementary-effects screening.

    Args:
        evaluator: Maps a parameter vector to a scalar response.
        bounds: ``(low, high)`` per parameter.
        names: Parameter names (parallel to ``bounds``).
        n_trajectories: Number of random trajectories r.
        n_levels: Grid levels p (delta = p / (2(p-1))).
        rng: Random generator.  When omitted, fresh OS entropy is drawn
            via ``SeedSequence()`` and recorded on every returned
            result's ``entropy`` field (same policy as ``Session`` run
            seeds), keeping ad-hoc screenings replayable.

    Returns:
        One :class:`MorrisResult` per parameter, sorted by descending
        ``mu_star``.

    Raises:
        ValueError: On mismatched inputs.
    """
    if len(bounds) != len(names):
        raise ValueError("bounds and names must have equal length")
    entropy: int | None = None
    if rng is None:
        seed_seq = np.random.SeedSequence()
        entropy = int(seed_seq.entropy)
        rng = np.random.default_rng(seed_seq)
    k = len(bounds)
    delta = n_levels / (2.0 * (n_levels - 1))
    grid = np.linspace(0.0, 1.0 - delta, n_levels // 2)
    lows = np.array([b[0] for b in bounds])
    spans = np.array([b[1] - b[0] for b in bounds])

    effects: Dict[int, List[float]] = {i: [] for i in range(k)}
    for _ in range(n_trajectories):
        x = grid[rng.integers(0, len(grid), size=k)].astype(float)
        order = rng.permutation(k)
        y_prev = evaluator(lows + x * spans)
        for index in order:
            direction = 1.0 if x[index] + delta <= 1.0 else -1.0
            x[index] += direction * delta
            y_new = evaluator(lows + x * spans)
            effects[int(index)].append((y_new - y_prev) / (direction * delta))
            y_prev = y_new

    results = []
    for i, name in enumerate(names):
        arr = np.array(effects[i]) if effects[i] else np.array([0.0])
        results.append(
            MorrisResult(
                name=name,
                mu_star=float(np.abs(arr).mean()),
                sigma=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
                entropy=entropy,
            )
        )
    return sorted(results, key=lambda r: -r.mu_star)
