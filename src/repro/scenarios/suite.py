"""Suite execution: fan scenarios out, cache them, compare them.

:class:`ScenarioSuite` runs a set of scenarios on a
:class:`~repro.exec.runner.ExperimentRunner`.  Each scenario becomes one
work unit seeded with its own centrally spawned
:class:`~numpy.random.SeedSequence` child, so a suite's per-scenario
records are a pure function of ``(root seed, scenario position)`` —
bit-identical across the ``serial``, ``thread`` and ``process`` backends
and any worker count, exactly like the single-study guarantees of
:mod:`repro.exec`.

Work units ship scenario *specs* (plain dicts) to the workers and return
:class:`ScenarioRunResult` — a columnar
:class:`~repro.results.RecordTable` plus summary scalars, all
picklable — rather than full :class:`~repro.core.study.StudyResult`
objects, whose SAN models hold non-picklable marking callables.

Two scale features ride on the same seeding discipline:

* **Content-addressed caching** (``cache_dir=``): each scenario's table
  is stored under the SHA-256 digest of its spec plus seed material, so
  a re-run with a warm cache loads results from disk (bit-identical to
  a cold run) and *any* change to a spec field or the seed is a miss.
* **Sharding** (``shard=(index, count)``): seeds are spawned for the
  *full* scenario list before the shard is selected, so shards executed
  anywhere — even on different machines sharing a cache directory —
  merge (:meth:`SuiteResult.merge`) into exactly the single-run result.
"""

from __future__ import annotations

import logging
import traceback as _traceback
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.core.assessment import assess
from repro.core.measurement import MeasurementPlan
from repro.core.report import comparison_table
from repro.core.study import DiversityStudy
from repro.exec.runner import ExperimentRunner
from repro.exec.seeding import SeedLike, as_seed_sequence, spawn_sequences
from repro.results import (
    RESPONSE_COLUMNS,
    SUMMARY_METRICS,
    Provenance,
    RecordTable,
    ResultCache,
    SuiteStreamingAggregator,
    TableRecordsMixin,
    content_key,
    provenance_for,
    summarize_records,
)
from repro.results.streaming import LazyPart, ShardedRecordTable
from repro.scenarios.journal import RunJournal
from repro.scenarios.registry import SCENARIOS, ScenarioRegistry
from repro.scenarios.spec import Scenario
from repro.telemetry.core import (
    TelemetrySnapshot,
    emit_event,
    metric_inc,
    trace,
)

_LOG = logging.getLogger(__name__)

#: Sentinel distinguishing "argument omitted" from an explicit value in
#: deprecated signatures.
_UNSET = object()

#: Columns of the cross-scenario comparison, in report order — the
#: summary keys produced by :func:`repro.results.summarize_records`.
COMPARISON_METRICS = SUMMARY_METRICS


@dataclass
class ScenarioRunResult(TableRecordsMixin):
    """One scenario's outcome inside a suite.

    Attributes:
        scenario: The executed spec.
        table: Columnar long-format per-replication measurement records
            (factor levels + ``success``/``tta``/``ttsf``/
            ``final_ratio`` responses).
        summary: Scalar metrics over the records — ``psa`` (fraction of
            successful campaigns), restricted means ``tta_mean`` /
            ``ttsf_mean`` (censored values count the horizon) and
            ``final_ratio_mean``.
        top_targets: ``{response: component}`` — the first recommended
            diversification target per response (``"--"`` when the
            assessment is degenerate, e.g. zero-variance smoke runs).
        design_name: Name of the executed DoE design.
        n_runs: Design runs executed.
        replications: Replications per run.
        provenance: Reproduction record (spec digest, seed material,
            backend, library version) — set by the executing suite or
            session; ``None`` on results rebuilt from bare cache entries
            outside a run.
        telemetry: Observability snapshot of the run that produced this
            result (set by :class:`~repro.api.Session` when telemetry
            is enabled).  Like ``Provenance.execution``, deliberately
            outside the spec digest — never part of cache keys.
    """

    scenario: Scenario
    table: RecordTable
    summary: Dict[str, float]
    top_targets: Dict[str, str]
    design_name: str
    n_runs: int
    replications: int
    provenance: Optional[Provenance] = None
    telemetry: Optional[TelemetrySnapshot] = None


def _summarize(
    records: "RecordTable | Sequence[Mapping[str, object]]",
) -> Dict[str, float]:
    """Scalar comparison metrics over long-format records.

    Thin alias of :func:`repro.results.summarize_records` (columnar);
    kept under its historical name for suite-internal use and tests.
    """
    return summarize_records(records)


def _execute_scenario(
    spec: Dict[str, object],
    seq: np.random.SeedSequence,
    max_records_in_ram: Optional[int] = None,
    batch_size: Optional[int] = None,
) -> ScenarioRunResult:
    """Suite work unit: rebuild the scenario, run its study, summarize.

    Module-level so the ``process`` backend can pickle it.  The study
    itself runs with spawn-per-replication seeding (serial within the
    unit), so the result depends only on ``(spec, seq, batch_size)`` —
    ``max_records_in_ram`` only decides whether the measurement's table
    spills to shards, never what it contains.  ``batch_size`` selects
    the mega-batch campaign lowering (``1`` is bit-identical to the
    scalar path, larger vectorized batches are distribution-identical).
    """
    scenario = Scenario.from_dict(spec)
    study = DiversityStudy.from_scenario(scenario)
    factors = study.build_factors()
    design = study.build_design(factors)
    plan = MeasurementPlan(
        study.network_factory,
        study.catalog,
        study.threat,
        design,
        replications=study.replications,
        campaign_config=study.campaign_config,
        batch_size=batch_size,
    )
    with trace("scenario.execute"):
        measurement = plan.execute(seq, max_records_in_ram=max_records_in_ram)
    top_targets: Dict[str, str] = {}
    try:
        assessment = assess(measurement)
        for response in measurement.response_names():
            targets = assessment.recommended_diversification(response)
            top_targets[response] = targets[0] if targets else "--"
    except Exception:
        # Degenerate measurements (e.g. zero-variance smoke runs) must
        # not sink the whole suite; the comparison shows "--" instead.
        top_targets = {
            response: "--" for response in measurement.response_names()
        }
    return ScenarioRunResult(
        scenario=scenario,
        table=measurement.table,
        summary=_summarize(measurement.table),
        top_targets=top_targets,
        design_name=design.name,
        n_runs=design.n_runs,
        replications=study.replications,
    )


@dataclass
class ScenarioFailure:
    """One scenario's failure inside an ``on_error="skip"`` suite run.

    Attributes:
        scenario: Name of the failed scenario.
        error_type: Exception class name.
        message: ``str(exception)``.
        traceback: Full formatted traceback from where the scenario
            actually ran (worker-side for pool backends).
        position: The scenario's position in the executed suite order
            (set by the coordinating suite).
    """

    scenario: str
    error_type: str
    message: str
    traceback: str
    position: int = -1

    def __str__(self) -> str:
        return (
            f"scenario {self.scenario!r} failed: "
            f"{self.error_type}: {self.message}"
        )


def _execute_scenario_guarded(
    spec: Dict[str, object],
    seq: np.random.SeedSequence,
    max_records_in_ram: Optional[int] = None,
    batch_size: Optional[int] = None,
) -> "ScenarioRunResult | ScenarioFailure":
    """Failure-isolating suite work unit (``on_error="skip"``).

    A scenario whose execution raises returns a picklable
    :class:`ScenarioFailure` carrying the full formatted traceback
    instead of sinking its sibling scenarios.  Module-level so the
    ``process`` backend can pickle it.  Injected infrastructure faults
    fire in the chunk gates *outside* this guard, so fault-tolerant
    retry still sees them.
    """
    try:
        return _execute_scenario(spec, seq, max_records_in_ram, batch_size)
    except Exception as exc:
        return ScenarioFailure(
            scenario=str(spec.get("name", "<unnamed>")),
            error_type=type(exc).__name__,
            message=str(exc),
            traceback=_traceback.format_exc(),
        )


def _scenario_response_view(chunk: RecordTable, name: str) -> RecordTable:
    """One chunk's response columns prefixed with a scenario column."""
    n = len(chunk)
    scenario_column = np.empty(n, dtype=object)
    scenario_column[:] = [name] * n
    columns: Dict[str, np.ndarray] = {"scenario": scenario_column}
    for column in RESPONSE_COLUMNS:
        columns[column] = chunk.column(column)
    return RecordTable(columns)


@dataclass
class SuiteResult:
    """All scenario results of one suite run, in suite order.

    Attributes:
        results: Per-scenario results.
        provenance: Reproduction record of the whole suite run (digest
            over every executed spec, root seed material, backend);
            ``None`` on merged shard results, whose parts each carry
            their own provenance.
        aggregate: Streaming per-scenario/pooled summaries, present
            when the run was given streaming aggregators (see
            :meth:`ScenarioSuite.run`); :meth:`merge` combines them in
            O(summary).
        telemetry: Observability snapshot of the run (set by
            :class:`~repro.api.Session` when telemetry is enabled);
            outside the spec digest, ``None`` on merged results.
        errors: Per-scenario failures of an ``on_error="skip"`` run, in
            suite order, each carrying the full formatted traceback of
            where the scenario actually failed.  Empty on fully
            successful runs (and always under ``on_error="raise"``,
            which surfaces the first failure as an exception instead).
    """

    results: List[ScenarioRunResult]
    provenance: Optional[Provenance] = None
    aggregate: Optional[SuiteStreamingAggregator] = None
    telemetry: Optional[TelemetrySnapshot] = None
    errors: List[ScenarioFailure] = field(default_factory=list)

    @property
    def table(self) -> RecordTable:
        """Response rows of every scenario as one columnar table.

        Factor columns differ across scenarios, so the combined table
        carries the shared response columns prefixed with a
        ``scenario`` name column — the cross-scenario long format the
        comparison metrics aggregate over.  Built once and cached on
        the instance (treat ``results`` as immutable after the run;
        :meth:`merge` always produces a fresh ``SuiteResult``).

        When any per-scenario table is sharded (a streaming run), the
        combined table is a lazily chained
        :class:`~repro.results.streaming.ShardedRecordTable` whose
        per-scenario views load one chunk at a time — the in-RAM
        default stays a plain eager :class:`RecordTable`.
        """
        cached = getattr(self, "_combined_table", None)
        if cached is not None:
            return cached
        streaming = any(
            isinstance(r.table, ShardedRecordTable) for r in self.results
        )
        if streaming:
            parts: List[LazyPart] = []
            schema = ["scenario", *RESPONSE_COLUMNS]
            sources: List[RecordTable] = []
            for result in self.results:
                name = result.scenario.name
                table = result.table
                sources.append(table)
                raw_parts = (
                    table.parts
                    if isinstance(table, ShardedRecordTable)
                    else None
                )
                if raw_parts is None:
                    parts.append(
                        LazyPart(
                            lambda t=table, nm=name: (
                                _scenario_response_view(t, nm)
                            ),
                            len(table),
                            schema,
                        )
                    )
                    continue
                for part in raw_parts:
                    parts.append(
                        LazyPart(
                            lambda p=part, nm=name: (
                                _scenario_response_view(p.load(), nm)
                            ),
                            part.n_rows,
                            schema,
                        )
                    )
            combined: RecordTable = ShardedRecordTable(
                parts, keepalive=sources
            )
        else:
            combined = RecordTable.concat(
                [
                    _scenario_response_view(result.table, result.scenario.name)
                    for result in self.results
                ]
            )
        self._combined_table = combined
        return combined

    @property
    def summary(self) -> Dict[str, float]:
        """Scalar comparison metrics pooled over every scenario's rows."""
        return summarize_records(self.table)

    def names(self) -> List[str]:
        """Scenario names in execution order."""
        return [r.scenario.name for r in self.results]

    def by_name(self, name: str) -> ScenarioRunResult:
        """The result for scenario ``name``.

        Raises:
            ValueError: If the suite did not run ``name``.
        """
        for result in self.results:
            if result.scenario.name == name:
                return result
        raise ValueError(
            f"scenario {name!r} not in suite; ran: {', '.join(self.names())}"
        )

    def tables_by_scenario(self) -> Dict[str, RecordTable]:
        """``{scenario name: columnar record table}``."""
        return {r.scenario.name: r.table for r in self.results}

    def records_by_scenario(self) -> Dict[str, List[Dict[str, object]]]:
        """``{scenario name: dict records}`` for determinism checks
        (materialized from the columnar tables)."""
        return {r.scenario.name: r.records for r in self.results}

    @classmethod
    def merge(cls, parts: Sequence["SuiteResult"]) -> "SuiteResult":
        """Combine shard results into one suite result.

        Because shard seeds are spawned from the full scenario list,
        merging every shard of a suite reproduces the unsharded result
        (up to scenario order, which follows the parts given).

        The merge itself is O(summary): result lists concatenate,
        streaming aggregator states (when every part carries one) fold
        together state-wise, and the combined ``table`` of a streaming
        run chains shard views lazily — no records are copied or read
        here.

        Raises:
            ValueError: If two parts ran the same scenario.
        """
        results = [r for part in parts for r in part.results]
        names = [r.scenario.name for r in results]
        duplicates = sorted({n for n in names if names.count(n) > 1})
        if duplicates:
            raise ValueError(
                f"duplicate scenario(s) across shards: "
                f"{', '.join(duplicates)}"
            )
        aggregate = None
        if parts and all(part.aggregate is not None for part in parts):
            aggregate = SuiteStreamingAggregator(
                quantiles=parts[0].aggregate.quantiles
            )
            for part in parts:
                aggregate.merge(part.aggregate)
        return cls(
            results=results,
            aggregate=aggregate,
            errors=[e for part in parts for e in part.errors],
        )

    def comparison_report(self) -> str:
        """The cross-scenario comparison table plus per-scenario hints."""
        summaries = {
            result.scenario.name: dict(
                result.summary,
                runs=result.n_runs,
                reps=result.replications,
            )
            for result in self.results
        }
        blocks = [
            comparison_table(
                "scenario",
                summaries,
                columns=("runs", "reps", *COMPARISON_METRICS),
                title=(
                    f"Cross-scenario comparison ({len(self.results)} "
                    "scenarios; restricted means, censored at each "
                    "scenario's horizon)"
                ),
            ),
            "",
            "First diversification target (TTA | detection):",
        ]
        for result in self.results:
            blocks.append(
                f"  {result.scenario.name}: "
                f"{result.top_targets.get('tta', '--')} | "
                f"{result.top_targets.get('ttsf', '--')}"
            )
        return "\n".join(blocks)


class ScenarioSuite:
    """Run several scenarios and compare them.

    Args:
        scenarios: Scenario specs, names (looked up in ``registry``),
            or a mix.
        backend: Execution backend for the scenario fan-out
            (``"serial"`` / ``"thread"`` / ``"process"``), validated at
            construction.  *Deprecated:* prefer passing a ``runner`` —
            or using :class:`repro.api.Session`, which owns one — so
            execution resources are configured in one place.  The old
            signature keeps working with bit-identical results.
        n_workers: Worker-pool width for parallel backends.
            *Deprecated* alongside ``backend``.
        registry: Where names are resolved (default: the library-wide
            catalog).
        runner: The :class:`~repro.exec.runner.ExperimentRunner` to fan
            scenarios out on; takes precedence over
            ``backend``/``n_workers``.  Results never depend on the
            runner, only wall-clock does.
        cache: A ready :class:`~repro.results.ResultCache` instance;
            takes precedence over ``cache_dir``.
        cache_dir: Enable content-addressed result caching in this
            directory: a scenario whose ``(spec, seed material)`` digest
            is already cached loads from disk instead of executing, and
            fresh executions are stored.  Effective with explicit seeds
            (``seed=None`` draws fresh entropy, so every digest is
            new).  Cached and executed results are bit-identical.
        shard: ``(index, count)`` — execute only the scenarios at
            positions ``index, index + count, ...`` of the suite while
            seeding as if the whole suite ran; combine shard results
            with :meth:`SuiteResult.merge`.

    Example:
        >>> suite = ScenarioSuite(["smoke"])
        >>> result = suite.run(seed=7)
        >>> result.names()
        ['smoke']
    """

    def __init__(
        self,
        scenarios: Sequence[Union[str, Scenario]],
        backend: str = _UNSET,
        n_workers: Optional[int] = _UNSET,
        registry: Optional[ScenarioRegistry] = None,
        cache_dir: Optional[str] = None,
        shard: Optional[Tuple[int, int]] = None,
        *,
        runner: Optional[ExperimentRunner] = None,
        cache: Optional[ResultCache] = None,
    ) -> None:
        # Warn only for explicit *non-default* plumbing values: passing
        # backend="serial" / n_workers=None spells out the old defaults
        # and deserves no deprecation noise.
        explicit_backend = backend is not _UNSET and backend != "serial"
        explicit_workers = n_workers is not _UNSET and n_workers is not None
        backend = "serial" if backend is _UNSET else backend
        n_workers = None if n_workers is _UNSET else n_workers
        if runner is None and (explicit_backend or explicit_workers):
            warnings.warn(
                "ScenarioSuite(backend=..., n_workers=...) is deprecated; "
                "pass runner=ExperimentRunner(...) or use "
                "repro.api.Session, which owns the runner (results are "
                "bit-identical either way)",
                DeprecationWarning,
                stacklevel=2,
            )
        registry = registry or SCENARIOS
        if not scenarios:
            raise ValueError("a suite needs at least one scenario")
        resolved: List[Scenario] = []
        for item in scenarios:
            resolved.append(
                registry.get(item) if isinstance(item, str) else item
            )
        names = [s.name for s in resolved]
        duplicates = sorted({n for n in names if names.count(n) > 1})
        if duplicates:
            raise ValueError(
                f"duplicate scenario(s) in suite: {', '.join(duplicates)}"
            )
        if shard is not None:
            index, count = shard
            if count < 1 or not 0 <= index < count:
                raise ValueError(
                    f"shard must be (index, count) with "
                    f"0 <= index < count, got {shard!r}"
                )
        self.scenarios = resolved
        self.runner = runner or ExperimentRunner(backend, n_workers)
        if cache is not None:
            self.cache = cache
        else:
            self.cache = ResultCache(cache_dir) if cache_dir else None
        self.shard = shard

    @staticmethod
    def _cache_key(
        spec: "Scenario | Dict[str, object]",
        seq: np.random.SeedSequence,
        batch_size: Optional[int] = None,
    ) -> str:
        """Content address of one scenario execution.

        Covers the full spec dict, the spawned child's seed material and
        the library version, so any spec-field or seed change — or an
        upgrade that may have changed simulation semantics — invalidates
        the entry instead of serving stale pre-upgrade results.  The hot
        path hands the pre-computed spec dict in; a bare
        :class:`Scenario` is accepted for convenience.

        ``batch_size`` joins the key only when set: mega-batch records
        are distribution-identical but not bit-identical to scalar
        records, so the two must not share cache entries — while keys
        for ordinary scalar runs stay byte-stable across library
        versions that predate batching.
        """
        import repro

        if isinstance(spec, Scenario):
            spec = spec.to_dict()
        payload: Dict[str, object] = {
            "format": 1,
            "library": repro.__version__,
            "scenario": spec,
            "entropy": str(seq.entropy),
            "spawn_key": [int(k) for k in seq.spawn_key],
            "pool_size": int(seq.pool_size),
        }
        if batch_size is not None:
            payload["batch_size"] = int(batch_size)
        return content_key(payload)

    @staticmethod
    def _result_meta(result: ScenarioRunResult) -> Dict[str, object]:
        return {
            "scenario": result.scenario.to_dict(),
            "summary": result.summary,
            "top_targets": result.top_targets,
            "design_name": result.design_name,
            "n_runs": result.n_runs,
            "replications": result.replications,
        }

    @staticmethod
    def _result_from_cache(
        table: RecordTable, meta: Mapping[str, object]
    ) -> ScenarioRunResult:
        return ScenarioRunResult(
            scenario=Scenario.from_dict(dict(meta["scenario"])),
            table=table,
            summary=dict(meta["summary"]),
            top_targets=dict(meta["top_targets"]),
            design_name=str(meta["design_name"]),
            n_runs=int(meta["n_runs"]),
            replications=int(meta["replications"]),
        )

    def run(
        self,
        seed: SeedLike = None,
        on_result: Optional[Callable[[ScenarioRunResult], None]] = None,
        cancel: Optional[Any] = None,
        aggregators: Sequence[Callable[[ScenarioRunResult], None]] = (),
        max_records_in_ram: Optional[int] = None,
        batch_size: Optional[int] = None,
        on_error: str = "raise",
        journal: Optional[Union[str, Path, RunJournal]] = None,
    ) -> SuiteResult:
        """Execute every (selected) scenario; records depend only on
        ``seed``, each scenario's position in the full suite and
        ``batch_size``, never on backend, worker count, sharding or
        cache state.

        Args:
            seed: Root seed (``None`` draws fresh entropy; the drawn
                entropy is recorded in the result's provenance).
            on_result: Optional progress hook, called once per finished
                scenario (cache hits included) in the coordinating
                thread.  Never affects results.
            cancel: Optional cancellation event (``is_set()`` protocol);
                once set, the run raises
                :class:`~repro.exec.backends.ExecutionCancelled`.
            aggregators: Callables fed every finished
                :class:`ScenarioRunResult` (cache hits included) in the
                coordinating thread — e.g.
                :class:`~repro.results.SuiteStreamingAggregator`, whose
                running summaries then land on the result's
                ``aggregate`` field.  Never affect records.
            max_records_in_ram: When set, each scenario's measurement
                table spills to ``.npz`` shards beyond this many rows
                (see :meth:`MeasurementPlan.execute
                <repro.core.measurement.MeasurementPlan.execute>`) and
                cache entries are stored as shard manifests.  Records
                are identical either way; the ``process`` backend
                materializes tables at the pickling boundary, so use
                ``serial``/``thread`` for out-of-core suites.
            batch_size: When set, campaign replications advance through
                the mega-batch lowering in lanes of this size (see
                :class:`repro.attacks.batched.CampaignBatchEngine`).
                ``batch_size=1`` records are bit-identical to the
                scalar path; larger vectorized batches are
                distribution-identical, so batched and scalar runs use
                distinct cache entries.  Recorded on
                ``provenance.execution``, outside the spec digest.
            on_error: ``"raise"`` (default) surfaces the first scenario
                failure as an exception, as always.  ``"skip"``
                isolates failures per scenario: failed scenarios are
                recorded in :attr:`SuiteResult.errors` (with full
                tracebacks) while their siblings run to completion.
                Either way, the scenarios that do complete are
                bit-identical.
            journal: Optional run-journal path (or
                :class:`~repro.scenarios.journal.RunJournal`): every
                completed scenario is checkpointed to a small atomic
                JSON file keyed by the run's content identity, so a
                crashed or cancelled run re-invoked with the same
                journal (and a cache) resumes from where it died.
                Advisory only — results never depend on it.
        """
        from repro.exec import validate_batch_args

        if batch_size is not None:
            validate_batch_args(1, batch_size)
        if on_error not in ("raise", "skip"):
            raise ValueError(
                f'on_error must be "raise" or "skip", got {on_error!r}'
            )
        with trace("suite.run"):
            return self._run_impl(
                seed,
                on_result,
                cancel,
                aggregators,
                max_records_in_ram,
                batch_size,
                on_error,
                journal,
            )

    def _run_identity(
        self,
        spec_dicts: Sequence[Dict[str, object]],
        root: np.random.SeedSequence,
        batch_size: Optional[int],
    ) -> str:
        """Content identity of one suite run, for the run journal.

        Everything that decides the records is covered — specs in
        order, root seed material, shard selection, batch size — so a
        journal can only ever be resumed by the run it belongs to.
        """
        return content_key(
            {
                "format": 1,
                "scenarios": list(spec_dicts),
                "entropy": str(root.entropy),
                "spawn_key": [int(k) for k in root.spawn_key],
                "shard": list(self.shard) if self.shard else None,
                "batch_size": batch_size,
            }
        )

    def _run_impl(
        self,
        seed: SeedLike,
        on_result: Optional[Callable[[ScenarioRunResult], None]],
        cancel: Optional[Any],
        aggregators: Sequence[Callable[[ScenarioRunResult], None]],
        max_records_in_ram: Optional[int],
        batch_size: Optional[int] = None,
        on_error: str = "raise",
        journal: Optional[Union[str, Path, RunJournal]] = None,
    ) -> SuiteResult:
        root = as_seed_sequence(seed)
        sequences = spawn_sequences(root, len(self.scenarios))
        pairs = list(zip(self.scenarios, sequences))
        if self.shard is not None:
            index, count = self.shard
            pairs = pairs[index::count]
        # One spec dict per scenario, shared by the cache key, the
        # worker dispatch and the provenance payloads (asdict() is the
        # dominant cost of a fully warm cached run).
        spec_dicts = [scenario.to_dict() for scenario, _ in pairs]
        execution = (
            {"batch_size": batch_size} if batch_size is not None else None
        )

        if journal is not None and not isinstance(journal, RunJournal):
            journal = RunJournal(journal)
        if journal is not None:
            resumable = journal.begin(
                self._run_identity(spec_dicts, root, batch_size),
                len(pairs),
                meta={"scenarios": [s.name for s, _ in pairs]},
            )
            if resumable:
                # The journal itself holds no results; the completed
                # positions resume through their cache entries below
                # (a missing entry simply re-executes, bit-identically).
                metric_inc("journal.resumed_scenarios", len(resumable))
                emit_event(
                    "journal.resume",
                    path=str(journal.path),
                    completed=len(resumable),
                    total=len(pairs),
                )

        def stamp(position: int, result: ScenarioRunResult) -> None:
            """Attach reproduction provenance (before any hook sees it)."""
            result.provenance = provenance_for(
                {"scenario": spec_dicts[position]},
                pairs[position][1],
                self.runner,
                source="scenario_suite",
                execution=execution,
            )

        errors_by_position: Dict[int, ScenarioFailure] = {}

        def deliver(
            position: int,
            outcome: "ScenarioRunResult | ScenarioFailure",
            key: str,
            executed: bool,
        ) -> None:
            """Stream one finished outcome: stamp it, checkpoint it
            (cache + journal), feed every hook.  Failures are recorded
            and isolated instead."""
            if isinstance(outcome, ScenarioFailure):
                outcome.position = position
                errors_by_position[position] = outcome
                metric_inc("suite.scenario_failures")
                emit_event(
                    "suite.scenario_failed",
                    scenario=outcome.scenario,
                    error=f"{outcome.error_type}: {outcome.message}",
                )
                _LOG.warning("%s (on_error=skip; continuing)", outcome)
                return
            stamp(position, outcome)
            if executed and self.cache is not None:
                self._store_in_cache(key, outcome)
            if journal is not None:
                journal.mark(position, key)
            for aggregator in aggregators:
                aggregator(outcome)
            if on_result is not None:
                on_result(outcome)

        results: List[Optional[ScenarioRunResult]] = [None] * len(pairs)
        pending: List[Tuple[int, np.random.SeedSequence, str]] = []
        for position, (scenario, seq) in enumerate(pairs):
            if cancel is not None and cancel.is_set():
                # The cache loop must honor the cancel contract too —
                # a fully warm suite otherwise completes uncancellably.
                from repro.exec.backends import ExecutionCancelled

                raise ExecutionCancelled(
                    f"suite cancelled after {position} of "
                    f"{len(pairs)} scenarios"
                )
            key = ""
            if self.cache is not None:
                key = self._cache_key(
                    spec_dicts[position], seq, batch_size
                )
                hit = self.cache.load(key)
                if hit is not None:
                    metric_inc("cache.hit")
                    _LOG.debug(
                        "cache hit: scenario %s (key %.12s...)",
                        scenario.name, key,
                    )
                    results[position] = self._result_from_cache(*hit)
                    deliver(position, results[position], key, executed=False)
                    continue
                metric_inc("cache.miss")
                _LOG.debug(
                    "cache miss: scenario %s (key %.12s...)",
                    scenario.name, key,
                )
            pending.append((position, seq, key))
        if pending:
            worker = (
                _execute_scenario
                if on_error == "raise"
                else _execute_scenario_guarded
            )
            unit_hook = None
            # Delivering as units complete (not after the whole map)
            # is what makes cache + journal real checkpoints: a crash
            # mid-suite keeps everything already finished.
            if (
                on_result is not None
                or aggregators
                or self.cache is not None
                or journal is not None
                or on_error == "skip"
            ):

                def unit_hook(
                    index: int,
                    outcome: "ScenarioRunResult | ScenarioFailure",
                ) -> None:
                    deliver(
                        pending[index][0],
                        outcome,
                        pending[index][2],
                        executed=True,
                    )

            executed = self.runner.map(
                worker,
                [
                    (spec_dicts[position], seq, max_records_in_ram, batch_size)
                    for position, seq, _ in pending
                ],
                # repro: allow[PICKLE001] on_result runs in the coordinator process and is never pickled to workers
                on_result=unit_hook,
                cancel=cancel,
            )
            for (position, _, key), outcome in zip(pending, executed):
                if isinstance(outcome, ScenarioFailure):
                    continue  # recorded by the hook
                results[position] = outcome
                if outcome.provenance is None:  # no hook stamped it
                    stamp(position, outcome)
        if journal is not None:
            journal.finish()
        suite_aggregate = next(
            (
                a
                for a in aggregators
                if isinstance(a, SuiteStreamingAggregator)
            ),
            None,
        )
        return SuiteResult(
            results=[r for r in results if r is not None],
            provenance=provenance_for(
                {
                    "scenarios": spec_dicts,
                    "shard": list(self.shard) if self.shard else None,
                },
                root,
                self.runner,
                source="scenario_suite",
                execution=execution,
            ),
            aggregate=suite_aggregate,
            errors=[
                errors_by_position[p] for p in sorted(errors_by_position)
            ],
        )

    def _store_in_cache(self, key: str, result: ScenarioRunResult) -> None:
        """Cache one executed result; never let caching sink the run.

        Tables whose factor levels are not ``.npz``-serializable
        (non-string object columns, e.g. tuple levels) and filesystem
        failures (full/read-only cache directory) simply skip the
        cache — the executed result is still returned.
        """
        try:
            self.cache.store(key, result.table, self._result_meta(result))
        except (TypeError, OSError) as exc:
            metric_inc("cache.store_failures")
            _LOG.debug(
                "cache store failed for scenario %s: %s",
                result.scenario.name, exc,
            )
