"""Suite execution: fan scenarios out and compare them.

:class:`ScenarioSuite` runs a set of scenarios on a
:class:`~repro.exec.runner.ExperimentRunner`.  Each scenario becomes one
work unit seeded with its own centrally spawned
:class:`~numpy.random.SeedSequence` child, so a suite's per-scenario
records are a pure function of ``(root seed, scenario position)`` —
bit-identical across the ``serial``, ``thread`` and ``process`` backends
and any worker count, exactly like the single-study guarantees of
:mod:`repro.exec`.

Work units ship scenario *specs* (plain dicts) to the workers and return
:class:`ScenarioRunResult` — records plus summary scalars, all
picklable — rather than full :class:`~repro.core.study.StudyResult`
objects, whose SAN models hold non-picklable marking callables.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.assessment import assess
from repro.core.measurement import MeasurementPlan
from repro.core.report import comparison_table
from repro.core.study import DiversityStudy
from repro.exec.runner import ExperimentRunner
from repro.exec.seeding import SeedLike, as_seed_sequence, spawn_sequences
from repro.scenarios.registry import SCENARIOS, ScenarioRegistry
from repro.scenarios.spec import Scenario

#: Columns of the cross-scenario comparison, in report order.
COMPARISON_METRICS = (
    "psa", "tta_mean", "ttsf_mean", "final_ratio_mean",
)


@dataclass
class ScenarioRunResult:
    """One scenario's outcome inside a suite.

    Attributes:
        scenario: The executed spec.
        records: Long-format per-replication measurement records
            (factor levels + ``success``/``tta``/``ttsf``/
            ``final_ratio`` responses).
        summary: Scalar metrics over the records — ``psa`` (fraction of
            successful campaigns), restricted means ``tta_mean`` /
            ``ttsf_mean`` (censored values count the horizon) and
            ``final_ratio_mean``.
        top_targets: ``{response: component}`` — the first recommended
            diversification target per response (``"--"`` when the
            assessment is degenerate, e.g. zero-variance smoke runs).
        design_name: Name of the executed DoE design.
        n_runs: Design runs executed.
        replications: Replications per run.
    """

    scenario: Scenario
    records: List[Dict[str, object]]
    summary: Dict[str, float]
    top_targets: Dict[str, str]
    design_name: str
    n_runs: int
    replications: int


def _summarize(records: Sequence[Dict[str, object]]) -> Dict[str, float]:
    """Scalar comparison metrics over long-format records."""
    if not records:
        return {metric: float("nan") for metric in COMPARISON_METRICS}
    means = {
        response: statistics.fmean(float(r[response]) for r in records)
        for response in ("success", "tta", "ttsf", "final_ratio")
    }
    return {
        "psa": means["success"],
        "tta_mean": means["tta"],
        "ttsf_mean": means["ttsf"],
        "final_ratio_mean": means["final_ratio"],
    }


def _execute_scenario(
    spec: Dict[str, object], seq: np.random.SeedSequence
) -> ScenarioRunResult:
    """Suite work unit: rebuild the scenario, run its study, summarize.

    Module-level so the ``process`` backend can pickle it.  The study
    itself runs with spawn-per-replication seeding (serial within the
    unit), so the result depends only on ``(spec, seq)``.
    """
    scenario = Scenario.from_dict(spec)
    study = DiversityStudy.from_scenario(scenario)
    factors = study.build_factors()
    design = study.build_design(factors)
    plan = MeasurementPlan(
        study.network_factory,
        study.catalog,
        study.threat,
        design,
        replications=study.replications,
        campaign_config=study.campaign_config,
    )
    measurement = plan.execute(seq)
    top_targets: Dict[str, str] = {}
    try:
        assessment = assess(measurement)
        for response in measurement.response_names():
            targets = assessment.recommended_diversification(response)
            top_targets[response] = targets[0] if targets else "--"
    except Exception:
        # Degenerate measurements (e.g. zero-variance smoke runs) must
        # not sink the whole suite; the comparison shows "--" instead.
        top_targets = {
            response: "--" for response in measurement.response_names()
        }
    return ScenarioRunResult(
        scenario=scenario,
        records=measurement.records,
        summary=_summarize(measurement.records),
        top_targets=top_targets,
        design_name=design.name,
        n_runs=design.n_runs,
        replications=study.replications,
    )


@dataclass
class SuiteResult:
    """All scenario results of one suite run, in suite order."""

    results: List[ScenarioRunResult]

    def names(self) -> List[str]:
        """Scenario names in execution order."""
        return [r.scenario.name for r in self.results]

    def by_name(self, name: str) -> ScenarioRunResult:
        """The result for scenario ``name``.

        Raises:
            ValueError: If the suite did not run ``name``.
        """
        for result in self.results:
            if result.scenario.name == name:
                return result
        raise ValueError(
            f"scenario {name!r} not in suite; ran: {', '.join(self.names())}"
        )

    def records_by_scenario(self) -> Dict[str, List[Dict[str, object]]]:
        """``{scenario name: records}`` for determinism checks."""
        return {r.scenario.name: r.records for r in self.results}

    def comparison_report(self) -> str:
        """The cross-scenario comparison table plus per-scenario hints."""
        summaries = {
            result.scenario.name: dict(
                result.summary,
                runs=result.n_runs,
                reps=result.replications,
            )
            for result in self.results
        }
        blocks = [
            comparison_table(
                "scenario",
                summaries,
                columns=("runs", "reps", *COMPARISON_METRICS),
                title=(
                    f"Cross-scenario comparison ({len(self.results)} "
                    "scenarios; restricted means, censored at each "
                    "scenario's horizon)"
                ),
            ),
            "",
            "First diversification target (TTA | detection):",
        ]
        for result in self.results:
            blocks.append(
                f"  {result.scenario.name}: "
                f"{result.top_targets.get('tta', '--')} | "
                f"{result.top_targets.get('ttsf', '--')}"
            )
        return "\n".join(blocks)


class ScenarioSuite:
    """Run several scenarios and compare them.

    Args:
        scenarios: Scenario specs, names (looked up in ``registry``),
            or a mix.
        backend: Execution backend for the scenario fan-out
            (``"serial"`` / ``"thread"`` / ``"process"``), validated at
            construction.
        n_workers: Worker-pool width for parallel backends.
        registry: Where names are resolved (default: the library-wide
            catalog).

    Example:
        >>> suite = ScenarioSuite(["smoke"])
        >>> result = suite.run(seed=7)
        >>> result.names()
        ['smoke']
    """

    def __init__(
        self,
        scenarios: Sequence[Union[str, Scenario]],
        backend: str = "serial",
        n_workers: Optional[int] = None,
        registry: Optional[ScenarioRegistry] = None,
    ) -> None:
        registry = registry or SCENARIOS
        if not scenarios:
            raise ValueError("a suite needs at least one scenario")
        resolved: List[Scenario] = []
        for item in scenarios:
            resolved.append(
                registry.get(item) if isinstance(item, str) else item
            )
        names = [s.name for s in resolved]
        duplicates = sorted({n for n in names if names.count(n) > 1})
        if duplicates:
            raise ValueError(
                f"duplicate scenario(s) in suite: {', '.join(duplicates)}"
            )
        self.scenarios = resolved
        self.runner = ExperimentRunner(backend, n_workers)

    def run(self, seed: SeedLike = None) -> SuiteResult:
        """Execute every scenario; records depend only on ``seed`` and
        each scenario's position, never on backend or worker count."""
        sequences = spawn_sequences(
            as_seed_sequence(seed), len(self.scenarios)
        )
        results = self.runner.map(
            _execute_scenario,
            [
                (scenario.to_dict(), seq)
                for scenario, seq in zip(self.scenarios, sequences)
            ],
        )
        return SuiteResult(results=results)
