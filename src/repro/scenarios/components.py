"""Name registries for the building blocks a scenario composes.

A :class:`~repro.scenarios.spec.Scenario` is pure data — it references
topologies, threat profiles, variant catalogs and physical plants *by
name* so the spec survives JSON round-trips and process-pool pickling.
This module owns the four name → factory maps and their resolvers.

Every registry is extensible: downstream code can register its own
topology or threat under a new name and reference it from scenario
specs, exactly like the built-ins.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.attacks.campaign import _default_plant as _cooling_plant
from repro.attacks.profiles import (
    ThreatProfile,
    duqu_like,
    flame_like,
    stuxnet_like,
)
from repro.diversity.catalog import VariantCatalog, default_catalog
from repro.scada.network import SCADANetwork
from repro.scada.plant.feeder import PowerFeeder
from repro.scada.plant.process import PhysicalProcess
from repro.scada.topologies import scope_cooling_topology, smart_grid_feeder

TopologyFactory = Callable[..., SCADANetwork]
ThreatFactory = Callable[..., ThreatProfile]
CatalogFactory = Callable[[], VariantCatalog]
PlantFactory = Callable[[], PhysicalProcess]

_TOPOLOGIES: Dict[str, TopologyFactory] = {
    "scope_cooling": scope_cooling_topology,
    "smart_grid_feeder": smart_grid_feeder,
}

_THREATS: Dict[str, ThreatFactory] = {
    "stuxnet_like": stuxnet_like,
    "duqu_like": duqu_like,
    "flame_like": flame_like,
}

_CATALOGS: Dict[str, CatalogFactory] = {
    "default": default_catalog,
}

_PLANTS: Dict[str, PlantFactory] = {
    "cooling": _cooling_plant,
    "feeder": PowerFeeder,
}


def _resolve(registry: Dict[str, Callable], what: str, name: str) -> Callable:
    try:
        return registry[name]
    except KeyError:
        raise ValueError(
            f"unknown {what} {name!r}; expected one of "
            f"{', '.join(sorted(registry))}"
        ) from None


def resolve_topology(name: str) -> TopologyFactory:
    """Look up a topology factory by registry name."""
    return _resolve(_TOPOLOGIES, "topology", name)


def resolve_threat(name: str) -> ThreatFactory:
    """Look up a threat-profile factory by registry name."""
    return _resolve(_THREATS, "threat", name)


def resolve_catalog(name: str) -> CatalogFactory:
    """Look up a variant-catalog factory by registry name."""
    return _resolve(_CATALOGS, "catalog", name)


def resolve_plant(name: str) -> PlantFactory:
    """Look up a physical-plant factory by registry name."""
    return _resolve(_PLANTS, "plant", name)


def _register(
    registry: Dict[str, Callable], what: str, name: str, factory: Callable
) -> None:
    if name in registry:
        raise ValueError(f"{what} {name!r} is already registered")
    registry[name] = factory


def register_topology(name: str, factory: TopologyFactory) -> None:
    """Register a topology factory under ``name`` (must be new)."""
    _register(_TOPOLOGIES, "topology", name, factory)


def register_threat(name: str, factory: ThreatFactory) -> None:
    """Register a threat-profile factory under ``name`` (must be new)."""
    _register(_THREATS, "threat", name, factory)


def register_catalog(name: str, factory: CatalogFactory) -> None:
    """Register a variant-catalog factory under ``name`` (must be new)."""
    _register(_CATALOGS, "catalog", name, factory)


def register_plant(name: str, factory: PlantFactory) -> None:
    """Register a physical-plant factory under ``name`` (must be new)."""
    _register(_PLANTS, "plant", name, factory)


def available_topologies() -> List[str]:
    """Registered topology names, sorted."""
    return sorted(_TOPOLOGIES)


def available_threats() -> List[str]:
    """Registered threat names, sorted."""
    return sorted(_THREATS)


def available_catalogs() -> List[str]:
    """Registered catalog names, sorted."""
    return sorted(_CATALOGS)


def available_plants() -> List[str]:
    """Registered plant names, sorted."""
    return sorted(_PLANTS)
