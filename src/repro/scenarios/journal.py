"""Atomic run journal: crash-resumable progress for suite runs.

A :class:`RunJournal` is a tiny JSON file recording which scenario
positions of a suite run have completed, keyed by a content *identity*
of the run (specs + root seed material + shard + batch size).  Combined
with the content-addressed :class:`~repro.results.ResultCache` — which
holds the actual results — it makes a crashed or cancelled run
resumable: re-running the same suite with the same journal path skips
straight through the completed scenarios via cache hits and picks up
where the previous attempt died.

The journal is deliberately *advisory*: correctness always comes from
the cache keys (a marked position whose cache entry is missing simply
re-executes, bit-identically).  Every update is an atomic
write-temp-then-rename, so a crash mid-update leaves either the old or
the new journal, never a torn one.
"""

from __future__ import annotations

import json
import logging
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Set, Union

_LOG = logging.getLogger(__name__)

#: Journal file format version.
JOURNAL_FORMAT = 1


class RunJournal:
    """Checkpoint file tracking one suite run's completed scenarios.

    Args:
        path: Where the journal lives.  A fresh run creates it; a rerun
            of the *same* suite (same identity) resumes from it; a
            different suite at the same path overwrites it.

    Lifecycle: :meth:`begin` once per run (returns the positions a
    previous attempt already completed), :meth:`mark` after every
    finished scenario, :meth:`finish` when the run completes.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._identity: Optional[str] = None
        self._state: Dict[str, Any] = {}

    # ---- lifecycle ---------------------------------------------------

    def begin(
        self,
        identity: str,
        total: int,
        meta: Optional[Mapping[str, Any]] = None,
    ) -> Set[int]:
        """Open the journal for a run and return resumable positions.

        If the file already records a run with the same ``identity``,
        its completed positions are returned (the resume set) and
        marking continues where it left off; anything else — no file,
        a different identity, or an unreadable/torn file — starts a
        fresh journal.
        """
        self._identity = identity
        previous = self._load()
        if (
            previous is not None
            and previous.get("identity") == identity
            and isinstance(previous.get("completed"), dict)
        ):
            self._state = previous
            self._state["status"] = "resumed"
            completed = {
                int(position) for position in self._state["completed"]
            }
            _LOG.info(
                "journal %s: resuming run (%d of %d scenario(s) already "
                "complete)",
                self.path, len(completed), total,
            )
        else:
            self._state = {
                "format": JOURNAL_FORMAT,
                "identity": identity,
                "total": int(total),
                "status": "running",
                "meta": dict(meta) if meta else {},
                "completed": {},
            }
            completed = set()
        self._write()
        return completed

    def mark(self, position: int, cache_key: str = "") -> None:
        """Record scenario ``position`` as complete (idempotent)."""
        if self._identity is None:
            raise RuntimeError("RunJournal.mark() before begin()")
        key = str(int(position))
        if key in self._state["completed"]:
            return
        self._state["completed"][key] = cache_key
        self._write()

    def finish(self) -> None:
        """Mark the whole run complete."""
        if self._identity is None:
            raise RuntimeError("RunJournal.finish() before begin()")
        self._state["status"] = "done"
        self._write()

    # ---- introspection -----------------------------------------------

    @property
    def completed(self) -> Set[int]:
        """Positions currently recorded as complete."""
        return {int(p) for p in self._state.get("completed", {})}

    @property
    def status(self) -> str:
        """``running`` / ``resumed`` / ``done`` (``""`` before begin)."""
        return str(self._state.get("status", ""))

    def cache_keys(self) -> Dict[int, str]:
        """``{position: cache key}`` for every completed scenario."""
        return {
            int(p): str(k)
            for p, k in self._state.get("completed", {}).items()
        }

    # ---- persistence -------------------------------------------------

    def _load(self) -> Optional[Dict[str, Any]]:
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, OSError) as exc:
            _LOG.warning(
                "journal %s unreadable (%s); starting fresh",
                self.path, exc,
            )
            return None
        return payload if isinstance(payload, dict) else None

    def _write(self) -> None:
        """Atomic temp-write + rename, crash-safe at every point."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        descriptor, temp_path = tempfile.mkstemp(
            prefix=self.path.name, suffix=".tmp", dir=str(self.path.parent)
        )
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                json.dump(self._state, handle, indent=1, sort_keys=True)
            os.replace(temp_path, self.path)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RunJournal(path={str(self.path)!r}, "
            f"status={self.status!r}, "
            f"completed={len(self._state.get('completed', {}))})"
        )
