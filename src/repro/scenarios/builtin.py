"""The built-in scenario catalog.

Every scenario here is plain data over the component registries of
:mod:`repro.scenarios.components` — the same spec could be loaded from a
JSON file.  Tags group them into suites:

``threat-sweep``
    The same cooling plant under Stuxnet-, Duqu- and Flame-like threats
    (the paper's future-work threat models) — run together for a
    cross-threat comparison.
``doe-sweep``
    The same diversity question answered with full, fractional and
    Plackett-Burman designs — the paper's step-2 screening trade-off.
``smart-grid``
    The distribution-feeder system of the paper's introduction.
``physics``
    Sabotage-physics focus: diversify the signal path (sensors,
    protocol, firewall, AV) that the spoofing payload must defeat.
``response``
    Closed-loop incident response: detection triggers eviction, using
    the spec-level ``response_enabled`` / ``response_delay_rate`` knobs.
``smoke``
    A minimal seconds-scale scenario for CI and CLI smoke tests.
"""

from __future__ import annotations

from repro.scenarios.registry import register
from repro.scenarios.spec import Scenario

CORE_KINDS = ("operating_system", "plc_firmware", "protocol_stack")
SCREENING_KINDS = CORE_KINDS + ("antivirus",)
SIGNAL_PATH_KINDS = (
    "sensor_model", "protocol_stack", "firewall_software", "antivirus",
)


@register
def smoke() -> Scenario:
    """Minimal end-to-end scenario (seconds, not minutes)."""
    return Scenario(
        name="smoke",
        title="Minimal smoke scenario",
        description=(
            "A deliberately tiny study — reduced cooling topology, two\n"
            "factors, two replications, short horizon — that exercises\n"
            "the full three-step pipeline in a few seconds.  Used by the\n"
            "CLI smoke tests and as the quickest way to check an\n"
            "installation."
        ),
        topology="scope_cooling",
        threat="stuxnet_like",
        kinds=("operating_system", "plc_firmware"),
        design_kind="full",
        two_level=True,
        replications=2,
        horizon=20.0,
        tick_interval=0.5,
        topology_params={"n_office_pcs": 2, "n_hmi": 1},
        tags=("smoke",),
    )


@register
def cooling_stuxnet() -> Scenario:
    """The paper's principal case study as a registered scenario."""
    return Scenario(
        name="cooling_stuxnet",
        title="SCoPE cooling plant vs Stuxnet-like sabotage",
        description=(
            "The paper's case study: the data-center cooling SCADA\n"
            "system under a Stuxnet-like sabotage threat, diversifying\n"
            "operating system, PLC firmware and protocol stack."
        ),
        topology="scope_cooling",
        threat="stuxnet_like",
        kinds=CORE_KINDS,
        replications=10,
        horizon=80.0,
        tags=("cooling", "threat-sweep"),
    )


@register
def cooling_duqu() -> Scenario:
    """Espionage variant of the cooling case study."""
    return Scenario(
        name="cooling_duqu",
        title="SCoPE cooling plant vs Duqu-like exfiltration",
        description=(
            "The same cooling system under a Duqu-like espionage\n"
            "threat (process-data exfiltration, no physical payload) —\n"
            "one of the wider threat models the paper's future work\n"
            "names."
        ),
        topology="scope_cooling",
        threat="duqu_like",
        kinds=CORE_KINDS,
        replications=10,
        horizon=80.0,
        tags=("cooling", "threat-sweep"),
    )


@register
def cooling_flame() -> Scenario:
    """Reconnaissance variant of the cooling case study."""
    return Scenario(
        name="cooling_flame",
        title="SCoPE cooling plant vs Flame-like reconnaissance",
        description=(
            "The same cooling system under a Flame-like reconnaissance\n"
            "threat (survey a large fraction of the hosts)."
        ),
        topology="scope_cooling",
        threat="flame_like",
        kinds=CORE_KINDS,
        replications=10,
        horizon=80.0,
        tags=("cooling", "threat-sweep"),
    )


@register
def cooling_stuxnet_aggressive() -> Scenario:
    """Sensitivity variant: a faster, more determined attacker."""
    return Scenario(
        name="cooling_stuxnet_aggressive",
        title="Cooling plant vs an aggressive Stuxnet-like attacker",
        description=(
            "The principal scenario with the threat's entry and\n"
            "reprogramming rates doubled — a sensitivity point showing\n"
            "how scenario specs parameterize threat factories."
        ),
        topology="scope_cooling",
        threat="stuxnet_like",
        threat_params={"entry_rate": 0.3, "reprogram_rate": 1.2},
        kinds=CORE_KINDS,
        replications=10,
        horizon=80.0,
        tags=("cooling", "sensitivity"),
    )


@register
def cooling_stuxnet_response() -> Scenario:
    """Closed-loop variant: incident response evicts on detection."""
    return Scenario(
        name="cooling_stuxnet_response",
        title="Cooling plant vs Stuxnet with incident response",
        description=(
            "The principal scenario with the defender closing the loop:\n"
            "the first perceived manifestation triggers incident\n"
            "response, which evicts the attacker after an exponential\n"
            "triage-and-containment delay (mean 2 h).  Shows the\n"
            "response/recovery knobs carried by the scenario spec —\n"
            "no hand-patched CampaignConfig required."
        ),
        topology="scope_cooling",
        threat="stuxnet_like",
        kinds=CORE_KINDS,
        replications=10,
        horizon=80.0,
        response_enabled=True,
        response_delay_rate=0.5,
        tags=("cooling", "response"),
    )


@register
def cooling_screening_full() -> Scenario:
    """Four-factor full factorial (the reference design)."""
    return Scenario(
        name="cooling_screening_full",
        title="Screening study, full 2^4 factorial",
        description=(
            "Which of four component kinds drives the security\n"
            "indicators?  Reference answer from the full factorial."
        ),
        topology="scope_cooling",
        threat="stuxnet_like",
        kinds=SCREENING_KINDS,
        design_kind="full",
        replications=8,
        horizon=80.0,
        tags=("cooling", "doe-sweep"),
    )


@register
def cooling_screening_fractional() -> Scenario:
    """Half-fraction screening design."""
    return Scenario(
        name="cooling_screening_fractional",
        title="Screening study, 2^(4-1) half fraction",
        description=(
            "The same screening question at half the simulation cost\n"
            "via a resolution-IV half fraction."
        ),
        topology="scope_cooling",
        threat="stuxnet_like",
        kinds=SCREENING_KINDS,
        design_kind="fractional",
        replications=8,
        horizon=80.0,
        tags=("cooling", "doe-sweep"),
    )


@register
def cooling_screening_pb() -> Scenario:
    """Plackett-Burman screening design."""
    return Scenario(
        name="cooling_screening_pb",
        title="Screening study, Plackett-Burman N=8",
        description=(
            "The same screening question with a Plackett-Burman\n"
            "main-effects design."
        ),
        topology="scope_cooling",
        threat="stuxnet_like",
        kinds=SCREENING_KINDS,
        design_kind="pb",
        replications=8,
        horizon=80.0,
        tags=("cooling", "doe-sweep"),
    )


@register
def cooling_sabotage_physics() -> Scenario:
    """Diversify the signal path the sabotage payload must defeat."""
    return Scenario(
        name="cooling_sabotage_physics",
        title="Sabotage physics: diversifying the signal path",
        description=(
            "The sabotage payload wins by spoofing monitoring signals\n"
            "while the plant overheats.  This scenario diversifies the\n"
            "components on that path — sensors, protocol stack,\n"
            "firewall, antivirus — asking which most improves perceived\n"
            "manifestation (TTSF) rather than raw attack success."
        ),
        topology="scope_cooling",
        threat="stuxnet_like",
        kinds=SIGNAL_PATH_KINDS,
        design_kind="fractional",
        replications=8,
        horizon=80.0,
        tags=("cooling", "physics"),
    )


@register
def smart_grid_stuxnet() -> Scenario:
    """The paper's smart-grid motivation: feeder overload sabotage."""
    return Scenario(
        name="smart_grid_stuxnet",
        title="Distribution feeder vs Stuxnet-like overload sabotage",
        description=(
            "The paper's introductory what-if: an attacker overloads a\n"
            "power distribution feeder by reprogramming its\n"
            "controllers.  Runs the Stuxnet-like threat against the\n"
            "feeder SCADA topology driving the PowerFeeder physical\n"
            "model."
        ),
        topology="smart_grid_feeder",
        threat="stuxnet_like",
        plant="feeder",
        kinds=CORE_KINDS,
        replications=10,
        horizon=120.0,
        tags=("smart-grid",),
    )


@register
def smart_grid_duqu() -> Scenario:
    """Espionage against the utility's EMS."""
    return Scenario(
        name="smart_grid_duqu",
        title="Distribution feeder vs Duqu-like EMS espionage",
        description=(
            "Exfiltration of process data from the utility's EMS and\n"
            "historian — no physical payload, so detection hinges on\n"
            "C2 beaconing and failed-attempt noise."
        ),
        topology="smart_grid_feeder",
        threat="duqu_like",
        plant="feeder",
        kinds=CORE_KINDS,
        replications=10,
        horizon=120.0,
        tags=("smart-grid",),
    )
