"""The named scenario catalog.

:class:`ScenarioRegistry` maps scenario names to
:class:`~repro.scenarios.spec.Scenario` specs.  The module-level
``SCENARIOS`` instance holds the built-in catalog
(:mod:`repro.scenarios.builtin`); the :func:`register` decorator adds a
scenario-producing function's result to it:

    @register
    def my_scenario() -> Scenario:
        return Scenario(name="my_scenario", ...)
"""

from __future__ import annotations

import glob
import json
import os
from typing import Callable, Dict, Iterator, List, Optional

from repro.scenarios.spec import Scenario


class ScenarioRegistry:
    """A name → :class:`Scenario` catalog with tag-based selection."""

    def __init__(self) -> None:
        self._scenarios: Dict[str, Scenario] = {}

    def add(self, scenario: Scenario) -> Scenario:
        """Add ``scenario`` under its own name.

        Raises:
            ValueError: If the name is already registered.
        """
        if scenario.name in self._scenarios:
            raise ValueError(
                f"scenario {scenario.name!r} is already registered"
            )
        self._scenarios[scenario.name] = scenario
        return scenario

    def get(self, name: str) -> Scenario:
        """Look a scenario up by name.

        Raises:
            ValueError: For an unknown name (the message lists the
                registered names).
        """
        try:
            return self._scenarios[name]
        except KeyError:
            raise ValueError(
                f"unknown scenario {name!r}; registered: "
                f"{', '.join(self.names()) or '(none)'}"
            ) from None

    def names(self) -> List[str]:
        """Registered names, sorted."""
        return sorted(self._scenarios)

    def all(self) -> List[Scenario]:
        """Every registered scenario, sorted by name."""
        return [self._scenarios[name] for name in self.names()]

    def by_tag(self, tag: str) -> List[Scenario]:
        """Scenarios carrying ``tag``, sorted by name."""
        return [s for s in self.all() if tag in s.tags]

    def tags(self) -> List[str]:
        """Every tag in use, sorted."""
        return sorted({tag for s in self.all() for tag in s.tags})

    def copy(self) -> "ScenarioRegistry":
        """An independent registry with the same scenarios.

        Sessions use this to layer file-based catalogs on top of the
        built-ins without mutating the library-wide registry.
        """
        duplicate = ScenarioRegistry()
        duplicate._scenarios = dict(self._scenarios)
        return duplicate

    def load_file(self, path: str) -> Scenario:
        """Load one JSON scenario spec file and register it.

        Raises:
            ValueError: If the file is not valid JSON, is not a JSON
                object, is not a valid :class:`Scenario` spec, or names
                an already-registered scenario.  The message always
                includes the offending path.
        """
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except OSError as exc:
            raise ValueError(f"cannot read scenario file {path}: {exc}")
        except json.JSONDecodeError as exc:
            raise ValueError(f"invalid JSON in scenario file {path}: {exc}")
        if not isinstance(data, dict):
            raise ValueError(
                f"scenario file {path} must contain a JSON object, "
                f"got {type(data).__name__}"
            )
        try:
            scenario = Scenario.from_dict(data)
        except (TypeError, ValueError) as exc:
            raise ValueError(f"bad scenario spec in {path}: {exc}")
        try:
            return self.add(scenario)
        except ValueError:
            raise ValueError(
                f"scenario file {path} redefines already-registered "
                f"scenario {scenario.name!r}"
            ) from None

    def load_dir(self, path: str, pattern: str = "*.json") -> List[Scenario]:
        """Ingest a directory of JSON scenario specs (sorted by name).

        Every ``pattern`` match must parse as a valid, not-yet-registered
        scenario — a single bad or duplicate spec fails the whole load
        so a typo'd catalog cannot be silently half-applied.

        Args:
            path: Catalog directory.
            pattern: Glob for spec files within the directory.

        Returns:
            The scenarios added, in file order.

        Raises:
            ValueError: If ``path`` is not a directory, or any matched
                file is unreadable, invalid or a duplicate.
        """
        if not os.path.isdir(path):
            raise ValueError(f"catalog directory not found: {path}")
        # Stage into a copy so a bad file midway leaves this registry
        # untouched (all-or-nothing load).
        staged = self.copy()
        added = [
            staged.load_file(spec_path)
            for spec_path in sorted(glob.glob(os.path.join(path, pattern)))
        ]
        self._scenarios = staged._scenarios
        return added

    def __contains__(self, name: str) -> bool:
        return name in self._scenarios

    def __len__(self) -> int:
        return len(self._scenarios)

    def __iter__(self) -> Iterator[Scenario]:
        return iter(self.all())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ScenarioRegistry({self.names()})"


#: The library-wide catalog; built-ins land here on package import.
SCENARIOS = ScenarioRegistry()


def register(
    factory: Callable[[], Scenario]
) -> Callable[[], Scenario]:
    """Decorator: evaluate ``factory`` and add its scenario to
    :data:`SCENARIOS`.  Returns the factory unchanged so modules keep a
    callable handle to the spec."""
    SCENARIOS.add(factory())
    return factory


def get_scenario(name: str) -> Scenario:
    """Look ``name`` up in the library-wide catalog."""
    return SCENARIOS.get(name)
