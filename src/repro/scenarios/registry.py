"""The named scenario catalog.

:class:`ScenarioRegistry` maps scenario names to
:class:`~repro.scenarios.spec.Scenario` specs.  The module-level
``SCENARIOS`` instance holds the built-in catalog
(:mod:`repro.scenarios.builtin`); the :func:`register` decorator adds a
scenario-producing function's result to it:

    @register
    def my_scenario() -> Scenario:
        return Scenario(name="my_scenario", ...)
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional

from repro.scenarios.spec import Scenario


class ScenarioRegistry:
    """A name → :class:`Scenario` catalog with tag-based selection."""

    def __init__(self) -> None:
        self._scenarios: Dict[str, Scenario] = {}

    def add(self, scenario: Scenario) -> Scenario:
        """Add ``scenario`` under its own name.

        Raises:
            ValueError: If the name is already registered.
        """
        if scenario.name in self._scenarios:
            raise ValueError(
                f"scenario {scenario.name!r} is already registered"
            )
        self._scenarios[scenario.name] = scenario
        return scenario

    def get(self, name: str) -> Scenario:
        """Look a scenario up by name.

        Raises:
            ValueError: For an unknown name (the message lists the
                registered names).
        """
        try:
            return self._scenarios[name]
        except KeyError:
            raise ValueError(
                f"unknown scenario {name!r}; registered: "
                f"{', '.join(self.names()) or '(none)'}"
            ) from None

    def names(self) -> List[str]:
        """Registered names, sorted."""
        return sorted(self._scenarios)

    def all(self) -> List[Scenario]:
        """Every registered scenario, sorted by name."""
        return [self._scenarios[name] for name in self.names()]

    def by_tag(self, tag: str) -> List[Scenario]:
        """Scenarios carrying ``tag``, sorted by name."""
        return [s for s in self.all() if tag in s.tags]

    def tags(self) -> List[str]:
        """Every tag in use, sorted."""
        return sorted({tag for s in self.all() for tag in s.tags})

    def __contains__(self, name: str) -> bool:
        return name in self._scenarios

    def __len__(self) -> int:
        return len(self._scenarios)

    def __iter__(self) -> Iterator[Scenario]:
        return iter(self.all())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ScenarioRegistry({self.names()})"


#: The library-wide catalog; built-ins land here on package import.
SCENARIOS = ScenarioRegistry()


def register(
    factory: Callable[[], Scenario]
) -> Callable[[], Scenario]:
    """Decorator: evaluate ``factory`` and add its scenario to
    :data:`SCENARIOS`.  Returns the factory unchanged so modules keep a
    callable handle to the spec."""
    SCENARIOS.add(factory())
    return factory


def get_scenario(name: str) -> Scenario:
    """Look ``name`` up in the library-wide catalog."""
    return SCENARIOS.get(name)
