"""repro.scenarios — the declarative scenario catalog and suite runner.

The paper evaluates one fixed scenario; the roadmap asks for "as many
scenarios as you can imagine".  This subsystem makes a scenario *data*
instead of a hand-wired script:

* :mod:`repro.scenarios.spec` — :class:`Scenario`, a JSON-round-trippable
  spec naming topology, threat, catalog, physical plant, component
  kinds, DoE design and campaign knobs;
* :mod:`repro.scenarios.components` — the name → factory registries
  those specs reference (extensible with your own topologies/threats);
* :mod:`repro.scenarios.registry` — :class:`ScenarioRegistry`, the
  :func:`register` decorator and the library-wide ``SCENARIOS`` catalog;
* :mod:`repro.scenarios.builtin` — the built-in named scenarios
  (cooling plant x Stuxnet/Duqu/Flame, DoE screening sweeps, sabotage
  physics, smart-grid feeder, a smoke scenario);
* :mod:`repro.scenarios.suite` — :class:`ScenarioSuite`, fanning
  scenarios out on :mod:`repro.exec` with bit-identical records across
  backends and a cross-scenario comparison report;
* :mod:`repro.scenarios.cli` — ``python -m repro.scenarios``
  (``list`` / ``show`` / ``run``).
"""

from repro.scenarios.components import (
    available_catalogs,
    available_plants,
    available_threats,
    available_topologies,
    register_catalog,
    register_plant,
    register_threat,
    register_topology,
)
from repro.scenarios.registry import (
    SCENARIOS,
    ScenarioRegistry,
    get_scenario,
    register,
)
from repro.scenarios.journal import RunJournal
from repro.scenarios.spec import Scenario
from repro.scenarios.suite import (
    ScenarioFailure,
    ScenarioRunResult,
    ScenarioSuite,
    SuiteResult,
)

# Importing the builtin module populates SCENARIOS as a side effect.
from repro.scenarios import builtin as _builtin  # noqa: F401  isort: skip

#: Top-level-friendly alias of :func:`register`.
register_scenario = register

__all__ = [
    "SCENARIOS",
    "RunJournal",
    "Scenario",
    "ScenarioFailure",
    "ScenarioRegistry",
    "ScenarioRunResult",
    "ScenarioSuite",
    "SuiteResult",
    "available_catalogs",
    "available_plants",
    "available_threats",
    "available_topologies",
    "get_scenario",
    "register",
    "register_catalog",
    "register_plant",
    "register_scenario",
    "register_threat",
    "register_topology",
]
