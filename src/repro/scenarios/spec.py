"""The declarative scenario specification.

A :class:`Scenario` names everything a
:class:`~repro.core.study.DiversityStudy` needs — topology, threat,
variant catalog, physical plant, component kinds, DoE design and
campaign knobs — as plain data.  Scenarios therefore serialize to JSON,
travel across process pools, and live in a registry instead of being
re-wired by hand in every example script.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields
from functools import partial
from typing import Callable, Dict, List, Optional, Tuple

from repro.attacks.campaign import CampaignConfig
from repro.attacks.profiles import ThreatProfile
from repro.diversity.catalog import VariantCatalog
from repro.scada.components import ComponentKind
from repro.scada.network import SCADANetwork
from repro.scenarios.components import (
    resolve_catalog,
    resolve_plant,
    resolve_threat,
    resolve_topology,
)

#: DoE designs a scenario may request (mirrors ``DiversityStudy``).
DESIGN_KINDS = ("full", "fractional", "pb")


@dataclass(frozen=True)
class Scenario:
    """A self-contained, serializable experiment specification.

    Attributes:
        name: Unique scenario name (registry key).
        title: One-line human-readable headline.
        description: Longer free-text description (CLI ``show``).
        topology: Topology registry name (``scope_cooling``,
            ``smart_grid_feeder``, ...).
        threat: Threat registry name (``stuxnet_like``, ...).
        catalog: Variant-catalog registry name.
        plant: Physical-plant registry name (``cooling`` / ``feeder``).
        kinds: Component kinds to diversify
            (:class:`~repro.scada.components.ComponentKind` values);
            ``None`` means every kind with >= 2 catalog variants present
            in the network.
        design_kind: ``"full"``, ``"fractional"`` or ``"pb"``.
        two_level: Restrict factors to their two extreme variants.
        replications: Campaign replications per design run.
        horizon: Campaign horizon (hours).
        tick_interval: Plant/master polling period (hours).
        tick_elision: Campaign event-loop fast path (default on); set
            False to force the legacy per-tick loop (outcomes are
            identical — see
            :attr:`repro.attacks.campaign.CampaignConfig.tick_elision`).
        response_enabled: Incident response reacts to the first
            detection (see
            :attr:`repro.attacks.campaign.CampaignConfig.response_enabled`);
            off by default, matching the paper's open-loop TTSF
            measurement.
        response_delay_rate: With response enabled, eviction happens an
            ``Exp(rate)``-distributed delay after detection; ``None``
            means instantaneous eviction.
        topology_params: Keyword overrides for the topology factory
            (e.g. ``{"n_plcs": 4}``).
        threat_params: Keyword overrides for the threat factory
            (e.g. ``{"entry_rate": 0.3}``).
        tags: Free-form labels; suites and the CLI select by tag.
    """

    name: str
    title: str = ""
    description: str = ""
    topology: str = "scope_cooling"
    threat: str = "stuxnet_like"
    catalog: str = "default"
    plant: str = "cooling"
    kinds: Optional[Tuple[str, ...]] = None
    design_kind: str = "full"
    two_level: bool = True
    replications: int = 10
    horizon: float = 80.0
    tick_interval: float = 0.5
    tick_elision: bool = True
    response_enabled: bool = False
    response_delay_rate: Optional[float] = None
    topology_params: Dict[str, object] = field(default_factory=dict)
    threat_params: Dict[str, object] = field(default_factory=dict)
    tags: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must be non-empty")
        if self.design_kind not in DESIGN_KINDS:
            raise ValueError(
                f"unknown design_kind {self.design_kind!r}; expected one of "
                f"{', '.join(DESIGN_KINDS)}"
            )
        if self.replications < 1:
            raise ValueError(
                f"replications must be >= 1, got {self.replications}"
            )
        if self.horizon <= 0:
            raise ValueError(f"horizon must be > 0, got {self.horizon}")
        if self.tick_interval <= 0:
            raise ValueError(
                f"tick_interval must be > 0, got {self.tick_interval}"
            )
        if self.response_delay_rate is not None:
            if not self.response_enabled:
                raise ValueError(
                    "response_delay_rate requires response_enabled=True "
                    "(a delay without a response would be silently ignored)"
                )
            if self.response_delay_rate <= 0:
                raise ValueError(
                    "response_delay_rate must be > 0 (or None for "
                    f"instantaneous eviction), got {self.response_delay_rate}"
                )
        # Fail fast on unknown registry names and kind values: a bad
        # spec should not surface mid-suite as an obscure late error.
        resolve_topology(self.topology)
        resolve_threat(self.threat)
        resolve_catalog(self.catalog)
        resolve_plant(self.plant)
        if self.kinds is not None:
            if isinstance(self.kinds, str):
                raise ValueError(
                    "kinds must be a sequence of component-kind values, "
                    f"not a bare string: {self.kinds!r}"
                )
            # Accept ComponentKind members too, normalising to their
            # string values so the spec stays JSON-serializable.
            object.__setattr__(
                self,
                "kinds",
                tuple(ComponentKind(kind).value for kind in self.kinds),
            )
        if isinstance(self.tags, str):
            raise ValueError(
                f"tags must be a sequence of strings, not a bare string: "
                f"{self.tags!r}"
            )
        object.__setattr__(self, "tags", tuple(self.tags))

    # ---- builders --------------------------------------------------------

    def build_network_factory(self) -> Callable[[], SCADANetwork]:
        """The (picklable) zero-arg network factory this spec names."""
        factory = resolve_topology(self.topology)
        if self.topology_params:
            return partial(factory, **self.topology_params)
        return factory

    def build_network(self) -> SCADANetwork:
        """A fresh network instance."""
        return self.build_network_factory()()

    def build_threat(self) -> ThreatProfile:
        """The threat profile this spec names."""
        return resolve_threat(self.threat)(**self.threat_params)

    def build_catalog(self) -> VariantCatalog:
        """The variant catalog this spec names."""
        return resolve_catalog(self.catalog)()

    def build_campaign_config(self) -> CampaignConfig:
        """Campaign parameters, including the named physical plant."""
        return CampaignConfig(
            horizon=self.horizon,
            tick_interval=self.tick_interval,
            plant_factory=resolve_plant(self.plant),
            tick_elision=self.tick_elision,
            response_enabled=self.response_enabled,
            response_delay_rate=self.response_delay_rate,
        )

    def component_kinds(self) -> Optional[List[ComponentKind]]:
        """The ``kinds`` field as :class:`ComponentKind` members."""
        if self.kinds is None:
            return None
        return [ComponentKind(kind) for kind in self.kinds]

    def build_san_model(self, give_up: bool = False):
        """The stage-chain SAN of this scenario's baseline system.

        Bridges the declarative catalog to the SAN substrate: the model
        runs on :class:`repro.san.simulator.SANSimulator`'s compiled
        fast path by default and, being all-exponential, converts to an
        exact CTMC via :func:`repro.san.ctmc.san_to_ctmc`.

        Args:
            give_up: Failed stage attempts abandon the campaign instead
                of retrying (makes attack success probability < 1).

        Returns:
            A :class:`repro.san.model.SANModel`.
        """
        from repro.core.modeling import san_model_for

        return san_model_for(
            self.build_network(),
            self.build_catalog(),
            self.build_threat(),
            give_up=give_up,
        )

    # ---- serialization ---------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Plain-data form (JSON-ready; tuples become lists)."""
        data = asdict(self)
        data["tags"] = list(self.tags)
        if self.kinds is not None:
            data["kinds"] = list(self.kinds)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Scenario":
        """Rebuild a scenario from :meth:`to_dict` output.

        Raises:
            ValueError: On unknown keys or invalid field values.
        """
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown scenario field(s): {', '.join(unknown)}"
            )
        prepared = dict(data)
        if prepared.get("kinds") is not None:
            prepared["kinds"] = tuple(prepared["kinds"])
        prepared["tags"] = tuple(prepared.get("tags", ()))
        return cls(**prepared)

    def to_json(self, indent: Optional[int] = 2) -> str:
        """JSON form of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        """Rebuild a scenario from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    # ---- presentation ----------------------------------------------------

    def summary_line(self) -> str:
        """One line for catalog listings."""
        kinds = "auto" if self.kinds is None else f"{len(self.kinds)} kinds"
        return (
            f"{self.topology} x {self.threat} | {self.design_kind} DoE, "
            f"{kinds}, {self.replications} reps, {self.horizon:g} h"
        )

    def describe(self) -> str:
        """Multi-line description for CLI ``show``."""
        lines = [
            f"scenario: {self.name}",
            f"  title:        {self.title or '--'}",
            f"  topology:     {self.topology}"
            + (f" {self.topology_params}" if self.topology_params else ""),
            f"  threat:       {self.threat}"
            + (f" {self.threat_params}" if self.threat_params else ""),
            f"  catalog:      {self.catalog}",
            f"  plant:        {self.plant}",
            f"  kinds:        "
            + ("auto" if self.kinds is None else ", ".join(self.kinds)),
            f"  design:       {self.design_kind}"
            + (" (two-level)" if self.two_level else ""),
            f"  replications: {self.replications}",
            f"  horizon:      {self.horizon:g} h "
            f"(tick {self.tick_interval:g} h"
            + ("" if self.tick_elision else ", per-tick loop")
            + ")",
            f"  response:     "
            + (
                (
                    "enabled"
                    + (
                        f" (eviction delay rate {self.response_delay_rate:g}/h)"
                        if self.response_delay_rate is not None
                        else " (instant eviction)"
                    )
                )
                if self.response_enabled
                else "disabled"
            ),
            f"  tags:         {', '.join(self.tags) or '--'}",
        ]
        if self.description:
            lines.append("")
            lines.extend(f"  {line}" for line in self.description.splitlines())
        return "\n".join(lines)
