"""Command-line interface for the scenario catalog.

::

    python -m repro.scenarios list [--tag TAG]
    python -m repro.scenarios show NAME [--json]
    python -m repro.scenarios run NAME... [--tag TAG] [--backend B]
                                 [--n-workers N] [--seed S]
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional, Sequence

from repro.core.report import format_table
from repro.exec.backends import available_backends
from repro.scenarios.registry import SCENARIOS
from repro.scenarios.suite import ScenarioSuite


def _cmd_list(args: argparse.Namespace) -> int:
    scenarios = (
        SCENARIOS.by_tag(args.tag) if args.tag else SCENARIOS.all()
    )
    if not scenarios:
        known = ", ".join(SCENARIOS.tags()) or "(none)"
        print(f"no scenarios with tag {args.tag!r}; known tags: {known}")
        return 1
    print(
        format_table(
            ["name", "tags", "spec"],
            [
                (s.name, ",".join(s.tags) or "--", s.summary_line())
                for s in scenarios
            ],
            title=f"{len(scenarios)} scenario(s)",
        )
    )
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    scenario = SCENARIOS.get(args.name)
    print(scenario.to_json() if args.json else scenario.describe())
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    names: List[str] = list(args.names)
    if args.tag:
        tagged = SCENARIOS.by_tag(args.tag)
        if not tagged:
            known = ", ".join(SCENARIOS.tags()) or "(none)"
            print(
                f"error: no scenarios with tag {args.tag!r}; "
                f"known tags: {known}",
                file=sys.stderr,
            )
            return 2
        names.extend(s.name for s in tagged if s.name not in names)
    if not names:
        print(
            "nothing to run: give scenario names and/or --tag "
            f"(try: {', '.join(SCENARIOS.names())})",
            file=sys.stderr,
        )
        return 2
    suite = ScenarioSuite(
        names, backend=args.backend, n_workers=args.n_workers
    )
    plural = "s" if len(names) != 1 else ""
    print(
        f"running {len(names)} scenario{plural} on backend "
        f"{args.backend!r} (seed {args.seed}) ..."
    )
    started = time.perf_counter()
    result = suite.run(seed=args.seed)
    elapsed = time.perf_counter() - started
    print()
    print(result.comparison_report())
    print(f"\ncompleted in {elapsed:.1f}s")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``repro.scenarios`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios",
        description="Browse and run the declarative scenario catalog.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list registered scenarios")
    p_list.add_argument("--tag", help="only scenarios carrying this tag")
    p_list.set_defaults(func=_cmd_list)

    p_show = sub.add_parser("show", help="describe one scenario")
    p_show.add_argument("name", help="scenario name")
    p_show.add_argument(
        "--json", action="store_true", help="print the JSON spec instead"
    )
    p_show.set_defaults(func=_cmd_show)

    p_run = sub.add_parser(
        "run", help="run scenarios and print the comparison report"
    )
    p_run.add_argument("names", nargs="*", help="scenario names")
    p_run.add_argument("--tag", help="also run every scenario with this tag")
    p_run.add_argument(
        "--backend",
        choices=available_backends(),
        default="serial",
        help="suite execution backend (default: serial)",
    )
    p_run.add_argument(
        "--n-workers", type=int, default=None,
        help="worker-pool width for parallel backends",
    )
    p_run.add_argument(
        "--seed", type=int, default=0,
        help="root seed; records are bit-identical across backends "
        "for the same seed (default: 0)",
    )
    p_run.set_defaults(func=_cmd_run)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
