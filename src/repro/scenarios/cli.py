"""Command-line interface for the scenario catalog.

::

    python -m repro.scenarios list [--tag TAG] [--catalog DIR]
    python -m repro.scenarios show NAME [--json] [--catalog DIR]
    python -m repro.scenarios run NAME... [--tag TAG] [--backend B]
                                 [--n-workers N] [--seed S]
                                 [--catalog DIR] [--cache-dir DIR]
                                 [--shard I/N] [--on-error raise|skip]
                                 [--journal FILE]
    python -m repro.scenarios lint [--catalog DIR] [FILE...]

The ``run`` subcommand lowers onto :class:`repro.api.Session` — the
same facade the library API exposes — so catalogs, caching and
sharding behave identically from the shell and from Python.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence, Tuple

from repro.core.report import format_table
from repro.exec.backends import available_backends
from repro.scenarios.registry import SCENARIOS, ScenarioRegistry
from repro.telemetry import Telemetry


def _registry_for(args: argparse.Namespace) -> ScenarioRegistry:
    """The built-in catalog plus any ``--catalog`` directories."""
    dirs = getattr(args, "catalog", None) or []
    if not dirs:
        return SCENARIOS
    registry = SCENARIOS.copy()
    for directory in dirs:
        registry.load_dir(directory)
    return registry


def _parse_shard(text: Optional[str]) -> Optional[Tuple[int, int]]:
    """``"I/N"`` → ``(I, N)`` (validated downstream by the suite)."""
    if text is None:
        return None
    try:
        index_text, count_text = text.split("/", 1)
        return int(index_text), int(count_text)
    except ValueError:
        raise ValueError(
            f"--shard must look like INDEX/COUNT (e.g. 0/4), got {text!r}"
        ) from None


def _cmd_list(args: argparse.Namespace) -> int:
    registry = _registry_for(args)
    scenarios = (
        registry.by_tag(args.tag) if args.tag else registry.all()
    )
    if not scenarios:
        known = ", ".join(registry.tags()) or "(none)"
        print(f"no scenarios with tag {args.tag!r}; known tags: {known}")
        return 1
    print(
        format_table(
            ["name", "tags", "spec"],
            [
                (s.name, ",".join(s.tags) or "--", s.summary_line())
                for s in scenarios
            ],
            title=f"{len(scenarios)} scenario(s)",
        )
    )
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    scenario = _registry_for(args).get(args.name)
    print(scenario.to_json() if args.json else scenario.describe())
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.api import Session

    registry = _registry_for(args)
    names: List[str] = list(args.names)
    if args.tag:
        tagged = registry.by_tag(args.tag)
        if not tagged:
            known = ", ".join(registry.tags()) or "(none)"
            print(
                f"error: no scenarios with tag {args.tag!r}; "
                f"known tags: {known}",
                file=sys.stderr,
            )
            return 2
        names.extend(s.name for s in tagged if s.name not in names)
    if not names:
        print(
            "nothing to run: give scenario names and/or --tag "
            f"(try: {', '.join(registry.names())})",
            file=sys.stderr,
        )
        return 2
    shard = _parse_shard(args.shard)
    # The CLI owns one Telemetry for the whole invocation: the wall
    # clock the user sees IS the recorded session.run span, and
    # --telemetry exports the same numbers for offline inspection
    # (python -m repro.telemetry report FILE).
    telemetry = Telemetry(meta={"source": "scenarios.cli"})
    with Session(
        backend=args.backend,
        n_workers=args.n_workers,
        seed=args.seed,
        cache_dir=args.cache_dir,
        registry=registry,
        telemetry=telemetry,
        verbose=args.verbose,
    ) as session:
        plural = "s" if len(names) != 1 else ""
        extras = ""
        if args.cache_dir:
            extras += f", cache {args.cache_dir}"
        if shard:
            extras += f", shard {shard[0]}/{shard[1]}"
        print(
            f"running {len(names)} scenario{plural} on backend "
            f"{args.backend!r} (seed {args.seed}{extras}) ..."
        )
        result = session.run(
            names,
            shard=shard,
            on_error=args.on_error,
            journal=args.journal,
        )
    snapshot = result.telemetry
    elapsed = snapshot.total_seconds("session.run")
    print()
    print(result.comparison_report())
    errors = getattr(result, "errors", [])
    for failure in errors:
        print(f"\nFAILED {failure}", file=sys.stderr)
    print(f"\ncompleted in {elapsed:.1f}s")
    if errors:
        return 1
    if args.telemetry:
        snapshot.save(args.telemetry)
        print(f"telemetry snapshot written to {args.telemetry}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    """Statically validate catalog files with the SPEC analysis rules
    — no networks, threats or campaigns are built."""
    import glob
    import os

    from repro.analysis.rules_spec import lint_catalog_file

    files: List[str] = list(args.files)
    for directory in getattr(args, "catalog", None) or []:
        files.extend(sorted(glob.glob(os.path.join(directory, "*.json"))))
    if not files:
        print(
            "nothing to lint: give catalog JSON files and/or --catalog DIR",
            file=sys.stderr,
        )
        return 2
    findings = []
    for path in files:
        try:
            findings.extend(lint_catalog_file(path))
        except OSError as exc:
            print(f"error: cannot read {path!r}: {exc}", file=sys.stderr)
            return 2
    for finding in findings:
        print(finding.format())
    print(f"{len(findings)} finding(s) in {len(files)} catalog file(s)")
    return 1 if findings else 0


def build_parser() -> argparse.ArgumentParser:
    """The ``repro.scenarios`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios",
        description="Browse and run the declarative scenario catalog.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_catalog(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--catalog",
            action="append",
            metavar="DIR",
            help="also load a directory of JSON scenario specs "
            "(repeatable; never mutates the built-in catalog)",
        )

    p_list = sub.add_parser("list", help="list registered scenarios")
    p_list.add_argument("--tag", help="only scenarios carrying this tag")
    add_catalog(p_list)
    p_list.set_defaults(func=_cmd_list)

    p_show = sub.add_parser("show", help="describe one scenario")
    p_show.add_argument("name", help="scenario name")
    p_show.add_argument(
        "--json", action="store_true", help="print the JSON spec instead"
    )
    add_catalog(p_show)
    p_show.set_defaults(func=_cmd_show)

    p_run = sub.add_parser(
        "run", help="run scenarios and print the comparison report"
    )
    p_run.add_argument("names", nargs="*", help="scenario names")
    p_run.add_argument("--tag", help="also run every scenario with this tag")
    p_run.add_argument(
        "--backend",
        choices=available_backends(),
        default="serial",
        help="suite execution backend (default: serial)",
    )
    p_run.add_argument(
        "--n-workers", type=int, default=None,
        help="worker-pool width for parallel backends",
    )
    p_run.add_argument(
        "--seed", type=int, default=0,
        help="root seed; records are bit-identical across backends "
        "for the same seed (default: 0)",
    )
    add_catalog(p_run)
    p_run.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="content-addressed result cache: warm re-runs load "
        "bit-identical results from disk",
    )
    p_run.add_argument(
        "--shard",
        metavar="I/N",
        help="run only shard I of N (seeded as if the whole suite ran; "
        "merge shards with SuiteResult.merge)",
    )
    p_run.add_argument(
        "--on-error",
        choices=("raise", "skip"),
        default="raise",
        help="what to do when one scenario fails: 'raise' aborts the "
        "run (default); 'skip' isolates the failure (full traceback "
        "kept, exit code 1) and finishes the rest",
    )
    p_run.add_argument(
        "--journal",
        metavar="FILE",
        help="checkpoint completed scenarios to this JSON journal; "
        "re-running the same command after a crash resumes where it "
        "left off (pair with --cache-dir to skip re-execution)",
    )
    p_run.add_argument(
        "-v", "--verbose", action="store_true",
        help="DEBUG logging to stderr (cache hits/misses, dispatch, "
        "job transitions)",
    )
    p_run.add_argument(
        "--telemetry",
        metavar="FILE",
        help="write the run's telemetry snapshot as JSON; inspect with "
        "python -m repro.telemetry report FILE",
    )
    p_run.set_defaults(func=_cmd_run)

    p_lint = sub.add_parser(
        "lint",
        help="statically validate catalog JSON files (SPEC rules)",
    )
    p_lint.add_argument(
        "files", nargs="*", metavar="FILE", help="catalog JSON files"
    )
    add_catalog(p_lint)
    p_lint.set_defaults(func=_cmd_lint)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
