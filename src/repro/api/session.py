"""The session facade: one object owning every experiment resource.

A :class:`Session` bundles what the pre-facade entry points each
re-plumbed on their own — an
:class:`~repro.exec.runner.ExperimentRunner`, a
:class:`~repro.scenarios.registry.ScenarioRegistry` (built-ins plus any
file-based catalogs), an optional content-addressed
:class:`~repro.results.ResultCache` and a default seed policy — and
exposes the whole pipeline through two verbs:

* :meth:`Session.run` — synchronous execution of a scenario, a
  :class:`~repro.api.builder.StudyBuilder`, or a list of either (a
  suite), returning a :class:`~repro.api.result.RunResult`;
* :meth:`Session.submit` — the same work as a queued
  :class:`~repro.api.jobs.JobHandle` with status, partial progress,
  ``result()`` and cooperative ``cancel()``.

Results are bit-identical to the legacy entry points
(``ScenarioSuite.run``, ``MeasurementPlan.execute``, ...) for the same
seed — the facade lowers onto them, it does not fork them — which is
pinned by ``tests/test_api_equivalence.py``.
"""

from __future__ import annotations

import weakref
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, List, Optional, Sequence, Union

from repro.api.builder import StudyBuilder
from repro.api.jobs import JobHandle
from repro.telemetry import Telemetry, configure_logging
from repro.telemetry.profiling import PROFILE_MODES
from repro.api.result import CampaignRunResult, RunResult
from repro.attacks.campaign import AttackCampaign
from repro.core.study import DiversityStudy, StudyResult
from repro.exec.resilience import RetryPolicy
from repro.exec.runner import ExperimentRunner
from repro.exec.seeding import SeedLike, as_seed_sequence
from repro.faults import FaultPlan, plan_from_env
from repro.results import (
    ResultCache,
    StreamingSummary,
    provenance_for,
    summarize_records,
)
from repro.scenarios.registry import SCENARIOS, ScenarioRegistry
from repro.scenarios.spec import Scenario
from repro.scenarios.suite import (
    ScenarioRunResult,
    ScenarioSuite,
    SuiteResult,
)

#: What Session.run/submit accept as a single experiment target.
StudyLike = Union[str, Scenario, StudyBuilder]
#: A single target or a suite of them.
TargetLike = Union[StudyLike, Sequence[StudyLike]]


class Session:
    """The public entry point of the library (see :mod:`repro.api`).

    Args:
        backend: Execution backend every run of this session uses
            (``"serial"`` / ``"thread"`` / ``"process"``).  Results
            never depend on it; wall-clock does.
        n_workers: Worker-pool width for parallel backends.
        seed: Default root seed for runs that do not pass one.  The
            default (``0``) makes every session reproducible out of the
            box; pass ``None`` to draw fresh OS entropy per run (the
            drawn entropy is still recorded in each result's
            provenance).
        cache_dir: Enable content-addressed result caching for scenario
            runs in this directory (see
            :class:`~repro.scenarios.suite.ScenarioSuite`).
        registry: Scenario catalog to resolve names in.  The default is
            a *copy* of the library-wide built-ins, so session-local
            additions never mutate the global catalog; an explicitly
            passed registry is used as-is (caller-owned).
        catalog_dirs: Directories of JSON scenario specs layered on top
            of ``registry`` via
            :meth:`~repro.scenarios.registry.ScenarioRegistry.load_dir`.
            The session gets its own registry copy — the library-wide
            catalog is never mutated.
        max_parallel_jobs: How many submitted jobs may execute
            concurrently (default 1: jobs queue in submission order,
            which keeps one parallel runner saturated instead of
            oversubscribing cores).
        chunk_size: Work units per pool task (see
            :class:`~repro.exec.runner.ExperimentRunner`); mostly for
            tests that want fine-grained job progress.
        telemetry: Observability for this session's runs.  ``False``
            (default) is a no-op fast path; ``True`` records a fresh
            span/metric/event snapshot per run and attaches it to the
            result (``result.telemetry``); ``"cprofile"`` /
            ``"tracemalloc"`` additionally profile each work unit; a
            :class:`~repro.telemetry.Telemetry` instance accumulates
            every run into that one caller-owned object.  Telemetry
            never affects records — snapshots live outside the spec
            digest, like ``Provenance.execution``.
        verbose: Attach a DEBUG stderr handler to the ``repro`` logger
            hierarchy (see :func:`repro.telemetry.configure_logging`);
            the library is silent by default (``NullHandler``).
        retry: Optional :class:`~repro.exec.resilience.RetryPolicy` for
            every run of this session — transient worker failures are
            retried with deterministic backoff, hung chunks are
            re-dispatched after the watchdog timeout, and dead process
            pools are respawned (then degraded to inline execution)
            instead of failing the run.  Retried work re-runs with its
            originally spawned seeds, so results never depend on the
            policy.  ``None`` keeps legacy fail-fast worker-error
            semantics (pool deaths are still survived).
        fault_plan: Optional :class:`~repro.faults.FaultPlan` injecting
            seeded crashes/hangs/kills/payload corruption into this
            session's execution — chaos testing only.  Defaults to the
            ``REPRO_FAULT_PLAN`` environment variable (unset = no
            injection, always); recorded on ``Provenance.execution``
            *outside* the spec digest.

    Example:
        >>> from repro.api import Session
        >>> with Session() as session:
        ...     result = session.run("smoke", seed=7)
        ...     round(result.summary["psa"], 3) >= 0.0
        True
    """

    def __init__(
        self,
        backend: str = "serial",
        n_workers: Optional[int] = None,
        *,
        seed: Optional[SeedLike] = 0,
        cache_dir: Optional[str] = None,
        registry: Optional[ScenarioRegistry] = None,
        catalog_dirs: Optional[Sequence[str]] = None,
        max_parallel_jobs: int = 1,
        chunk_size: Optional[int] = None,
        telemetry: Union[bool, str, Telemetry] = False,
        verbose: bool = False,
        retry: Optional[RetryPolicy] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        if max_parallel_jobs < 1:
            raise ValueError(
                f"max_parallel_jobs must be >= 1, got {max_parallel_jobs}"
            )
        if isinstance(telemetry, str) and telemetry not in PROFILE_MODES:
            raise ValueError(
                f"unknown telemetry profile {telemetry!r}; expected "
                f"True/False, a Telemetry instance, or one of "
                f"{[m for m in PROFILE_MODES if m]}"
            )
        self._telemetry_mode = telemetry
        if verbose:
            configure_logging()
        if fault_plan is None:
            fault_plan = plan_from_env()
        self.retry = retry
        self.fault_plan = fault_plan
        self.runner = ExperimentRunner(
            backend,
            n_workers,
            chunk_size,
            retry=retry,
            fault_plan=fault_plan,
        )
        if registry is not None:
            # A caller-supplied registry is caller-owned: use it as-is
            # (copy only if catalog dirs are layered on top).
            self.registry = registry.copy() if catalog_dirs else registry
        else:
            # Always a copy of the built-ins, so session-local additions
            # (registry.load_dir, registry.add) never leak into the
            # library-wide catalog.
            self.registry = SCENARIOS.copy()
        for directory in catalog_dirs or ():
            self.registry.load_dir(directory)
        self.cache = ResultCache(cache_dir) if cache_dir else None
        self.default_seed = seed
        self._max_parallel_jobs = max_parallel_jobs
        self._executor: Optional[ThreadPoolExecutor] = None
        # Weak references: a long-lived session must not pin every
        # finished job's result tables for its whole lifetime — a
        # handle (and its result) lives as long as the caller keeps it.
        self._jobs: List["weakref.ref[JobHandle]"] = []
        self._closed = False

    # ---- resource accessors ---------------------------------------------

    @property
    def backend_name(self) -> str:
        """The session runner's backend name."""
        return self.runner.backend_name

    def scenario(self, name_or_spec: Union[str, Scenario]) -> Scenario:
        """Resolve a scenario name in this session's registry (specs
        pass through unchanged).

        Raises:
            ValueError: For an unknown name.
        """
        if isinstance(name_or_spec, Scenario):
            return name_or_spec
        return self.registry.get(name_or_spec)

    def scenarios(self, tag: Optional[str] = None) -> List[Scenario]:
        """Registered scenarios, optionally filtered by tag."""
        return (
            self.registry.by_tag(tag) if tag else self.registry.all()
        )

    def study(self, target: StudyLike) -> StudyBuilder:
        """A fluent :class:`~repro.api.builder.StudyBuilder` over one
        scenario (name, spec, or an existing builder to extend)."""
        if isinstance(target, StudyBuilder):
            return target
        return StudyBuilder(self, self.scenario(target))

    # ---- target lowering -------------------------------------------------

    def _resolve_one(self, target: StudyLike) -> Scenario:
        if isinstance(target, StudyBuilder):
            return target.build()
        return self.scenario(target)

    def _resolve_targets(
        self, target: TargetLike
    ) -> tuple[List[Scenario], bool]:
        """``(scenarios, is_suite)`` for any accepted target shape."""
        if isinstance(target, (str, Scenario, StudyBuilder)):
            return [self._resolve_one(target)], False
        items = list(target)  # tolerate one-shot iterables
        for item in items:
            if isinstance(item, StudyBuilder) and item._seed is not None:
                raise ValueError(
                    f"builder for {item._base.name!r} pins its own seed, "
                    "which is ambiguous inside a suite (one root seed "
                    "covers the whole run) — drop .seed(...) and pass "
                    "seed= to run()/submit() instead"
                )
        scenarios = [self._resolve_one(item) for item in items]
        if not scenarios:
            raise ValueError("a suite needs at least one scenario")
        return scenarios, True

    def _suite(
        self,
        scenarios: Sequence[Scenario],
        shard: Optional[tuple] = None,
    ) -> ScenarioSuite:
        return ScenarioSuite(
            scenarios,
            registry=self.registry,
            runner=self.runner,
            cache=self.cache,
            shard=shard,
        )

    def _effective_seed(
        self, seed: Optional[SeedLike], target: Optional[TargetLike] = None
    ) -> SeedLike:
        """Explicit seed > a single builder's pinned seed > session policy."""
        if seed is not None:
            return seed
        if isinstance(target, StudyBuilder) and target._seed is not None:
            return target._seed
        return self.default_seed

    @staticmethod
    def _effective_batch_size(
        batch_size: Optional[int], target: Optional[TargetLike] = None
    ) -> Optional[int]:
        """Explicit batch size > a single builder's pinned batch size."""
        if batch_size is not None:
            return batch_size
        if isinstance(target, StudyBuilder):
            return target._batch_size
        return None

    # ---- telemetry plumbing ---------------------------------------------

    def _telemetry_for_run(self, source: str) -> Optional[Telemetry]:
        """The telemetry object one run records into, per session config.

        ``True``/profile modes get a fresh instance per run (so
        concurrent jobs never share mutable state); a caller-supplied
        instance is reused as-is and accumulates across runs.
        """
        mode = self._telemetry_mode
        if mode is False or mode is None:
            return None
        if isinstance(mode, Telemetry):
            mode.meta.setdefault("source", source)
            mode.meta.setdefault("backend", self.backend_name)
            return mode
        profile = mode if isinstance(mode, str) else None
        return Telemetry(
            profile=profile,
            meta={
                "source": source,
                "backend": self.backend_name,
                "n_workers": self.runner.n_workers,
            },
        )

    # ---- synchronous execution ------------------------------------------

    def run(
        self,
        target: TargetLike,
        *,
        seed: Optional[SeedLike] = None,
        shard: Optional[tuple] = None,
        batch_size: Optional[int] = None,
        on_error: str = "raise",
        journal: Optional[Any] = None,
    ) -> RunResult:
        """Execute synchronously.

        Args:
            target: A scenario name, a :class:`Scenario`, a
                :class:`StudyBuilder`, or a sequence of those (a
                suite).
            seed: Root seed; defaults to the session's seed policy.
                Records are bit-identical across backends for the same
                seed.
            shard: Optional ``(index, count)`` suite sharding — seeds
                as if the whole suite ran; merge shard results with
                :meth:`~repro.scenarios.suite.SuiteResult.merge`.
            batch_size: Mega-batch lane count for campaign replications
                (see :meth:`ScenarioSuite.run
                <repro.scenarios.suite.ScenarioSuite.run>`); defaults
                to a single builder's pinned
                :meth:`~repro.api.builder.StudyBuilder.batch_size`.
                Recorded on ``provenance.execution``.
            on_error: ``"raise"`` (default) surfaces the first scenario
                failure; ``"skip"`` isolates per-scenario failures into
                ``SuiteResult.errors`` (full tracebacks included) so
                sibling scenarios still complete.  A *single* failed
                target under ``"skip"`` raises ``RuntimeError`` carrying
                the captured traceback, since there is no suite result
                to park the error on.
            journal: Optional run-journal path (or
                :class:`~repro.scenarios.RunJournal`): completed
                scenarios are checkpointed so a crashed/cancelled run
                re-invoked with the same journal (and a session cache)
                resumes where it died.

        Returns:
            A :class:`~repro.scenarios.ScenarioRunResult` for a single
            target, a :class:`~repro.scenarios.SuiteResult` for a
            sequence — both satisfy
            :class:`~repro.api.result.RunResult` and carry provenance.
        """
        self._ensure_open()
        scenarios, is_suite = self._resolve_targets(target)
        if shard is not None and not is_suite:
            raise ValueError(
                "shard= requires a suite (a sequence of targets); a "
                "single scenario cannot be sharded"
            )
        suite = self._suite(scenarios, shard=shard)
        run_seed = self._effective_seed(seed, target)
        run_batch = self._effective_batch_size(batch_size, target)
        telemetry = self._telemetry_for_run("session.run")
        if telemetry is None:
            suite_result = suite.run(
                seed=run_seed,
                batch_size=run_batch,
                on_error=on_error,
                journal=journal,
            )
        else:
            with telemetry.activate(), telemetry.span("session.run"):
                suite_result = suite.run(
                    seed=run_seed,
                    batch_size=run_batch,
                    on_error=on_error,
                    journal=journal,
                )
            snapshot = telemetry.snapshot()
            suite_result.telemetry = snapshot
            for scenario_result in suite_result.results:
                scenario_result.telemetry = snapshot
        if is_suite:
            return suite_result
        return self._single_result(suite_result)

    @staticmethod
    def _single_result(suite_result: SuiteResult) -> ScenarioRunResult:
        """The lone result of a single-target run — or, when
        ``on_error="skip"`` swallowed it, the failure re-raised (a
        single target has no suite result to park the error on)."""
        if suite_result.results:
            return suite_result.results[0]
        failure = suite_result.errors[0]
        raise RuntimeError(
            f"{failure}\n\n--- captured traceback ---\n{failure.traceback}"
        )

    def full_study(
        self,
        target: StudyLike,
        *,
        seed: Optional[SeedLike] = None,
    ) -> StudyResult:
        """Run the complete three-step pipeline for one scenario —
        attack modeling (SAN + attack tree), DoE measurement, ANOVA
        assessment — returning the full
        :class:`~repro.core.study.StudyResult` (also a
        :class:`~repro.api.result.RunResult`)."""
        self._ensure_open()
        scenario = self._resolve_one(target)
        study = DiversityStudy.from_scenario(scenario, runner=self.runner)
        run_seed = self._effective_seed(seed, target)
        telemetry = self._telemetry_for_run("session.full_study")
        if telemetry is None:
            return study.execute(run_seed)
        with telemetry.activate(), telemetry.span("session.full_study"):
            result = study.execute(run_seed)
        result.telemetry = telemetry.snapshot()
        return result

    def campaign(
        self,
        target: StudyLike,
        replications: int,
        *,
        seed: Optional[SeedLike] = None,
        stream: bool = False,
        max_records_in_ram: Optional[int] = None,
        batch_size: Optional[int] = None,
    ) -> CampaignRunResult:
        """Run a Monte-Carlo campaign batch against the scenario's
        baseline (undiversified) system.

        Args:
            target: Scenario name, :class:`Scenario` or builder.
            replications: Batch size.
            seed: Root seed; defaults to the session's seed policy.
            stream: Run out-of-core: response rows spill to disk shards
                once ``max_records_in_ram`` rows are buffered, and the
                scalar ``summary`` comes from a running
                :class:`~repro.results.StreamingSummary` (attached as
                the result's ``aggregate``) instead of a second pass
                over the table.  Records are identical to the default
                for the same seed; summaries agree to ~1e-9.
            max_records_in_ram: In-RAM row bound for streaming runs;
                implies ``stream=True``.  Defaults to
                :data:`repro.results.DEFAULT_MAX_RECORDS_IN_RAM`.
            batch_size: Mega-batch lane count (see
                :meth:`AttackCampaign.run_batch_table
                <repro.attacks.campaign.AttackCampaign
                .run_batch_table>`); defaults to a builder's pinned
                :meth:`~repro.api.builder.StudyBuilder.batch_size`.
                ``1`` is bit-identical to the scalar path; larger
                vectorized batches are distribution-identical.
                Composes with ``stream=``; recorded on
                ``provenance.execution`` outside the spec digest.

        Returns:
            A :class:`~repro.api.result.CampaignRunResult` with one
            response row per replication, bit-identical to
            ``AttackCampaign.run_batch_table`` on the same seed and
            runner.
        """
        self._ensure_open()
        scenario = self._resolve_one(target)
        root = as_seed_sequence(self._effective_seed(seed, target))
        campaign = self._campaign_for(scenario)
        effective_max = self._effective_stream_bound(
            stream, max_records_in_ram
        )
        effective_batch = self._effective_batch_size(batch_size, target)
        batch_execution = (
            {"batch_size": effective_batch}
            if effective_batch is not None
            else None
        )

        def produce() -> CampaignRunResult:
            if effective_max is None:
                table = campaign.run_batch_table(
                    replications,
                    rng=root,
                    runner=self.runner,
                    batch_size=effective_batch,
                )
                return self._campaign_result(
                    scenario,
                    replications,
                    root,
                    table,
                    execution=batch_execution,
                )
            aggregate = StreamingSummary()
            table = campaign.run_batch_table(
                replications,
                rng=root,
                runner=self.runner,
                max_records_in_ram=effective_max,
                aggregators=(aggregate,),
                batch_size=effective_batch,
            )
            return self._campaign_result(
                scenario,
                replications,
                root,
                table,
                aggregate=aggregate,
                execution={
                    "stream": True,
                    "max_records_in_ram": effective_max,
                    **(batch_execution or {}),
                },
            )

        telemetry = self._telemetry_for_run("session.campaign")
        if telemetry is None:
            return produce()
        with telemetry.activate(), telemetry.span("session.campaign"):
            result = produce()
        result.telemetry = telemetry.snapshot()
        return result

    @staticmethod
    def _effective_stream_bound(
        stream: bool, max_records_in_ram: Optional[int]
    ) -> Optional[int]:
        """Resolve the ``stream=`` / ``max_records_in_ram=`` pair to an
        in-RAM row bound (``None`` = default in-RAM execution)."""
        if max_records_in_ram is not None:
            return max_records_in_ram
        if stream:
            from repro.results import DEFAULT_MAX_RECORDS_IN_RAM

            return DEFAULT_MAX_RECORDS_IN_RAM
        return None

    @staticmethod
    def _campaign_for(scenario: Scenario) -> AttackCampaign:
        return AttackCampaign(
            scenario.build_network(),
            scenario.build_catalog(),
            scenario.build_threat(),
            scenario.build_campaign_config(),
        )

    def _campaign_result(
        self,
        scenario: Scenario,
        replications: int,
        root: "Any",
        table: "Any",
        aggregate: Optional[StreamingSummary] = None,
        execution: Optional[dict] = None,
    ) -> CampaignRunResult:
        """The shared result/provenance assembly of campaign runs —
        sync and job paths must digest the identical payload.  The
        ``execution`` knobs are recorded on the provenance but excluded
        from its digest, so streamed and in-RAM runs of the same spec
        digest identically."""
        summary = (
            aggregate.summary()
            if aggregate is not None
            else summarize_records(table)
        )
        return CampaignRunResult(
            table=table,
            summary=summary,
            scenario_name=scenario.name,
            replications=replications,
            provenance=provenance_for(
                {
                    "scenario": scenario.to_dict(),
                    "replications": replications,
                    "kind": "campaign",
                },
                root,
                self.runner,
                source="campaign",
                execution=execution,
            ),
            aggregate=aggregate,
        )

    # ---- asynchronous execution -----------------------------------------

    def submit(
        self,
        target: TargetLike,
        *,
        seed: Optional[SeedLike] = None,
        shard: Optional[tuple] = None,
        description: Optional[str] = None,
        batch_size: Optional[int] = None,
        on_error: str = "raise",
        journal: Optional[Any] = None,
    ) -> JobHandle:
        """Queue the same work :meth:`run` does; returns a
        :class:`~repro.api.jobs.JobHandle` immediately.

        Progress counts completed scenarios.  The handle's ``result()``
        is bit-identical to the synchronous :meth:`run` with the same
        seed (and ``batch_size``).  Jobs beyond ``max_parallel_jobs``
        wait in submission order.  ``on_error=`` / ``journal=`` behave
        exactly as on :meth:`run` — with a journal (plus the session
        cache), a cancelled or crashed job resubmitted with the same
        arguments resumes from its last completed scenario.
        """
        self._ensure_open()
        scenarios, is_suite = self._resolve_targets(target)
        if shard is not None and not is_suite:
            raise ValueError(
                "shard= requires a suite (a sequence of targets); a "
                "single scenario cannot be sharded"
            )
        suite = self._suite(scenarios, shard=shard)
        run_seed = self._effective_seed(seed, target)
        run_batch = self._effective_batch_size(batch_size, target)
        names = ", ".join(s.name for s in scenarios)

        def body(job: JobHandle) -> RunResult:
            telemetry = job._telemetry
            if telemetry is None:
                result = suite.run(
                    seed=run_seed,
                    on_result=job._advance,
                    cancel=job._cancel_event,
                    batch_size=run_batch,
                    on_error=on_error,
                    journal=journal,
                )
                return result if is_suite else self._single_result(result)
            with telemetry.activate(), telemetry.span("session.run"):
                result = suite.run(
                    seed=run_seed,
                    on_result=job._advance,
                    cancel=job._cancel_event,
                    batch_size=run_batch,
                    on_error=on_error,
                    journal=journal,
                )
            snapshot = telemetry.snapshot()
            result.telemetry = snapshot
            for scenario_result in result.results:
                scenario_result.telemetry = snapshot
            return result if is_suite else self._single_result(result)

        total = len(scenarios)
        if shard is not None:
            index, count = shard
            total = len(range(index, len(scenarios), count))
        return self._submit_job(
            description or f"run: {names}", total, body,
            telemetry=self._telemetry_for_run("session.submit"),
        )

    def submit_campaign(
        self,
        target: StudyLike,
        replications: int,
        *,
        seed: Optional[SeedLike] = None,
        description: Optional[str] = None,
        stream: bool = False,
        max_records_in_ram: Optional[int] = None,
        batch_size: Optional[int] = None,
    ) -> JobHandle:
        """Queue a campaign batch; progress counts replications
        (one advance per mega-batch unit when ``batch_size`` is set).

        ``stream=`` / ``max_records_in_ram=`` / ``batch_size=`` behave
        exactly as on the synchronous :meth:`campaign`.
        """
        self._ensure_open()
        scenario = self._resolve_one(target)
        root = as_seed_sequence(self._effective_seed(seed, target))
        campaign = self._campaign_for(scenario)
        effective_max = self._effective_stream_bound(
            stream, max_records_in_ram
        )
        effective_batch = self._effective_batch_size(batch_size, target)
        batch_execution = (
            {"batch_size": effective_batch}
            if effective_batch is not None
            else None
        )

        def produce(job: JobHandle) -> CampaignRunResult:
            if effective_max is None:
                table = campaign.run_batch_table(
                    replications,
                    rng=as_seed_sequence(root),
                    runner=self.runner,
                    on_result=job._advance,
                    cancel=job._cancel_event,
                    batch_size=effective_batch,
                )
                return self._campaign_result(
                    scenario,
                    replications,
                    root,
                    table,
                    execution=batch_execution,
                )
            aggregate = StreamingSummary()
            table = campaign.run_batch_table(
                replications,
                rng=as_seed_sequence(root),
                runner=self.runner,
                on_result=job._advance,
                cancel=job._cancel_event,
                max_records_in_ram=effective_max,
                aggregators=(aggregate,),
                batch_size=effective_batch,
            )
            return self._campaign_result(
                scenario,
                replications,
                root,
                table,
                aggregate=aggregate,
                execution={
                    "stream": True,
                    "max_records_in_ram": effective_max,
                    **(batch_execution or {}),
                },
            )

        def body(job: JobHandle) -> CampaignRunResult:
            telemetry = job._telemetry
            if telemetry is None:
                return produce(job)
            with telemetry.activate(), telemetry.span("session.campaign"):
                result = produce(job)
            result.telemetry = telemetry.snapshot()
            return result

        return self._submit_job(
            description
            or f"campaign: {scenario.name} x{replications}",
            replications,
            body,
            telemetry=self._telemetry_for_run("session.submit_campaign"),
        )

    def _submit_job(
        self,
        description: str,
        total_units: int,
        body: Callable[[JobHandle], Any],
        telemetry: Optional[Telemetry] = None,
    ) -> JobHandle:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self._max_parallel_jobs,
                thread_name_prefix="repro-api-job",
            )
        handle = JobHandle(description, total_units)
        # Attach before binding so every transition after PENDING (which
        # _attach_telemetry replays) is forwarded as a telemetry event.
        handle._attach_telemetry(telemetry)
        handle._bind(self._executor.submit(handle._run, body))
        self._jobs = [ref for ref in self._jobs if ref() is not None]
        self._jobs.append(weakref.ref(handle))
        return handle

    @property
    def jobs(self) -> List[JobHandle]:
        """Jobs submitted through this session, in order — handles are
        held weakly, so jobs the caller has dropped (results and all)
        disappear from this listing once collected."""
        return [job for ref in self._jobs if (job := ref()) is not None]

    # ---- lifecycle -------------------------------------------------------

    def _ensure_open(self) -> None:
        if self._closed:
            raise RuntimeError("session is closed")

    def close(self, cancel_jobs: bool = False) -> None:
        """Shut the session's job executor down (idempotent).

        Args:
            cancel_jobs: Also cancel queued/running jobs instead of
                waiting for them.
        """
        if self._closed:
            return
        self._closed = True
        if cancel_jobs:
            for job in self.jobs:
                if not job.done():
                    job.cancel()
        if self._executor is not None:
            self._executor.shutdown(wait=not cancel_jobs)
            self._executor = None

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Session(backend={self.backend_name!r}, "
            f"n_workers={self.runner.n_workers}, "
            f"scenarios={len(self.registry)}, "
            f"cache={'on' if self.cache else 'off'}, "
            f"jobs={len(self.jobs)})"
        )
