"""The unified result side of the public API.

Every entry point of :class:`repro.api.Session` returns an object
satisfying the :class:`RunResult` protocol — a columnar
:class:`~repro.results.RecordTable` of long-format records, a scalar
``summary`` dict, and a :class:`~repro.results.Provenance` reproduction
record.  The concrete types are the subsystem results themselves:

========================  =======================================
entry point               result type (all satisfy ``RunResult``)
========================  =======================================
``Session.run(name)``     :class:`repro.scenarios.ScenarioRunResult`
``Session.run([a, b])``   :class:`repro.scenarios.SuiteResult`
``Session.full_study``    :class:`repro.core.study.StudyResult`
``MeasurementPlan``       :class:`repro.core.measurement.MeasurementResult`
``Session.campaign``      :class:`CampaignRunResult` (defined here)
========================  =======================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Protocol, runtime_checkable

from repro.results import Provenance, RecordTable, StreamingSummary
from repro.telemetry.core import TelemetrySnapshot


@runtime_checkable
class RunResult(Protocol):
    """What every facade entry point returns.

    Attributes:
        table: Columnar long-format records
            (:class:`~repro.results.RecordTable`) carrying at least the
            library's response columns ``success`` / ``tta`` / ``ttsf``
            / ``final_ratio``.
        summary: Scalar metrics over the records (``psa`` and the
            restricted means — see
            :data:`repro.results.SUMMARY_METRICS`).
        provenance: The reproduction record (spec digest, root seed
            material, backend, library version); ``None`` only on
            legacy shared-generator executions.
    """

    @property
    def table(self) -> RecordTable: ...  # pragma: no cover - protocol

    @property
    def summary(self) -> Dict[str, float]: ...  # pragma: no cover

    provenance: Optional[Provenance]


@dataclass
class CampaignRunResult:
    """A Monte-Carlo attack-campaign batch as a :class:`RunResult`.

    Attributes:
        table: One response row per replication, in replication order
            (``success`` / ``tta`` / ``ttsf`` / ``final_ratio``).
        summary: Scalar metrics over the batch.
        scenario_name: The scenario the campaign was built from.
        replications: Batch size.
        provenance: Reproduction record.
        aggregate: The running :class:`~repro.results.StreamingSummary`
            that was folded in as replications completed — present on
            streaming runs (``Session.campaign(..., stream=True)``),
            carrying per-indicator running means, variances, CIs and
            quantile sketches without touching the table.
        telemetry: Observability snapshot of the run (spans, metrics,
            events), present when the session enables telemetry.
            Recorded alongside ``Provenance.execution`` and, like it,
            deliberately outside the spec digest.
    """

    table: RecordTable
    summary: Dict[str, float]
    scenario_name: str
    replications: int
    provenance: Optional[Provenance] = None
    aggregate: Optional[StreamingSummary] = None
    telemetry: Optional[TelemetrySnapshot] = None
