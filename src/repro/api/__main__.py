"""``python -m repro.api`` — facade utilities (``--selftest``).

The selftest is the installation smoke check wired into
``scripts/ci.sh``: it builds a :class:`~repro.api.Session` with
telemetry enabled, runs the ``smoke`` scenario end to end through
``Session.submit`` + the :class:`~repro.api.jobs.JobHandle` lifecycle,
and verifies the result shape, provenance and observability snapshot —
in a few seconds, exit 0 on success.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence


def _analysis_smoke() -> bool:
    """The static analyzer catches a seeded defect and a bad catalog."""
    from repro.analysis import analyze_source

    det = analyze_source(
        "import numpy as np\nrng = np.random.default_rng()\n",
        path="snippet.py",
    )
    spec = analyze_source(
        '{"name": "x", "topology": "not-a-topology"}',
        path="snippet.json",
        kind="spec",
    )
    return any(f.rule == "DET001" for f in det.findings) and any(
        f.rule == "SPEC003" for f in spec.findings
    )


def selftest(
    backend: str = "serial", seed: int = 0, verbose: bool = False
) -> int:
    """Run the smoke scenario through Session/JobHandle; 0 on success."""
    from repro.api import JobState, RunResult, Session
    from repro.api.jobs import JobEvent

    with Session(backend=backend, telemetry=True, verbose=verbose) as session:
        job = session.submit("smoke", seed=seed)
        result = job.result()
        snapshot = result.telemetry
        event_states = [e.state for e in job.events]
        checks = [
            ("job reached DONE", job.status is JobState.DONE),
            (
                "progress complete",
                job.progress.completed == job.progress.total > 0,
            ),
            ("result satisfies RunResult", isinstance(result, RunResult)),
            ("records present", len(result.table) > 0),
            ("summary has psa", "psa" in result.summary),
            (
                "provenance recorded",
                result.provenance is not None
                and result.provenance.backend == backend,
            ),
            ("telemetry snapshot attached", snapshot is not None),
            (
                "telemetry spans recorded",
                snapshot is not None
                and snapshot.total_seconds("suite.run") > 0.0,
            ),
            (
                "telemetry report renders",
                snapshot is not None
                and "TELEMETRY REPORT" in snapshot.render(),
            ),
            (
                "job lifecycle events in order",
                event_states[:2]
                == [JobState.PENDING, JobState.RUNNING]
                and event_states[-1] is JobState.DONE
                and all(isinstance(e, JobEvent) for e in job.events),
            ),
            (
                "event timestamps monotonic",
                all(
                    a.time_monotonic <= b.time_monotonic
                    for a, b in zip(job.events, job.events[1:])
                ),
            ),
            ("static analysis flags unseeded RNG", _analysis_smoke()),
        ]
    # The user-facing wall clock is the recorded span itself — the
    # selftest exercises exactly what it reports.
    elapsed = snapshot.total_seconds("session.run") if snapshot else 0.0
    failures = [label for label, ok in checks if not ok]
    for label, ok in checks:
        print(f"  [{'ok' if ok else 'FAIL'}] {label}")
    if failures:
        print(f"selftest FAILED ({', '.join(failures)})", file=sys.stderr)
        return 1
    print(
        f"selftest ok: smoke scenario via Session/JobHandle "
        f"({len(result.table)} records, backend={backend}) "
        f"in {elapsed:.1f}s"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.api",
        description="Public-facade utilities.",
    )
    parser.add_argument(
        "--selftest",
        action="store_true",
        help="run the smoke scenario through Session/JobHandle and exit",
    )
    parser.add_argument(
        "--backend",
        default="serial",
        help="selftest execution backend (default: serial)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="selftest seed (default: 0)"
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true",
        help="DEBUG logging to stderr during the selftest",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.selftest:
        return selftest(
            backend=args.backend, seed=args.seed, verbose=args.verbose
        )
    build_parser().print_help()
    return 2


if __name__ == "__main__":
    sys.exit(main())
