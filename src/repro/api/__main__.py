"""``python -m repro.api`` — facade utilities (``--selftest``).

The selftest is the installation smoke check wired into
``scripts/ci.sh``: it builds a :class:`~repro.api.Session`, runs the
``smoke`` scenario end to end through ``Session.submit`` + the
:class:`~repro.api.jobs.JobHandle` lifecycle, and verifies the result
shape and provenance — in a few seconds, exit 0 on success.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence


def selftest(backend: str = "serial", seed: int = 0) -> int:
    """Run the smoke scenario through Session/JobHandle; 0 on success."""
    from repro.api import JobState, RunResult, Session

    started = time.perf_counter()
    with Session(backend=backend) as session:
        job = session.submit("smoke", seed=seed)
        result = job.result()
        checks = [
            ("job reached DONE", job.status is JobState.DONE),
            (
                "progress complete",
                job.progress.completed == job.progress.total > 0,
            ),
            ("result satisfies RunResult", isinstance(result, RunResult)),
            ("records present", len(result.table) > 0),
            ("summary has psa", "psa" in result.summary),
            (
                "provenance recorded",
                result.provenance is not None
                and result.provenance.backend == backend,
            ),
        ]
    elapsed = time.perf_counter() - started
    failures = [label for label, ok in checks if not ok]
    for label, ok in checks:
        print(f"  [{'ok' if ok else 'FAIL'}] {label}")
    if failures:
        print(f"selftest FAILED ({', '.join(failures)})", file=sys.stderr)
        return 1
    print(
        f"selftest ok: smoke scenario via Session/JobHandle "
        f"({len(result.table)} records, backend={backend}) "
        f"in {elapsed:.1f}s"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.api",
        description="Public-facade utilities.",
    )
    parser.add_argument(
        "--selftest",
        action="store_true",
        help="run the smoke scenario through Session/JobHandle and exit",
    )
    parser.add_argument(
        "--backend",
        default="serial",
        help="selftest execution backend (default: serial)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="selftest seed (default: 0)"
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.selftest:
        return selftest(backend=args.backend, seed=args.seed)
    build_parser().print_help()
    return 2


if __name__ == "__main__":
    sys.exit(main())
