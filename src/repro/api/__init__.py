"""repro.api — the stable public facade over every entry point.

The paper's workflow is one pipeline — build a scenario, run a
Monte-Carlo campaign/measurement, aggregate indicators — and this
package is its single front door.  A :class:`Session` owns the shared
resources (execution runner, scenario registry + file catalogs, result
cache, default seed policy); a fluent :class:`StudyBuilder` configures
one experiment; :meth:`Session.run` executes synchronously and
:meth:`Session.submit` queues the same work as a :class:`JobHandle`
(status / partial progress / ``result()`` / cooperative ``cancel()``).
Every entry point returns a :class:`RunResult` — RecordTable + summary
+ :class:`~repro.results.Provenance` — and is bit-identical to the
legacy entry point it lowers onto, for the same seed.

Quickstart::

    from repro.api import Session

    with Session(backend="process", n_workers=4) as session:
        # One scenario, synchronously.
        result = session.study("cooling_stuxnet") \\
            .override(threat_params={"entry_rate": 0.3}) \\
            .replications(50) \\
            .run(seed=42)
        print(result.summary["psa"], result.provenance.spec_digest[:12])

        # A suite, as a queueable job.
        job = session.submit(["smoke", "cooling_duqu"], seed=7)
        print(job.status, job.progress)
        suite = job.result()

Stability: this package (plus :class:`~repro.scenarios.spec.Scenario`
and the result types listed in :mod:`repro.api.result`) is the stable
surface future backends plug into; modules below it are internal —
stable for now but reached through the facade.  See the README's
"Public API" section for the full table and migration notes.

``python -m repro.api --selftest`` smoke-checks an installation in a
few seconds.
"""

from repro.api.builder import StudyBuilder
from repro.api.jobs import (
    JobCancelled,
    JobEvent,
    JobHandle,
    JobProgress,
    JobState,
)
from repro.api.result import CampaignRunResult, RunResult
from repro.api.session import Session
from repro.results import Provenance

__all__ = [
    "CampaignRunResult",
    "JobCancelled",
    "JobEvent",
    "JobHandle",
    "JobProgress",
    "JobState",
    "Provenance",
    "RunResult",
    "Session",
    "StudyBuilder",
]
