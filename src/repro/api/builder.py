"""Fluent study construction over a session's scenario catalog.

A :class:`StudyBuilder` is an immutable chain of overrides on a base
:class:`~repro.scenarios.spec.Scenario`:

    session.study("cooling_stuxnet") \\
        .override(threat_params={"entry_rate": 0.3}) \\
        .replications(500) \\
        .run()

Every step returns a *new* builder (the original can be reused for
variant sweeps), ``build()`` lowers the chain to a validated
:class:`Scenario`, and the run/submit verbs delegate to the owning
:class:`~repro.api.session.Session`.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Dict, Optional

from repro.exec.seeding import SeedLike
from repro.scenarios.spec import Scenario

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.api.jobs import JobHandle
    from repro.api.result import CampaignRunResult
    from repro.api.session import Session
    from repro.core.study import StudyResult
    from repro.scenarios.suite import ScenarioRunResult


class StudyBuilder:
    """A deferred, overridable experiment over one scenario.

    Built by :meth:`repro.api.Session.study`; not constructed directly.
    Builders are immutable — each fluent call returns a new builder —
    so a base builder can fan out into many variants safely.
    """

    def __init__(
        self,
        session: "Session",
        scenario: Scenario,
        overrides: Optional[Dict[str, object]] = None,
        seed: Optional[SeedLike] = None,
        batch_size: Optional[int] = None,
    ) -> None:
        self._session = session
        self._base = scenario
        self._overrides: Dict[str, object] = dict(overrides or {})
        self._seed = seed
        self._batch_size = batch_size

    # ---- fluent configuration -------------------------------------------

    def override(self, **fields: object) -> "StudyBuilder":
        """A new builder with scenario fields replaced.

        Accepts any :class:`~repro.scenarios.spec.Scenario` field
        (``threat_params``, ``horizon``, ``design_kind``, ...).  Dict
        fields replace wholesale — pass the full mapping you want.
        Unknown fields and invalid values fail at :meth:`build` time
        with the spec's own validation errors.
        """
        merged = dict(self._overrides)
        merged.update(fields)
        return StudyBuilder(
            self._session, self._base, merged, self._seed, self._batch_size
        )

    def replications(self, count: int) -> "StudyBuilder":
        """Shorthand for ``override(replications=count)``."""
        return self.override(replications=count)

    def horizon(self, hours: float) -> "StudyBuilder":
        """Shorthand for ``override(horizon=hours)``."""
        return self.override(horizon=hours)

    def named(self, name: str) -> "StudyBuilder":
        """Shorthand for ``override(name=name)`` — rename the variant so
        it can run alongside its base scenario in one suite."""
        return self.override(name=name)

    def seed(self, seed: SeedLike) -> "StudyBuilder":
        """A new builder with a pinned root seed (overrides the
        session's default seed policy for this study only)."""
        return StudyBuilder(
            self._session, self._base, self._overrides, seed,
            self._batch_size,
        )

    def batch_size(self, lanes: int) -> "StudyBuilder":
        """A new builder pinning the mega-batch lane count.

        Campaign replications of :meth:`run`, :meth:`submit` and
        :meth:`campaign` then advance ``lanes`` at a time through the
        vectorized batch lowering (``1`` = bit-identical to the scalar
        path; larger vectorized batches are distribution-identical).
        An explicit ``batch_size=`` on the session verb wins over the
        pinned value.

        Raises:
            TypeError: If ``lanes`` is not an integer.
            ValueError: If ``lanes < 1``.
        """
        from repro.exec import validate_batch_args

        validate_batch_args(1, lanes)
        return StudyBuilder(
            self._session, self._base, self._overrides, self._seed, lanes
        )

    # ---- lowering --------------------------------------------------------

    def build(self) -> Scenario:
        """The validated :class:`Scenario` this chain describes.

        Raises:
            ValueError / TypeError: On unknown override fields or
                invalid field values (the spec's fail-fast validation).
        """
        if not self._overrides:
            return self._base
        unknown = sorted(
            set(self._overrides)
            - {f.name for f in dataclasses.fields(Scenario)}
        )
        if unknown:
            raise ValueError(
                f"unknown scenario field(s) in override(): "
                f"{', '.join(unknown)}"
            )
        return dataclasses.replace(self._base, **self._overrides)

    def _effective_seed(self, seed: Optional[SeedLike]) -> SeedLike:
        return seed if seed is not None else self._seed

    # ---- execution verbs (delegate to the session) ----------------------

    def run(self, seed: Optional[SeedLike] = None) -> "ScenarioRunResult":
        """Execute synchronously; see :meth:`repro.api.Session.run`."""
        return self._session.run(self, seed=self._effective_seed(seed))

    def submit(self, seed: Optional[SeedLike] = None) -> "JobHandle":
        """Queue as a job; see :meth:`repro.api.Session.submit`."""
        return self._session.submit(self, seed=self._effective_seed(seed))

    def full_study(self, seed: Optional[SeedLike] = None) -> "StudyResult":
        """Run the full three-step pipeline (SAN model, attack tree,
        measurement, ANOVA assessment); see
        :meth:`repro.api.Session.full_study`."""
        return self._session.full_study(
            self, seed=self._effective_seed(seed)
        )

    def campaign(
        self, replications: int, seed: Optional[SeedLike] = None
    ) -> "CampaignRunResult":
        """Run a raw Monte-Carlo campaign batch on the baseline system;
        see :meth:`repro.api.Session.campaign`."""
        return self._session.campaign(
            self, replications, seed=self._effective_seed(seed)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StudyBuilder({self._base.name!r}, "
            f"overrides={self._overrides!r})"
        )
