"""Asynchronous job handles over the experiment runner.

:meth:`repro.api.Session.submit` wraps an experiment in a
:class:`JobHandle`: the work runs on a session-owned job executor
(jobs queue when more are submitted than the session's
``max_parallel_jobs``), progress is streamed back per completed work
unit via the :mod:`repro.exec` ``on_result`` hooks, and cancellation is
cooperative — the exec layer stops between work units (chunks already
running on pool backends finish in the background and are discarded).

Determinism is untouched: a job's result is bit-identical to the
synchronous call with the same seed, because seeding happens before
dispatch exactly as in :mod:`repro.exec`.
"""

from __future__ import annotations

import enum
import itertools
import threading
from concurrent.futures import CancelledError, Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.exec.backends import ExecutionCancelled


class JobCancelled(RuntimeError):
    """Raised by :meth:`JobHandle.result` when the job was cancelled."""


class JobState(str, enum.Enum):
    """Lifecycle of a submitted job."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


@dataclass(frozen=True)
class JobProgress:
    """Partial-progress snapshot of a running job.

    Attributes:
        completed: Work units finished so far (scenarios for suite
            jobs, design runs for study jobs, replications for
            campaign jobs).
        total: Total work units the job will execute.
    """

    completed: int
    total: int

    @property
    def fraction(self) -> float:
        """``completed / total`` (0.0 for zero-unit jobs)."""
        return self.completed / self.total if self.total else 0.0


_JOB_IDS = itertools.count(1)


class JobHandle:
    """Status, progress, result and cancellation of one submitted job.

    Handles are created by :meth:`repro.api.Session.submit` /
    ``submit_campaign`` — not directly.

    Example:
        >>> from repro.api import Session
        >>> with Session() as session:
        ...     job = session.submit("smoke", seed=7)
        ...     result = job.result()          # blocks until done
        ...     job.status is JobState.DONE
        True
    """

    def __init__(self, description: str, total_units: int) -> None:
        self.job_id = next(_JOB_IDS)
        self.description = description
        self._total = total_units
        self._completed = 0
        self._started = threading.Event()
        self._cancel = threading.Event()
        self._cancelled = False
        self._lock = threading.Lock()
        self._future: Optional[Future] = None

    # ---- wiring (Session-side) ------------------------------------------

    def _bind(self, future: Future) -> None:
        self._future = future

    def _run(self, body: Callable[["JobHandle"], Any]) -> Any:
        """Execute ``body`` inside the job executor (Session plumbing)."""
        self._started.set()
        if self._cancel.is_set():
            raise JobCancelled(f"job {self.job_id} cancelled before start")
        try:
            return body(self)
        except ExecutionCancelled as exc:
            raise JobCancelled(
                f"job {self.job_id} cancelled: {exc}"
            ) from exc

    def _advance(self, *_ignored: Any) -> None:
        """Per-unit progress callback handed to the exec layer."""
        with self._lock:
            self._completed += 1

    @property
    def _cancel_event(self) -> threading.Event:
        return self._cancel

    # ---- public surface --------------------------------------------------

    @property
    def status(self) -> JobState:
        """Current lifecycle state (never blocks)."""
        future = self._future
        if self._cancelled or (future is not None and future.cancelled()):
            return JobState.CANCELLED
        if future is None or not (self._started.is_set() or future.done()):
            return JobState.PENDING
        if not future.done():
            return JobState.RUNNING
        exc = future.exception()
        if exc is None:
            return JobState.DONE
        return (
            JobState.CANCELLED
            if isinstance(exc, JobCancelled)
            else JobState.FAILED
        )

    @property
    def progress(self) -> JobProgress:
        """Work units completed so far vs the job's total."""
        with self._lock:
            return JobProgress(completed=self._completed, total=self._total)

    def done(self) -> bool:
        """Whether the job has reached a terminal state."""
        return self.status in (
            JobState.DONE, JobState.FAILED, JobState.CANCELLED
        )

    def cancel(self) -> bool:
        """Request cancellation; returns True unless already finished.

        A queued job is cancelled immediately; a running job stops
        cooperatively at the next work-unit boundary (sub-100 ms even
        while a pool chunk is still executing — the in-flight chunk's
        results are discarded).
        """
        future = self._future
        if future is not None and future.cancel():
            self._cancelled = True
            return True
        if future is not None and future.done():
            return self.status is JobState.CANCELLED
        self._cancel.set()
        return True

    def wait(self, timeout: Optional[float] = None) -> JobState:
        """Block until the job finishes (or ``timeout``); returns status."""
        future = self._future
        if future is not None:
            try:
                future.exception(timeout=timeout)
            except (CancelledError, FutureTimeoutError, TimeoutError):
                # futures.TimeoutError only aliases the builtin from
                # Python 3.11; catch both for 3.10.
                pass
        return self.status

    def result(self, timeout: Optional[float] = None) -> Any:
        """The job's :class:`~repro.api.result.RunResult`.

        Blocks until the job finishes.  Raises :class:`JobCancelled` if
        the job was cancelled, re-raises the job's own exception if it
        failed, and :class:`TimeoutError` if ``timeout`` elapses first.
        """
        future = self._future
        if future is None:  # pragma: no cover - Session always binds
            raise RuntimeError("job was never bound to an executor")
        try:
            return future.result(timeout=timeout)
        except CancelledError:
            raise JobCancelled(
                f"job {self.job_id} cancelled before start"
            ) from None
        except FutureTimeoutError:
            # futures.TimeoutError only aliases the builtin from
            # Python 3.11; normalize so the documented contract holds
            # on 3.10 too.
            raise TimeoutError(
                f"job {self.job_id} still running after {timeout}s"
            ) from None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        progress = self.progress
        return (
            f"JobHandle(id={self.job_id}, status={self.status.value!r}, "
            f"progress={progress.completed}/{progress.total}, "
            f"description={self.description!r})"
        )
