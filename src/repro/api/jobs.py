"""Asynchronous job handles over the experiment runner.

:meth:`repro.api.Session.submit` wraps an experiment in a
:class:`JobHandle`: the work runs on a session-owned job executor
(jobs queue when more are submitted than the session's
``max_parallel_jobs``), progress is streamed back per completed work
unit via the :mod:`repro.exec` ``on_result`` hooks, and cancellation is
cooperative — the exec layer stops between work units (chunks already
running on pool backends finish in the background and are discarded).

Determinism is untouched: a job's result is bit-identical to the
synchronous call with the same seed, because seeding happens before
dispatch exactly as in :mod:`repro.exec`.
"""

from __future__ import annotations

import enum
import itertools
import logging
import threading
import time
import traceback
from concurrent.futures import CancelledError, Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Set

from repro.exec.backends import ExecutionCancelled
from repro.telemetry.core import Telemetry

_LOG = logging.getLogger(__name__)

#: Minimum seconds between progress-heartbeat telemetry events (the
#: first and last unit of a job always heartbeat).
_HEARTBEAT_MIN_INTERVAL_S = 1.0


class JobCancelled(RuntimeError):
    """Raised by :meth:`JobHandle.result` when the job was cancelled."""


class JobState(str, enum.Enum):
    """Lifecycle of a submitted job."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


@dataclass(frozen=True)
class JobProgress:
    """Partial-progress snapshot of a running job.

    Attributes:
        completed: Work units finished so far (scenarios for suite
            jobs, design runs for study jobs, replications for
            campaign jobs).
        total: Total work units the job will execute.
    """

    completed: int
    total: int

    @property
    def fraction(self) -> float:
        """``completed / total`` (0.0 for zero-unit jobs)."""
        return self.completed / self.total if self.total else 0.0


@dataclass(frozen=True)
class JobEvent:
    """One lifecycle transition of a job.

    Attributes:
        job_id: The job's id.
        state: The state entered.
        time_unix: Wall-clock time of the transition — for display and
            cross-process correlation only; the system clock can step
            backwards (NTP), so never order events by it.
        detail: Free-form context (e.g. the failure message).
        time_monotonic: ``time.monotonic()`` at the transition — the
            ordering/duration clock; non-decreasing within a process.
    """

    job_id: int
    state: JobState
    time_unix: float
    detail: str = ""
    time_monotonic: float = 0.0


#: States a job can end in; exactly one terminal event is ever emitted.
_TERMINAL_STATES = frozenset(
    {JobState.DONE, JobState.FAILED, JobState.CANCELLED}
)

_JOB_IDS = itertools.count(1)


class JobHandle:
    """Status, progress, result and cancellation of one submitted job.

    Handles are created by :meth:`repro.api.Session.submit` /
    ``submit_campaign`` — not directly.

    Example:
        >>> from repro.api import Session
        >>> with Session() as session:
        ...     job = session.submit("smoke", seed=7)
        ...     result = job.result()          # blocks until done
        ...     job.status is JobState.DONE
        True
    """

    def __init__(self, description: str, total_units: int) -> None:
        self.job_id = next(_JOB_IDS)
        self.description = description
        self._total = total_units
        self._completed = 0
        self._started = threading.Event()
        self._cancel = threading.Event()
        self._cancelled = False
        self._lock = threading.Lock()
        self._future: Optional[Future] = None
        self._events: List[JobEvent] = []
        self._emitted: Set[JobState] = set()
        self._telemetry: Optional[Telemetry] = None
        self._last_heartbeat = 0.0
        self._failure_traceback: Optional[str] = None
        self._emit(JobState.PENDING)

    # ---- wiring (Session-side) ------------------------------------------

    def _bind(self, future: Future) -> None:
        self._future = future

    def _attach_telemetry(self, telemetry: Optional[Telemetry]) -> None:
        """Forward lifecycle events/heartbeats to this telemetry.

        Transitions recorded before attachment (PENDING, emitted by the
        constructor) are replayed so the telemetry stream carries the
        full lifecycle.
        """
        if telemetry is None:
            return
        with self._lock:
            self._telemetry = telemetry
            replay = list(self._events)
        for event in replay:
            telemetry.emit_event(
                "job.state",
                job_id=event.job_id,
                state=event.state.value,
                detail=event.detail,
            )

    def _emit(self, state: JobState, detail: str = "") -> None:
        """Record one lifecycle transition, exactly once per state.

        Thread-safe and idempotent: the submitter's ``cancel()`` and the
        executor's ``_run`` may race to the terminal state, but only the
        first transition wins and only one terminal event is emitted.
        """
        with self._lock:
            if state in self._emitted:
                return
            if state in _TERMINAL_STATES and (
                self._emitted & _TERMINAL_STATES
            ):
                return
            self._emitted.add(state)
            event = JobEvent(
                self.job_id,
                state,
                time.time(),  # repro: allow[DET004] display-only wall-clock; ordering uses time_monotonic
                detail,
                time_monotonic=time.monotonic(),
            )
            self._events.append(event)
            telemetry = self._telemetry
        _LOG.debug(
            "job %d -> %s%s",
            self.job_id, state.value, f" ({detail})" if detail else "",
        )
        if telemetry is not None:
            telemetry.emit_event(
                "job.state",
                job_id=self.job_id, state=state.value, detail=detail,
            )

    def _run(self, body: Callable[["JobHandle"], Any]) -> Any:
        """Execute ``body`` inside the job executor (Session plumbing)."""
        self._started.set()
        if self._cancel.is_set():
            self._emit(JobState.CANCELLED, "cancelled before start")
            raise JobCancelled(f"job {self.job_id} cancelled before start")
        self._emit(JobState.RUNNING)
        try:
            result = body(self)
        except JobCancelled:
            self._emit(JobState.CANCELLED)
            raise
        except ExecutionCancelled as exc:
            self._emit(JobState.CANCELLED, str(exc))
            raise JobCancelled(
                f"job {self.job_id} cancelled: {exc}"
            ) from exc
        except BaseException as exc:
            # Full formatted chain — including any worker-side
            # RemoteTracebackError cause the exec layer attached — so
            # callers can post-mortem a failed job without re-raising.
            self._failure_traceback = traceback.format_exc()
            self._emit(JobState.FAILED, repr(exc))
            raise
        self._emit(JobState.DONE)
        return result

    def _advance(self, *_ignored: Any) -> None:
        """Per-unit progress callback handed to the exec layer.

        Progress is monotonic (a lock-guarded increment); telemetry
        heartbeats are rate-limited to one per
        ``_HEARTBEAT_MIN_INTERVAL_S`` except the first and final unit.
        """
        with self._lock:
            self._completed += 1
            completed = self._completed
            telemetry = self._telemetry
            if telemetry is None:
                return
            now = time.monotonic()
            if (
                now - self._last_heartbeat < _HEARTBEAT_MIN_INTERVAL_S
                and completed != self._total
            ):
                return
            self._last_heartbeat = now
        telemetry.emit_event(
            "job.heartbeat",
            job_id=self.job_id, completed=completed, total=self._total,
        )

    @property
    def events(self) -> List[JobEvent]:
        """Lifecycle transitions so far (copy; exactly one per state)."""
        with self._lock:
            return list(self._events)

    @property
    def _cancel_event(self) -> threading.Event:
        return self._cancel

    # ---- public surface --------------------------------------------------

    @property
    def status(self) -> JobState:
        """Current lifecycle state (never blocks)."""
        future = self._future
        if self._cancelled or (future is not None and future.cancelled()):
            return JobState.CANCELLED
        if future is None or not (self._started.is_set() or future.done()):
            return JobState.PENDING
        if not future.done():
            return JobState.RUNNING
        exc = future.exception()
        if exc is None:
            return JobState.DONE
        return (
            JobState.CANCELLED
            if isinstance(exc, JobCancelled)
            else JobState.FAILED
        )

    @property
    def progress(self) -> JobProgress:
        """Work units completed so far vs the job's total."""
        with self._lock:
            return JobProgress(completed=self._completed, total=self._total)

    @property
    def failure_traceback(self) -> Optional[str]:
        """The failed job's full formatted traceback (with the
        worker-side remote traceback chained in when the failure
        crossed a process boundary); ``None`` unless FAILED."""
        return self._failure_traceback

    def done(self) -> bool:
        """Whether the job has reached a terminal state."""
        return self.status in (
            JobState.DONE, JobState.FAILED, JobState.CANCELLED
        )

    def cancel(self) -> bool:
        """Request cancellation; returns True unless already finished.

        A queued job is cancelled immediately; a running job stops
        cooperatively at the next work-unit boundary (sub-100 ms even
        while a pool chunk is still executing — the in-flight chunk's
        results are discarded).
        """
        future = self._future
        if future is not None and future.cancel():
            self._cancelled = True
            self._emit(JobState.CANCELLED, "cancelled before start")
            return True
        if future is not None and future.done():
            return self.status is JobState.CANCELLED
        self._cancel.set()
        return True

    def wait(self, timeout: Optional[float] = None) -> JobState:
        """Block until the job finishes (or ``timeout``); returns status."""
        future = self._future
        if future is not None:
            try:
                future.exception(timeout=timeout)
            except (CancelledError, FutureTimeoutError, TimeoutError):
                # futures.TimeoutError only aliases the builtin from
                # Python 3.11; catch both for 3.10.
                pass
        return self.status

    def result(self, timeout: Optional[float] = None) -> Any:
        """The job's :class:`~repro.api.result.RunResult`.

        Blocks until the job finishes.  Raises :class:`JobCancelled` if
        the job was cancelled, re-raises the job's own exception if it
        failed, and :class:`TimeoutError` if ``timeout`` elapses first.
        """
        future = self._future
        if future is None:  # pragma: no cover - Session always binds
            raise RuntimeError("job was never bound to an executor")
        try:
            return future.result(timeout=timeout)
        except CancelledError:
            raise JobCancelled(
                f"job {self.job_id} cancelled before start"
            ) from None
        except FutureTimeoutError:
            # futures.TimeoutError only aliases the builtin from
            # Python 3.11; normalize so the documented contract holds
            # on 3.10 too.
            raise TimeoutError(
                f"job {self.job_id} still running after {timeout}s"
            ) from None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        progress = self.progress
        return (
            f"JobHandle(id={self.job_id}, status={self.status.value!r}, "
            f"progress={progress.completed}/{progress.total}, "
            f"description={self.description!r})"
        )
