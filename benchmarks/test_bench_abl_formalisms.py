"""Ablation — the three attack-modeling formalisms agree on direction.

The paper lists Bayesian networks, Petri nets (SAN) and attack trees as
candidate formalisms for its step 1 and treats the choice as open.  This
ablation checks the library's three builders produce *directionally
consistent* answers on the same configured systems: all must rank the
hardened deployment as strictly safer than the baseline, and their
baseline/hardened success-probability ratios should all exceed 1.

Regenerates: success probability per formalism per system, plus the
full campaign simulator as ground truth.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import print_banner
from repro.attacks.campaign import AttackCampaign, CampaignConfig
from repro.attacks.profiles import stuxnet_like
from repro.attacktree.analysis import evaluate as evaluate_tree
from repro.core.modeling import (
    attack_tree_for,
    bayesian_attack_graph_for,
    san_model_for,
)
from repro.core.report import format_table
from repro.san.ctmc import san_to_ctmc
from repro.scada.topologies import scope_cooling_topology


def san_success(network, catalog, threat):
    model = san_model_for(network, catalog, threat, give_up=True)
    ctmc = san_to_ctmc(model)
    impair = [i for i, s in enumerate(ctmc.states) if dict(s).get("impaired")]
    return float(
        ctmc.hitting_probability(impair)[int(np.argmax(ctmc.initial))]
    )


def run_experiment(catalog, rng: np.random.Generator):
    threat = stuxnet_like()
    systems = {
        "baseline": dict(),
        "hardened": dict(
            default_os="linux_hardened",
            default_firmware="firmware_signed",
            default_stack="modbus_variant_b",
        ),
    }
    config = CampaignConfig(horizon=40.0, tick_interval=0.5)
    rows = {}
    for label, kwargs in systems.items():
        network = scope_cooling_topology(**kwargs)
        p_san = san_success(network, catalog, threat)
        p_tree = evaluate_tree(
            attack_tree_for(network, catalog, threat)
        ).probability
        p_bag = bayesian_attack_graph_for(
            network, catalog, threat
        ).compromise_probability("plc_0")
        outcomes = AttackCampaign(
            scope_cooling_topology(**kwargs), catalog, threat, config
        ).run_batch(50, rng)
        p_campaign = sum(o.success for o in outcomes) / len(outcomes)
        rows[label] = (p_san, p_tree, p_bag, p_campaign)
    return rows


def test_bench_abl_formalisms(benchmark, catalog, rng):
    rows = benchmark.pedantic(
        run_experiment, args=(catalog, rng), rounds=1, iterations=1
    )
    print_banner("ABL  Formalism agreement: SAN vs attack tree vs BAG vs campaign")
    table = [
        (label, *values) for label, values in rows.items()
    ]
    print(
        format_table(
            ["system", "SAN (give-up)", "attack tree", "Bayes graph",
             "campaign @40h"],
            table,
        )
    )
    base = rows["baseline"]
    hard = rows["hardened"]
    for i, formalism in enumerate(
        ("SAN", "attack tree", "Bayes graph", "campaign")
    ):
        assert hard[i] < base[i], (
            f"{formalism} must rank the hardened system safer"
        )
    print("\nAll four formalisms rank the hardened deployment safer.")
