"""E3 — DoE narrows the configuration space (§II, step 2).

    "Given the large number of HW/SW components that can be potentially
    diversified in a real system ... measurement of security indicators
    is driven by a DoE approach.  DoE allows narrowing the number of
    configurations to assess."

Regenerates: run counts and estimated main effects for full factorial vs
half-fraction vs Plackett-Burman over k = 6 binary component factors on
a synthetic-but-structured response surface (so the ground-truth effects
are known exactly), plus run-count reduction factors.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import print_banner
from repro.core.report import format_table
from repro.doe.design import Factor
from repro.doe.factorial import full_factorial
from repro.doe.fractional import fractional_factorial
from repro.doe.plackett_burman import plackett_burman
from repro.stats.effects import effect_magnitudes, main_effects

# Ground-truth main effects of the synthetic indicator surface: the
# response mimics a restricted-mean TTA in hours.
TRUE_EFFECTS = {
    "operating_system": 40.0,
    "plc_firmware": 18.0,
    "protocol_stack": 10.0,
    "antivirus": 6.0,
    "firewall_software": 3.0,
    "sensor_model": 1.0,
}

FACTOR_NAMES = list(TRUE_EFFECTS)


def response(run, rng):
    """Synthetic TTA: sum of main effects + mild interaction + noise."""
    value = 50.0
    for name, effect in TRUE_EFFECTS.items():
        value += effect / 2.0 * (1 if run[name] == "strong" else -1)
    # A mild two-way interaction the screening designs will alias.
    osv = 1 if run["operating_system"] == "strong" else -1
    plc = 1 if run["plc_firmware"] == "strong" else -1
    value += 2.0 * osv * plc
    return value + rng.normal(0.0, 2.0)


def measure(design, rng, replications=3):
    records = []
    for run in design.runs:
        for _ in range(replications):
            record = dict(run.as_dict())
            record["tta"] = response(run, rng)
            records.append(record)
    return records


def estimated_effects(records):
    effects = main_effects(records, "tta", FACTOR_NAMES)
    return effect_magnitudes(effects)


def run_experiment(rng: np.random.Generator):
    factors = [Factor(n, ("weak", "strong")) for n in FACTOR_NAMES]

    designs = {}
    designs["full 2^6"] = full_factorial(factors)
    frac, info = fractional_factorial(
        FACTOR_NAMES, ["E=ABC", "F=BCD"], levels=("weak", "strong")
    )
    designs[f"2^(6-2) res {info.resolution}"] = frac
    designs["Plackett-Burman"] = plackett_burman(factors)

    results = {}
    for label, design in designs.items():
        records = measure(design, rng)
        results[label] = (design.n_runs, estimated_effects(records))
    return results


def test_bench_e3_doe_reduction(benchmark, rng):
    results = benchmark.pedantic(
        run_experiment, args=(rng,), rounds=1, iterations=1
    )
    print_banner("E3  DoE reduction: run counts and main-effect recovery")
    header = ["design", "runs", *FACTOR_NAMES]
    rows = []
    rows.append(("ground truth", "--", *TRUE_EFFECTS.values()))
    for label, (n_runs, effects) in results.items():
        rows.append((label, n_runs, *[effects[n] for n in FACTOR_NAMES]))
    print(format_table(header, rows))

    full_runs = results["full 2^6"][0]
    for label, (n_runs, effects) in results.items():
        if label != "full 2^6":
            reduction = full_runs / n_runs
            print(f"{label}: {reduction:.1f}x fewer runs than full factorial")
            assert n_runs <= full_runs / 4  # at least 4x reduction
        # Every design must rank the dominant factor first and recover
        # the large effects within ~25%.
        ranked = sorted(effects, key=lambda n: -effects[n])
        assert ranked[0] == "operating_system"
        for name in ("operating_system", "plc_firmware"):
            assert effects[name] == pytest.approx(
                TRUE_EFFECTS[name], rel=0.3
            )
