"""Performance benchmarks of the streaming out-of-core results path.

The streaming pipeline (``StreamingTableBuilder`` spilling row chunks
to ``.npz`` shards + ``StreamingSummary`` running aggregators) exists
so campaigns far larger than RAM stay affordable.  These benchmarks pin
both sides of that claim:

* ``perf_streaming_campaign`` — a seeded 60-replication
  ``run_batch_table`` in streaming mode (tiny in-RAM bound, so the
  shard machinery is actually exercised) with a running
  ``StreamingSummary`` folded in.  Timed against the persisted
  baseline by ``python -m repro.bench --compare``: the streaming
  overhead over the plain in-RAM batch must stay small and must not
  regress.
* ``perf_streaming_builder_1m`` — one million synthetic response rows
  pushed through the builder + aggregator pair with the default
  65 536-row bound.  The reported throughput (``records_per_s`` in
  ``extra_info``) is the raw out-of-core sink rate, independent of
  simulation cost.
* ``test_streaming_memory_bounded`` — not a timing: a
  :mod:`tracemalloc` audit that the 1M-row run's peak Python
  allocation stays far below the ~32 MB the materialized table would
  need, i.e. peak table memory really is bounded by
  ``max_records_in_ram``.
"""

from __future__ import annotations

import gc
import tracemalloc

import numpy as np
import pytest

from repro.attacks.campaign import AttackCampaign, CampaignConfig
from repro.results import (
    RESPONSE_COLUMNS,
    ShardedRecordTable,
    StreamingSummary,
    StreamingTableBuilder,
)
from repro.scenarios.registry import SCENARIOS

_SCENARIO = "cooling_duqu"
_REPS = 60
_SYNTH_ROWS = 1_000_000
_SYNTH_CHUNK = 4096
_RAM_BOUND = 65_536


def _campaign() -> AttackCampaign:
    scenario = SCENARIOS.get(_SCENARIO)
    return AttackCampaign(
        scenario.build_network(),
        scenario.build_catalog(),
        scenario.build_threat(),
        scenario.build_campaign_config(),
    )


@pytest.fixture(scope="module", name="streaming_campaign")
def streaming_campaign_fixture():
    return _campaign()


def test_perf_streaming_campaign(benchmark, streaming_campaign):
    """Streaming ``run_batch_table``: spill shards + running summary."""

    def run():
        summary = StreamingSummary()
        table = streaming_campaign.run_batch_table(
            _REPS,
            rng=99,
            max_records_in_ram=16,
            aggregators=(summary,),
        )
        return table, summary

    table, summary = benchmark(run)
    assert isinstance(table, ShardedRecordTable)
    assert len(table) == _REPS
    assert table.in_ram_rows <= 16
    assert summary.count == _REPS


def _synthetic_chunks(n_rows: int, chunk: int):
    rng = np.random.default_rng(0)
    produced = 0
    while produced < n_rows:
        take = min(chunk, n_rows - produced)
        yield {
            "success": rng.integers(0, 2, take).astype(np.float64),
            "tta": rng.exponential(5.0, take),
            "ttsf": rng.exponential(3.0, take),
            "final_ratio": rng.random(take),
        }
        produced += take


def _sink_synthetic(n_rows: int, ram_bound: int):
    """Push synthetic response rows through builder + aggregator."""
    builder = StreamingTableBuilder(max_records_in_ram=ram_bound)
    summary = StreamingSummary()
    for columns in _synthetic_chunks(n_rows, _SYNTH_CHUNK):
        builder.append_rows(columns)
        summary.observe_columns(columns)
    table = builder.build()
    assert len(table) == n_rows
    assert table.in_ram_rows <= ram_bound
    assert summary.count == n_rows
    return table


def test_perf_streaming_builder_1m(benchmark):
    """Out-of-core sink throughput: 1M rows, bounded RAM."""
    result = benchmark.pedantic(
        _sink_synthetic,
        args=(_SYNTH_ROWS, _RAM_BOUND),
        rounds=3,
        iterations=1,
    )
    assert len(result.shards) >= _SYNTH_ROWS // _RAM_BOUND - 1
    elapsed = benchmark.stats.stats.median
    benchmark.extra_info["records_per_s"] = _SYNTH_ROWS / elapsed


def test_streaming_memory_bounded():
    """Peak Python allocation stays bounded by ``max_records_in_ram``.

    A materialized 1M x 4 float64 table needs ~32 MB of column
    buffers; the streaming sink must hold at most the 65 536-row
    buffer (~2 MB) plus transient npz-write copies.  16 MB of headroom
    keeps the assertion robust while still refuting any accidental
    accumulation of the full record stream.
    """
    gc.collect()
    tracemalloc.start()
    try:
        table = _sink_synthetic(_SYNTH_ROWS, _RAM_BOUND)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    materialized_floor = (
        _SYNTH_ROWS * len(RESPONSE_COLUMNS) * 8
    )  # ~32 MB
    assert peak < materialized_floor // 2, (
        f"peak {peak / 1e6:.1f} MB is not bounded "
        f"(materialized table would be "
        f"{materialized_floor / 1e6:.1f} MB)"
    )
    print(
        f"\nstreaming 1M-row sink: peak {peak / 1e6:.1f} MB, "
        f"{len(table.shards)} shards, "
        f"{table.in_ram_rows} rows in RAM"
    )
