"""E2 — security indicators respond to diversity degree (§II).

The paper defines Time-To-Attack, Time-To-Security-Failure and the
compromised ratio as the indicators its framework measures.  This
experiment sweeps the *diversity degree* of the reference cooling-SCADA
system — from the homogeneous soft baseline to a fully diversified
deployment — and regenerates the indicator series.

Expected shape: TTA grows with diversity; the compromised ratio falls;
attack-success probability within the observation window falls.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import print_banner
from repro.attacks.campaign import AttackCampaign, CampaignConfig
from repro.attacks.profiles import stuxnet_like
from repro.core.indicators import compute_indicators
from repro.core.report import format_table
from repro.scada.components import ComponentKind
from repro.scada.topologies import scope_cooling_topology

K = ComponentKind

# Diversity ladder: progressively replace homogeneous soft variants.
LADDER = [
    ("degree 0: homogeneous legacy", {}),
    (
        "degree 1: + patched OS mix",
        {"os_half": "win_patched"},
    ),
    (
        "degree 2: + hardened OS on supervisory",
        {"os_half": "win_patched", "os_super": "linux_hardened"},
    ),
    (
        "degree 3: + alt PLC firmware",
        {
            "os_half": "win_patched",
            "os_super": "linux_hardened",
            "plc": "firmware_alt",
        },
    ),
    (
        "degree 4: + diverse protocol stacks",
        {
            "os_half": "win_patched",
            "os_super": "linux_hardened",
            "plc": "firmware_signed",
            "stack": "modbus_variant_b",
        },
    ),
]


def build_network(recipe):
    net = scope_cooling_topology()
    if "os_half" in recipe:
        for i, host in enumerate(net.hosts):
            if host.variant_of(K.OPERATING_SYSTEM) is not None and i % 2 == 0:
                host.install(K.OPERATING_SYSTEM, recipe["os_half"])
    if "os_super" in recipe:
        for name in ("scada_server", "eng_ws", "hmi_0", "hmi_1"):
            net.host(name).install(K.OPERATING_SYSTEM, recipe["os_super"])
    if "plc" in recipe:
        for host in net.hosts:
            if host.variant_of(K.PLC_FIRMWARE) is not None:
                host.install(K.PLC_FIRMWARE, recipe["plc"])
    if "stack" in recipe:
        for host in net.hosts:
            if host.variant_of(K.PROTOCOL_STACK) is not None:
                host.install(K.PROTOCOL_STACK, recipe["stack"])
    return net


def run_experiment(rng: np.random.Generator):
    config = CampaignConfig(horizon=100.0, tick_interval=0.5)
    threat = stuxnet_like()
    from repro.diversity.catalog import default_catalog

    catalog = default_catalog()
    rows = []
    curves = []
    for degree, (label, recipe) in enumerate(LADDER):
        network = build_network(recipe)
        campaign = AttackCampaign(network, catalog, threat, config)
        outcomes = campaign.run_batch(60, rng)
        ind = compute_indicators(outcomes)
        row = ind.summary_row()
        rows.append(
            (
                degree,
                label,
                row["psa"],
                row["tta_restricted_mean"],
                row["ttsf_restricted_mean"],
                row["final_compromised_ratio"],
            )
        )
        curves.append((degree, ind.ratio))
    return rows, curves


def test_bench_e2_indicators_vs_diversity(benchmark, rng):
    rows, curves = benchmark.pedantic(
        run_experiment, args=(rng,), rounds=1, iterations=1
    )
    print_banner("E2  TTA / TTSF / compromised ratio vs diversity degree")
    print(
        format_table(
            ["degree", "configuration", "PSA@100h", "TTA (restr. mean)",
             "TTSF (restr. mean)", "final ratio"],
            rows,
        )
    )
    print("\nCompromised-ratio trajectories (mean over 60 replications):")
    grid = [10.0, 25.0, 50.0, 75.0, 100.0]
    curve_rows = [
        (deg, *[ratio.at(t) for t in grid]) for deg, ratio in curves
    ]
    print(format_table(["degree", *[f"t={t:.0f}h" for t in grid]], curve_rows))

    tta = [r[3] for r in rows]
    psa = [r[2] for r in rows]
    # Early-time compromised ratio: campaigns stop at goal success, so the
    # *final* ratio is confounded by how long the attack keeps running;
    # the paper's "compromised components at time t" is compared at a
    # fixed early t instead.
    ratio_at_10 = [ratio.at(10.0) for __, ratio in curves]
    # Shape: TTA rises from baseline to full diversity; early-time
    # compromised ratio falls.
    assert tta[-1] > tta[0] * 1.5
    assert ratio_at_10[-1] < ratio_at_10[0]
    assert psa[-1] <= psa[0]
    # Monotone trend (allow small sampling wiggles on interior points).
    assert tta[0] == min(tta)
    assert ratio_at_10[0] == max(ratio_at_10)
