"""Performance benchmarks of the substrates.

These are classic pytest-benchmark timings (multiple rounds) rather than
experiment regenerations: DES event throughput, SAN simulation, GSPN
simulation, variable-elimination inference, DoE generation and protocol
codec throughput.  They guard against performance regressions that would
make the Monte-Carlo studies impractical.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bayes.attackgraph import attack_graph_from_topology
from repro.doe.fractional import fractional_factorial
from repro.petri.gspn import GSPN
from repro.petri.net import PetriNet
from repro.san.builder import SANBuilder
from repro.san.simulator import SANSimulator
from repro.scada.protocol import (
    FunctionCode,
    ModbusFrame,
    STANDARD_DIALECT,
    decode_frame,
    encode_frame,
)
from repro.sim.engine import SimulationEngine


def test_perf_des_engine_100k_events(benchmark):
    def run():
        engine = SimulationEngine()
        count = 0

        def reschedule(ev):
            nonlocal count
            count += 1
            if count < 100_000:
                engine.schedule_after(1.0, reschedule)

        engine.schedule(0.0, reschedule)
        engine.run()
        return count

    assert benchmark(run) == 100_000


def test_perf_san_simulation(benchmark):
    builder = SANBuilder()
    builder.place("s0", 1)
    for i in range(5):
        builder.place(f"s{i + 1}", 0)
        builder.stage(f"a{i}", f"s{i}", f"s{i + 1}", rate=1.0,
                      success_probability=0.7)
    model = builder.build()
    sim = SANSimulator(model)
    rng = np.random.default_rng(1)

    def run():
        return sim.batch(1000.0, 50, rng, stop=lambda m: m["s5"] > 0)

    runs = benchmark(run)
    assert len(runs) == 50


def test_perf_gspn_simulation(benchmark):
    net = PetriNet()
    net.add_place("idle", 5)
    net.add_place("busy", 0)
    net.add_transition("arrive", {"idle": 1}, {"busy": 1})
    net.add_transition("finish", {"busy": 1}, {"idle": 1})
    gspn = GSPN(net)
    gspn.add_timed("arrive", lambda m: 1.0 * max(m["idle"], 1))
    gspn.add_timed("finish", lambda m: 2.0 * max(m["busy"], 1))
    rng = np.random.default_rng(2)

    def run():
        return gspn.transient_analysis(50.0, 20, rng)

    result = benchmark(run)
    assert len(result.final_markings) == 20


def test_perf_variable_elimination(benchmark):
    # A 12-host layered attack graph.
    edges = []
    layers = [[f"h{l}_{i}" for i in range(3)] for l in range(4)]
    for a, b in zip(layers, layers[1:]):
        for src in a:
            for dst in b:
                edges.append((src, dst, 0.4))
    graph = attack_graph_from_topology(
        edges, {h: 0.5 for h in layers[0]}
    )

    def run():
        return graph.compromise_probability(layers[-1][0])

    p = benchmark(run)
    assert 0.0 < p < 1.0


def test_perf_doe_generation(benchmark):
    names = list("abcdefghjk")

    def run():
        design, info = fractional_factorial(names, ["K=ABCDEFGHJ"])
        return design

    design = benchmark(run)
    assert design.n_runs == 2 ** (len(names) - 1)


def test_perf_protocol_codec(benchmark):
    frame = ModbusFrame(
        unit=7,
        function=FunctionCode.WRITE_MULTIPLE_REGISTERS,
        address=100,
        values=tuple(range(20)),
        count=20,
    )

    def run():
        for _ in range(200):
            decoded = decode_frame(
                encode_frame(frame, STANDARD_DIALECT), STANDARD_DIALECT
            )
        return decoded

    assert benchmark(run) == frame
