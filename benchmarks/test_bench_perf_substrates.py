"""Performance benchmarks of the substrates.

These are classic pytest-benchmark timings (multiple rounds) rather than
experiment regenerations: DES event throughput, SAN simulation, GSPN
simulation, CTMC transient analysis, variable-elimination inference, DoE
generation and protocol codec throughput.  They guard against
performance regressions that would make the Monte-Carlo studies
impractical.

The ``*_legacy`` / ``*_dense_expm`` variants time the retained reference
implementations (interpreter without the compiled fast path, dense
``scipy.linalg.expm`` transient solver) so every run measures the
compiled-path speedups in place; ``python -m repro.bench`` persists the
ratios to a JSON baseline (see BENCH_PR3.json).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bayes.attackgraph import attack_graph_from_topology
from repro.doe.fractional import fractional_factorial
from repro.petri.gspn import GSPN
from repro.petri.net import PetriNet
from repro.san.builder import SANBuilder
from repro.san.ctmc import san_to_ctmc
from repro.san.simulator import SANSimulator
from repro.scada.protocol import (
    FunctionCode,
    ModbusFrame,
    STANDARD_DIALECT,
    decode_frame,
    encode_frame,
)
from repro.sim.engine import SimulationEngine


def test_perf_des_engine_100k_events(benchmark):
    def run():
        engine = SimulationEngine()
        count = 0

        def reschedule(ev):
            nonlocal count
            count += 1
            if count < 100_000:
                engine.schedule_after(1.0, reschedule)

        engine.schedule(0.0, reschedule)
        engine.run()
        return count

    assert benchmark(run) == 100_000


def _stage_chain_model():
    builder = SANBuilder()
    builder.place("s0", 1)
    for i in range(5):
        builder.place(f"s{i + 1}", 0)
        builder.stage(f"a{i}", f"s{i}", f"s{i + 1}", rate=1.0,
                      success_probability=0.7)
    return builder.build()


def _san_simulation_case(benchmark, compiled: bool):
    sim = SANSimulator(_stage_chain_model(), compiled=compiled)
    rng = np.random.default_rng(1)

    def run():
        return sim.batch(1000.0, 50, rng, stop=lambda m: m["s5"] > 0)

    runs = benchmark(run)
    assert len(runs) == 50


def test_perf_san_simulation(benchmark):
    """Compiled fast path (the default interpreter)."""
    _san_simulation_case(benchmark, compiled=True)


def test_perf_san_simulation_legacy(benchmark):
    """Legacy re-scanning interpreter — the pre-compilation baseline."""
    _san_simulation_case(benchmark, compiled=False)


def _gspn_case(benchmark, compiled: bool):
    net = PetriNet()
    net.add_place("idle", 5)
    net.add_place("busy", 0)
    net.add_transition("arrive", {"idle": 1}, {"busy": 1})
    net.add_transition("finish", {"busy": 1}, {"idle": 1})
    gspn = GSPN(net, compiled=compiled)
    gspn.add_timed("arrive", lambda m: 1.0 * max(m["idle"], 1))
    gspn.add_timed("finish", lambda m: 2.0 * max(m["busy"], 1))
    rng = np.random.default_rng(2)

    def run():
        return gspn.transient_analysis(50.0, 20, rng)

    result = benchmark(run)
    assert len(result.final_markings) == 20


def test_perf_gspn_simulation(benchmark):
    """Compiled fast path (the default interpreter)."""
    _gspn_case(benchmark, compiled=True)


def test_perf_gspn_simulation_legacy(benchmark):
    """Legacy re-scanning interpreter — the pre-compilation baseline."""
    _gspn_case(benchmark, compiled=False)


def _ctmc_1k():
    """A ~1k-state birth-death CTMC explored from a SAN."""
    from repro.stats.distributions import Exponential

    builder = SANBuilder("bd1k")
    builder.place("free", 999).place("load", 0)
    builder.timed("grow", Exponential(1.2), inputs={"free": 1},
                  outputs={"load": 1})
    builder.timed("shrink", Exponential(0.9), inputs={"load": 1},
                  outputs={"free": 1})
    return san_to_ctmc(builder.build())


@pytest.fixture(scope="module", name="ctmc_1k")
def ctmc_1k_fixture():
    ctmc = _ctmc_1k()
    assert ctmc.n_states == 1000
    return ctmc


def test_perf_ctmc_transient_1k_uniformized(benchmark, ctmc_1k):
    """Sparse uniformization — the default for large chains."""
    dist = benchmark(ctmc_1k.transient_distribution, 5.0)
    assert dist.sum() == pytest.approx(1.0)


def test_perf_ctmc_transient_1k_dense_expm(benchmark, ctmc_1k):
    """Dense O(n³) expm — the pre-PR baseline, kept for validation."""
    dist = benchmark(
        ctmc_1k.transient_distribution, 5.0, method="expm"
    )
    assert dist.sum() == pytest.approx(1.0)


def test_perf_ctmc_transient_grid_1k(benchmark, ctmc_1k):
    """A 20-point time grid answered from one uniformization pass."""
    times = [0.5 * (i + 1) for i in range(20)]

    def run():
        return ctmc_1k.transient_at(times)

    grid = benchmark(run)
    assert grid.shape == (20, 1000)


def test_perf_variable_elimination(benchmark):
    # A 12-host layered attack graph.
    edges = []
    layers = [[f"h{l}_{i}" for i in range(3)] for l in range(4)]
    for a, b in zip(layers, layers[1:]):
        for src in a:
            for dst in b:
                edges.append((src, dst, 0.4))
    graph = attack_graph_from_topology(
        edges, {h: 0.5 for h in layers[0]}
    )

    def run():
        return graph.compromise_probability(layers[-1][0])

    p = benchmark(run)
    assert 0.0 < p < 1.0


def test_perf_doe_generation(benchmark):
    names = list("abcdefghjk")

    def run():
        design, info = fractional_factorial(names, ["K=ABCDEFGHJ"])
        return design

    design = benchmark(run)
    assert design.n_runs == 2 ** (len(names) - 1)


def test_perf_protocol_codec(benchmark):
    frame = ModbusFrame(
        unit=7,
        function=FunctionCode.WRITE_MULTIPLE_REGISTERS,
        address=100,
        values=tuple(range(20)),
        count=20,
    )

    def run():
        for _ in range(200):
            decoded = decode_frame(
                encode_frame(frame, STANDARD_DIALECT), STANDARD_DIALECT
            )
        return decoded

    assert benchmark(run) == frame
