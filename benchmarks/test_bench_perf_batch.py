"""Mega-batch Monte-Carlo benchmarks: SoA batch vs scalar loops.

The batch lowerings (`repro.san.batched`, `repro.attacks.batched`)
advance thousands of replications per vectorized step instead of one
replication per Python event loop.  Two scalar/vectorized pairs time
that on reference workloads:

* ``perf_san_batch_scalar`` vs ``perf_san_batch_vectorized`` — 4096
  replications of a five-stage lockstep SAN pipeline, run one at a
  time on the compiled scalar engine vs as one 4096-lane SoA batch.
* ``perf_campaign_batch_scalar`` vs ``perf_campaign_batch_vectorized``
  — a 2048-replication ``run_batch_table`` on the ``cooling_duqu``
  scenario (exfiltration goal, the vectorizable campaign lowering)
  scalar vs ``batch_size=2048``.

Pairs are registered in ``repro.bench._PAIR_EXPLICIT``; the persisted
baseline (``BENCH_PR8.json``) records the batch/scalar speedups, gated
at >= 10x by scripts/ci.sh.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks.campaign import AttackCampaign
from repro.san.model import SANModel, simple_case
from repro.san.simulator import SANSimulator
from repro.scenarios.registry import SCENARIOS
from repro.stats.distributions import Exponential

_SAN_REPS = 4096
_SAN_STAGES = 5
_SAN_HORIZON = 1e9
_CAMPAIGN_SCENARIO = "cooling_duqu"
_CAMPAIGN_REPS = 2048
_SEED = 99


def _pipeline_model() -> SANModel:
    """A lockstep pipeline: every lane fires the same activity sequence,
    so the batch engine's fast path stays fully utilized while each
    firing still draws a delay and resolves a 60/40 case."""
    model = SANModel("bench_pipeline")
    for i in range(_SAN_STAGES):
        model.add_timed_activity(
            f"a{i}",
            distribution=Exponential(1.0),
            input_places={f"s{i}": 1},
            cases=[
                simple_case({f"s{i + 1}": 1}, probability=0.6, label="hi"),
                simple_case({f"s{i + 1}": 1}, probability=0.4, label="lo"),
            ],
        )
    model.set_initial("s0", 1)
    return model


@pytest.fixture(scope="module", name="san_simulator")
def san_simulator_fixture():
    simulator = SANSimulator(_pipeline_model())
    simulator.model.compile()  # warm the compiled artifact
    return simulator


@pytest.fixture(scope="module", name="duqu_campaign")
def duqu_campaign_fixture():
    scenario = SCENARIOS.get(_CAMPAIGN_SCENARIO)
    return AttackCampaign(
        scenario.build_network(),
        scenario.build_catalog(),
        scenario.build_threat(),
        scenario.build_campaign_config(),
    )


def test_perf_san_batch_scalar(benchmark, san_simulator):
    """One-replication-at-a-time compiled scalar engine."""
    runs = benchmark(
        san_simulator.batch, _SAN_HORIZON, _SAN_REPS, _SEED
    )
    assert len(runs) == _SAN_REPS


def test_perf_san_batch_vectorized(benchmark, san_simulator):
    """The same replications as one SoA mega-batch."""
    runs = benchmark(
        san_simulator.batch,
        _SAN_HORIZON,
        _SAN_REPS,
        _SEED,
        batch_size=_SAN_REPS,
    )
    assert len(runs) == _SAN_REPS


def test_san_batch_modes_agree(san_simulator):
    """The two benchmarked paths sample the same distribution."""
    n = 512
    scalar = san_simulator.batch(_SAN_HORIZON, n, _SEED)
    batched = san_simulator.batch(
        _SAN_HORIZON, n, _SEED, batch_size=n
    )
    terminal = f"s{_SAN_STAGES}"
    reach = [
        np.mean([r.final_marking.as_dict().get(terminal, 0) for r in runs])
        for runs in (scalar, batched)
    ]
    assert reach[0] == reach[1] == 1.0  # both cases advance the token
    means = [
        np.mean([r.end_time for r in runs]) for runs in (scalar, batched)
    ]
    assert abs(means[0] - means[1]) < 0.5


def test_perf_campaign_batch_scalar(benchmark, duqu_campaign):
    """Scalar per-replication campaign event loops."""
    table = benchmark(duqu_campaign.run_batch_table, _CAMPAIGN_REPS, _SEED)
    assert len(table) == _CAMPAIGN_REPS


def test_perf_campaign_batch_vectorized(benchmark, duqu_campaign):
    """The same batch through the vectorized campaign lowering."""
    table = benchmark(
        duqu_campaign.run_batch_table,
        _CAMPAIGN_REPS,
        _SEED,
        batch_size=_CAMPAIGN_REPS,
    )
    assert len(table) == _CAMPAIGN_REPS


def test_campaign_batch_modes_agree(duqu_campaign):
    """Success rate parity between the benchmarked paths."""
    n = 1024
    scalar = duqu_campaign.run_batch_table(n, _SEED)
    batched = duqu_campaign.run_batch_table(n, _SEED, batch_size=n)
    p_scalar = float(np.asarray(scalar.column("success")).mean())
    p_batched = float(np.asarray(batched.column("success")).mean())
    assert abs(p_scalar - p_batched) < 0.08
