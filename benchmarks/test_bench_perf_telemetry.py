"""Telemetry overhead benchmark — the observability cost gate.

``perf_telemetry_overhead`` re-runs exactly the suite that
``perf_suite_run`` (benchmarks/test_bench_perf_campaign.py) times —
same three scenarios, same seed — but with a live
:class:`repro.telemetry.Telemetry` activated around it, the way
``Session(telemetry=True)`` runs it.  The two are paired explicitly in
:mod:`repro.bench` (``_PAIR_EXPLICIT``), so every baseline records the
overhead ratio, and ``scripts/ci.sh`` fails the gate when the enabled
path costs more than the tolerated few percent over the disabled one.

``test_telemetry_overhead_records_identical`` pins the stronger claim
the overhead gate rides on: telemetry must never perturb the records —
the instrumented run's tables are bit-identical to the plain run's.
"""

from __future__ import annotations

import numpy as np

from repro.scenarios.registry import SCENARIOS
from repro.scenarios.suite import ScenarioSuite
from repro.telemetry import Telemetry

_SUITE_NAMES = ("cooling_stuxnet", "cooling_duqu", "cooling_flame")
_SUITE_SEED = 2013


def _suite() -> ScenarioSuite:
    return ScenarioSuite([SCENARIOS.get(name) for name in _SUITE_NAMES])


def _run_with_telemetry():
    suite = _suite()
    telemetry = Telemetry()
    with telemetry.activate(), telemetry.span("session.run"):
        result = suite.run(_SUITE_SEED)
    return result, telemetry.snapshot()


def test_perf_telemetry_overhead(benchmark):
    """Cold suite run with spans/metrics recording enabled.

    A fresh ``Telemetry`` per round mirrors ``Session(telemetry=True)``
    (one snapshot per run), so setup cost is part of what is timed.
    """
    result, snapshot = benchmark(_run_with_telemetry)
    assert result.names() == list(_SUITE_NAMES)
    assert snapshot.total_seconds("suite.run") > 0.0
    assert snapshot.counter("campaign.replications") > 0.0


def test_telemetry_overhead_records_identical():
    """The instrumented run measures the identical experiment."""
    plain = _suite().run(_SUITE_SEED)
    instrumented, snapshot = _run_with_telemetry()
    assert snapshot.span_paths()
    for name in _SUITE_NAMES:
        table_plain = plain.by_name(name).table
        table_inst = instrumented.by_name(name).table
        assert table_plain.columns == table_inst.columns
        for column in table_plain.columns:
            assert np.array_equal(
                np.asarray(table_plain.column(column)),
                np.asarray(table_inst.column(column)),
            ), (name, column)
