"""E7 — wider threat models and component sets (§III, future work).

    "We aim to improve the approach both from the attack- and
    system-perspective by introducing a wider set of threat models, such
    as Duqu and Flame, and by modeling the impact of a wider set of
    components, e.g., sensors, actuators, firewall."

Regenerates: the indicator comparison across three threat profiles
(Stuxnet-like sabotage, Duqu-like exfiltration, Flame-like recon) on the
baseline vs a deployment diversified in exactly the future-work
components (sensors, actuators, firewall).

Expected shape: the sensor/actuator/firewall diversification helps most
against the *sabotage* threat (spoof-dependent) and the detection-heavy
channels; each threat profile shows a distinct indicator signature.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from benchmarks.conftest import print_banner
from repro.attacks.campaign import AttackCampaign, CampaignConfig
from repro.attacks.profiles import duqu_like, flame_like, stuxnet_like
from repro.core.indicators import compute_indicators
from repro.core.report import format_table
from repro.scada.components import ComponentKind
from repro.scada.topologies import scope_cooling_topology

K = ComponentKind
CONFIG = CampaignConfig(horizon=100.0, tick_interval=0.5)


def peripheral_diversified():
    """Diversify only the future-work components: sensors, actuators, firewall."""
    net = scope_cooling_topology()
    for host in net.hosts:
        if host.variant_of(K.SENSOR_MODEL) is not None:
            host.install(K.SENSOR_MODEL, "sensor_authenticated")
        if host.variant_of(K.ACTUATOR_MODEL) is not None:
            host.install(K.ACTUATOR_MODEL, "actuator_limited")
        if host.variant_of(K.FIREWALL_SOFTWARE) is not None:
            host.install(K.FIREWALL_SOFTWARE, "fw_dpi")
    return net


def run_experiment(catalog, rng: np.random.Generator):
    threats = {
        "stuxnet_like": stuxnet_like(),
        "duqu_like": duqu_like(),
        "flame_like": flame_like(),
    }
    rows = []
    for label, threat in threats.items():
        for system, factory in (
            ("baseline", scope_cooling_topology),
            ("sensors+actuators+fw", peripheral_diversified),
        ):
            outcomes = AttackCampaign(
                factory(), catalog, threat, CONFIG
            ).run_batch(50, rng)
            ind = compute_indicators(outcomes)
            row = ind.summary_row()
            rows.append(
                (
                    label,
                    system,
                    row["psa"],
                    row["tta_restricted_mean"],
                    row["detection_probability"],
                    row["ttsf_restricted_mean"],
                    row["final_compromised_ratio"],
                )
            )
    return rows


def test_bench_e7_threat_models(benchmark, catalog, rng):
    rows = benchmark.pedantic(
        run_experiment, args=(catalog, rng), rounds=1, iterations=1
    )
    print_banner("E7  Duqu/Flame threat models + sensor/actuator/firewall diversity")
    print(
        format_table(
            ["threat", "system", "PSA", "TTA", "P(detect)", "TTSF",
             "final ratio"],
            rows,
        )
    )
    by_key = {(r[0], r[1]): r for r in rows}

    # Flame's breadth goal forces a high compromised ratio whenever it
    # succeeds (campaigns stop at goal success, so cross-threat final
    # ratios are not directly comparable).
    flame_row = by_key[("flame_like", "baseline")]
    if flame_row[2] > 0.5:  # PSA
        assert flame_row[6] >= 0.45

    # Peripheral (sensor/actuator/firewall) diversity does not change the
    # propagation surface, so success probabilities stay comparable for
    # the espionage threats.
    for threat_name in ("duqu_like", "flame_like"):
        base_psa = by_key[(threat_name, "baseline")][2]
        div_psa = by_key[(threat_name, "sensors+actuators+fw")][2]
        assert abs(base_psa - div_psa) < 0.3

    # Peripheral diversity improves detection of the sabotage threat
    # (authenticated sensors break the spoof; DPI firewall catches C2).
    stux_base = by_key[("stuxnet_like", "baseline")]
    stux_div = by_key[("stuxnet_like", "sensors+actuators+fw")]
    assert stux_div[4] >= stux_base[4] - 0.05  # detection prob not worse
    assert stux_div[5] <= stux_base[5] + 5.0  # TTSF not slower (restr. mean)

    # All probabilities valid.
    for row in rows:
        assert 0.0 <= row[2] <= 1.0
        assert 0.0 <= row[4] <= 1.0
