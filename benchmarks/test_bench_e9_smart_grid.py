"""E9 — the smart-grid motivation (§I) + cost-balanced design.

Extension experiment beyond the paper's cooling case study, covering two
of its explicit motivations:

* *"what if an attacker overloads a power distribution system"* — the
  same Stuxnet-like campaign machinery drives a distribution feeder
  (tie-closing / load-shed-blocking payload, conductor thermal damage);
* *"a balanced approach between secure system design and diversification
  costs"* — the cost-constrained portfolio optimizer traces the
  budget/security efficient frontier for the feeder SCADA.

Expected shape: the attack succeeds against the homogeneous utility; the
efficient frontier is monotone (more budget → no worse security) with a
steep initial drop.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import print_banner
from repro.attacks.campaign import AttackCampaign, CampaignConfig
from repro.attacks.profiles import stuxnet_like
from repro.core.indicators import compute_indicators
from repro.core.portfolio import PortfolioOptimizer
from repro.core.report import format_table
from repro.scada.components import ComponentKind
from repro.scada.plant.feeder import PowerFeeder
from repro.scada.topologies import smart_grid_feeder

K = ComponentKind


def run_experiment(catalog, rng: np.random.Generator):
    threat = stuxnet_like()
    config = CampaignConfig(
        horizon=120.0, tick_interval=0.5, plant_factory=PowerFeeder
    )

    # Campaign on the homogeneous utility.
    outcomes = AttackCampaign(
        smart_grid_feeder(), catalog, threat, config
    ).run_batch(40, rng)
    indicators = compute_indicators(outcomes).summary_row()

    # Efficient frontier.
    optimizer = PortfolioOptimizer(
        smart_grid_feeder,
        catalog,
        threat,
        kinds=[K.OPERATING_SYSTEM, K.PLC_FIRMWARE, K.PROTOCOL_STACK,
               K.ANTIVIRUS],
    )
    base = optimizer.evaluate(optimizer.cheapest_assignment())
    budgets = [base.cost * m for m in (1.0, 1.15, 1.3, 1.6, 2.0)]
    frontier = optimizer.efficient_frontier(budgets)
    return indicators, base, frontier


def test_bench_e9_smart_grid(benchmark, catalog, rng):
    indicators, base, frontier = benchmark.pedantic(
        run_experiment, args=(catalog, rng), rounds=1, iterations=1
    )
    print_banner("E9  Smart-grid feeder overload + cost/security frontier")
    print("Campaign vs homogeneous utility (40 reps, 120 h):")
    print(f"  PSA = {indicators['psa']:.2f},  "
          f"TTA = {indicators['tta_restricted_mean']:.1f} h,  "
          f"P(detect) = {indicators['detection_probability']:.2f}\n")
    rows = [
        (f"{budget:.0f}",
         f"{choice.cost:.0f}" if choice else "--",
         choice.success_probability if choice else float("nan"))
        for budget, choice in frontier
    ]
    print(format_table(["budget", "spent", "analytic PSA"], rows,
                       title="Efficient frontier (exhaustive portfolios)"))

    # The overload attack works against the homogeneous utility.
    assert indicators["psa"] > 0.7
    # Frontier is monotone non-increasing in PSA as budget grows.
    psas = [c.success_probability for __, c in frontier if c is not None]
    assert all(b <= a + 1e-12 for a, b in zip(psas, psas[1:]))
    # A modest budget increase brings a large security gain.
    assert psas[-1] < psas[0] * 0.05
    # The zero-slack budget can only buy the cheapest portfolio.
    assert frontier[0][1].success_probability == pytest.approx(
        base.success_probability
    )
