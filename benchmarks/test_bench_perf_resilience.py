"""Resilience overhead benchmark — the fault-tolerance cost gate.

``perf_retry_overhead`` re-runs exactly the suite that
``perf_suite_run`` (benchmarks/test_bench_perf_campaign.py) times —
same three scenarios, same seed — but with a
:class:`~repro.exec.RetryPolicy` armed on the runner (watchdog on,
retries allowed, **no faults injected**).  The two are paired
explicitly in :mod:`repro.bench` (``_PAIR_EXPLICIT``), so every
baseline records the overhead ratio; the fault-free cost of carrying
retry/watchdog machinery must stay within a couple percent, because
it is now always in the dispatch path (the legacy no-policy run goes
through the same :class:`~repro.exec.resilience.ChunkDispatcher`).

``test_retry_overhead_records_identical`` pins the claim the gate
rides on: arming a retry policy never perturbs the records — the
resilient run's tables are bit-identical to the plain run's.
"""

from __future__ import annotations

import numpy as np

from repro.exec import ExperimentRunner, RetryPolicy
from repro.scenarios.registry import SCENARIOS
from repro.scenarios.suite import ScenarioSuite

_SUITE_NAMES = ("cooling_stuxnet", "cooling_duqu", "cooling_flame")
_SUITE_SEED = 2013

#: The armed-but-idle policy: retries allowed, watchdog ticking.
_POLICY = RetryPolicy(max_attempts=3, timeout_s=30.0)


def _armed_suite() -> ScenarioSuite:
    runner = ExperimentRunner("serial", retry=_POLICY)
    return ScenarioSuite(
        [SCENARIOS.get(name) for name in _SUITE_NAMES], runner=runner
    )


def test_perf_retry_overhead(benchmark):
    """Cold suite run with the retry policy armed and no faults."""
    suite = _armed_suite()
    result = benchmark(suite.run, _SUITE_SEED)
    assert result.names() == list(_SUITE_NAMES)


def test_retry_overhead_records_identical():
    """The resilient run measures the identical experiment."""
    plain = ScenarioSuite(
        [SCENARIOS.get(name) for name in _SUITE_NAMES]
    ).run(_SUITE_SEED)
    armed = _armed_suite().run(_SUITE_SEED)
    for name in _SUITE_NAMES:
        table_plain = plain.by_name(name).table
        table_armed = armed.by_name(name).table
        assert table_plain.columns == table_armed.columns
        for column in table_plain.columns:
            assert np.array_equal(
                np.asarray(table_plain.column(column)),
                np.asarray(table_armed.column(column)),
            ), (name, column)
