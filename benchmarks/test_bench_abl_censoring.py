"""Ablation — censoring-aware vs naive TTA estimation.

DESIGN.md calls out the indicator-censoring design decision: attacks that
do not finish within the horizon are right-censored, and a naive
"mean of the successful runs" estimator (the conditional mean) is
optimistically biased for well-defended systems — exactly the systems a
diversity study cares about.

Regenerates: TTA estimates for the baseline vs hardened system under
three policies (conditional mean, restricted mean, median) at two
horizons, showing the naive estimator *inverts* the ranking of a
hardened system when censoring is heavy.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import print_banner
from repro.attacks.campaign import AttackCampaign, CampaignConfig
from repro.attacks.profiles import stuxnet_like
from repro.core.indicators import TimeToAttack
from repro.core.report import format_table
from repro.scada.topologies import scope_cooling_topology


def run_experiment(catalog, rng: np.random.Generator):
    systems = {
        "baseline": scope_cooling_topology(),
        "hardened": scope_cooling_topology(
            default_os="linux_hardened",
            default_firmware="firmware_signed",
            default_stack="modbus_variant_b",
        ),
    }
    rows = []
    samples = {}
    for horizon in (40.0, 120.0):
        config = CampaignConfig(horizon=horizon, tick_interval=0.5)
        for label, network in systems.items():
            outcomes = AttackCampaign(
                network, catalog, stuxnet_like(), config
            ).run_batch(50, rng)
            tta = TimeToAttack.from_outcomes(outcomes)
            conditional = tta.conditional_mean()
            rows.append(
                (
                    f"{horizon:.0f}h",
                    label,
                    tta.event_probability,
                    tta.n_censored,
                    conditional.estimate if conditional else float("nan"),
                    tta.restricted_mean(),
                    tta.median(),
                )
            )
            samples[(horizon, label)] = tta
        # fresh topologies per horizon sweep
        systems = {
            "baseline": scope_cooling_topology(),
            "hardened": scope_cooling_topology(
                default_os="linux_hardened",
                default_firmware="firmware_signed",
                default_stack="modbus_variant_b",
            ),
        }
    return rows, samples


def test_bench_abl_censoring(benchmark, catalog, rng):
    rows, samples = benchmark.pedantic(
        run_experiment, args=(catalog, rng), rounds=1, iterations=1
    )
    print_banner("ABL  Censoring-aware vs naive TTA estimation")
    print(
        format_table(
            ["horizon", "system", "PSA", "censored", "naive cond. mean",
             "restricted mean", "median"],
            rows,
        )
    )
    short_base = samples[(40.0, "baseline")]
    short_hard = samples[(40.0, "hardened")]
    # The hardened system genuinely withstands more attacks...
    assert short_hard.event_probability < short_base.event_probability
    # ...and the censoring-aware restricted mean ranks it correctly.
    assert short_hard.restricted_mean() > short_base.restricted_mean()
    # The naive estimator at the short horizon sees only the fastest
    # successful attacks against the hardened system: its advantage is
    # badly understated relative to the restricted-mean gap.
    naive_gap = (
        (short_hard.conditional_mean().estimate
         if short_hard.conditional_mean() else 40.0)
        - short_base.conditional_mean().estimate
    )
    restricted_gap = (
        short_hard.restricted_mean() - short_base.restricted_mean()
    )
    assert restricted_gap > naive_gap
