"""E6 — the three-step pipeline end-to-end (the paper's Figure 1).

Runs a complete :class:`~repro.core.study.DiversityStudy` on the SCoPE
cooling system: attack modeling (SAN + attack tree), DoE-driven
measurement (fractional factorial) and ANOVA diversity assessment, and
prints the full study report — the artifact the paper's Figure 1
pipeline produces.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import print_banner
from repro.attacks.campaign import CampaignConfig
from repro.attacks.profiles import stuxnet_like
from repro.core.study import DiversityStudy
from repro.scada.components import ComponentKind
from repro.scada.topologies import scope_cooling_topology

K = ComponentKind


def run_experiment(catalog, rng: np.random.Generator):
    study = DiversityStudy(
        network_factory=scope_cooling_topology,
        catalog=catalog,
        threat=stuxnet_like(),
        kinds=[
            K.OPERATING_SYSTEM,
            K.PLC_FIRMWARE,
            K.PROTOCOL_STACK,
            K.ANTIVIRUS,
        ],
        design_kind="fractional",
        replications=10,
        campaign_config=CampaignConfig(horizon=80.0, tick_interval=0.5),
    )
    return study.execute(rng)


def test_bench_e6_pipeline(benchmark, catalog, rng):
    result = benchmark.pedantic(
        run_experiment, args=(catalog, rng), rounds=1, iterations=1
    )
    print_banner("E6  Three-step pipeline (Fig. 1) — full study report")
    print(result.report())

    # Step 1 artifacts exist and are non-trivial.
    assert len(result.san_model.activities) >= 5
    assert len(result.attack_tree) >= 5
    # Step 2 used a fractional design: half of 2^4.
    assert result.design.n_runs == 8
    assert len(result.measurement.records) == 8 * 10
    # Step 3 produced allocation tables for every indicator and a
    # non-empty recommendation.
    assert set(result.assessment.anova_tables) == {
        "success", "tta", "ttsf", "final_ratio",
    }
    recs = result.assessment.recommended_diversification("tta")
    assert recs, "assessment must recommend at least one component"
