"""Ablation — detection is only valuable with a response behind it.

The paper's TTSF measures when the attack is *perceived*; whether
perception helps depends on what happens next.  This ablation sweeps the
incident-response speed (disabled → slow → fast → instant) and
regenerates PSA and TTA, quantifying how detection quality (driven by
sensor/firewall diversity) converts into prevented impairment only when
the response is fast enough — i.e. TTSF matters in relation to TTA,
exactly why the paper tracks both indicators.
"""

from __future__ import annotations

import numpy as np
import pytest

from dataclasses import replace

from benchmarks.conftest import print_banner
from repro.attacks.campaign import AttackCampaign
from repro.core.indicators import compute_indicators
from repro.core.report import format_table
from repro.scenarios.registry import SCENARIOS

#: Response speeds expressed as scenario-spec knobs (no hand-patched
#: CampaignConfig — the same fields ride in JSON catalogs and power the
#: ``cooling_stuxnet_response`` built-in).
RESPONSE_LADDER = [
    ("no response", dict(response_enabled=False)),
    ("slow (mean 20 h)", dict(response_enabled=True,
                              response_delay_rate=0.05)),
    ("fast (mean 2 h)", dict(response_enabled=True,
                             response_delay_rate=0.5)),
    ("instant", dict(response_enabled=True, response_delay_rate=None)),
]


def run_experiment(catalog, rng: np.random.Generator):
    base = replace(
        SCENARIOS.get("cooling_stuxnet"), horizon=80.0, tick_interval=0.5
    )
    threat = base.build_threat()
    rows = []
    for label, knobs in RESPONSE_LADDER:
        scenario = replace(base, **knobs)
        outcomes = AttackCampaign(
            scenario.build_network(),
            catalog,
            threat,
            scenario.build_campaign_config(),
        ).run_batch(50, rng)
        ind = compute_indicators(outcomes).summary_row()
        evictions = sum(o.evicted for o in outcomes)
        rows.append(
            (label, ind["psa"], ind["tta_restricted_mean"],
             ind["detection_probability"], evictions)
        )
    return rows


def test_bench_abl_response(benchmark, catalog, rng):
    rows = benchmark.pedantic(
        run_experiment, args=(catalog, rng), rounds=1, iterations=1
    )
    print_banner("ABL  Incident-response speed: converting TTSF into prevention")
    print(
        format_table(
            ["response", "PSA@80h", "TTA (restr.)", "P(detect)", "evictions"],
            rows,
        )
    )
    psa = [r[1] for r in rows]
    evictions = [r[4] for r in rows]
    # Faster response monotonically reduces attack success (within noise).
    assert psa[-1] < psa[0]
    assert psa[-1] <= psa[1] + 0.1
    # Responses actually happen once enabled.
    assert evictions[0] == 0
    assert evictions[-1] > 0
