"""E4 — ANOVA variance allocation (§II, step 3).

    "ANOVA techniques ... make it possible to allocate the variability of
    the security indicators ... to the component(s) responsible for such
    variability.  This step allows identifying the system HW/SW
    components ... valuable to diversify."

Regenerates: the variance-allocation table for the reference system —
a 2-level full factorial over {OS, PLC firmware, protocol stack} with
real campaign measurements, analyzed per indicator.

Expected shape: the component whose variants differ most in
exploitability along the attack's critical path (the operating system)
receives the dominant share of TTA variance, and the assessment
recommends diversifying it first.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import print_banner
from repro.attacks.campaign import CampaignConfig
from repro.attacks.profiles import stuxnet_like
from repro.core.assessment import assess
from repro.core.measurement import MeasurementPlan
from repro.doe.design import Factor
from repro.doe.factorial import full_factorial
from repro.scada.topologies import scope_cooling_topology


def run_experiment(catalog, rng: np.random.Generator):
    factors = [
        Factor("operating_system", ("win_legacy", "linux_hardened")),
        Factor("plc_firmware", ("firmware_common", "firmware_signed")),
        Factor("protocol_stack", ("modbus_standard", "modbus_variant_b")),
    ]
    design = full_factorial(factors)
    plan = MeasurementPlan(
        scope_cooling_topology,
        catalog,
        stuxnet_like(),
        design,
        replications=15,
        campaign_config=CampaignConfig(horizon=80.0, tick_interval=0.5),
    )
    measurement = plan.execute(rng)
    assessment = assess(measurement, responses=["tta", "success"])
    return measurement, assessment


def test_bench_e4_anova_allocation(benchmark, catalog, rng):
    measurement, assessment = benchmark.pedantic(
        run_experiment, args=(catalog, rng), rounds=1, iterations=1
    )
    print_banner("E4  ANOVA variance allocation per component")
    print(assessment.format_report())

    tta_table = assessment.anova_tables["tta"]
    # All allocations are a partition of total variance.
    assert sum(tta_table.allocation().values()) == pytest.approx(1.0)
    # The OS dominates the TTA variance on this topology.
    ranking = assessment.ranking("tta")
    assert ranking[0].component == "operating_system"
    assert ranking[0].allocation > 0.3
    assert ranking[0].significant
    # And it is the first diversification recommendation.
    recs = assessment.recommended_diversification("tta", top=3)
    assert recs[0] == "operating_system"
    print(f"\nRecommended diversification order (TTA): {', '.join(recs)}")
