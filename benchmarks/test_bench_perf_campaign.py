"""Performance benchmarks of the Monte-Carlo experiment pipeline.

End-to-end throughput of ``AttackCampaign.run_batch`` and
``ScenarioSuite.run`` is what bounds how many scenarios and replications
the paper's tables can afford, so these benchmarks time the two hot
paths introduced by the tick-elision / columnar-results work:

* ``perf_campaign_run_batch`` vs ``perf_campaign_run_batch_legacy`` —
  the same seeded 60-replication batch with the tick-elision fast path
  (default) and with the retained legacy per-tick loop
  (``tick_elision=False``).  Campaigns are module-scoped so the shared
  healthy trajectory is warm across benchmark rounds, which is the
  steady state of any real batch (the one-off scan amortizes over the
  batch's replications).
* ``perf_suite_run`` vs ``perf_suite_run_legacy`` — a three-scenario
  suite on the default specs and on ``tick_elision=False`` twins; each
  round builds fresh campaigns internally, so this measures the cold
  end-to-end pipeline including columnar aggregation and ANOVA.
* ``perf_suite_run_warm_cache`` — the same suite served from a
  populated content-addressed cache; paired against ``perf_suite_run``
  by ``repro.bench`` (suffix convention), it reports the warm/cold
  ratio.

``python -m repro.bench`` persists all of these (and the substrate
benchmarks) to a JSON baseline; ``--compare`` fails the run on
regressions.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks.campaign import AttackCampaign, CampaignConfig
from repro.scenarios.registry import SCENARIOS
from repro.scenarios.spec import Scenario
from repro.scenarios.suite import ScenarioSuite

_BATCH_SCENARIO = "cooling_duqu"
_BATCH_REPS = 60
_SUITE_NAMES = ("cooling_stuxnet", "cooling_duqu", "cooling_flame")
_SUITE_SEED = 2013


def _batch_campaign(tick_elision: bool) -> AttackCampaign:
    scenario = SCENARIOS.get(_BATCH_SCENARIO)
    config = CampaignConfig(
        plant_factory=scenario.build_campaign_config().plant_factory,
        tick_elision=tick_elision,
    )
    return AttackCampaign(
        scenario.build_network(),
        scenario.build_catalog(),
        scenario.build_threat(),
        config,
    )


@pytest.fixture(scope="module", name="campaign_fast")
def campaign_fast_fixture():
    return _batch_campaign(tick_elision=True)


@pytest.fixture(scope="module", name="campaign_legacy")
def campaign_legacy_fixture():
    return _batch_campaign(tick_elision=False)


def test_perf_campaign_run_batch(benchmark, campaign_fast):
    """Tick-elision fast path (the default event loop)."""
    outcomes = benchmark(campaign_fast.run_batch, _BATCH_REPS, 99)
    assert len(outcomes) == _BATCH_REPS


def test_perf_campaign_run_batch_legacy(benchmark, campaign_legacy):
    """Legacy per-tick loop — the pre-elision baseline."""
    outcomes = benchmark(campaign_legacy.run_batch, _BATCH_REPS, 99)
    assert len(outcomes) == _BATCH_REPS


def test_campaign_modes_agree(campaign_fast, campaign_legacy):
    """The two benchmarked paths measure identical experiments."""
    horizon = campaign_fast.config.horizon
    fast = [
        o.response_row(horizon) for o in campaign_fast.run_batch(10, 99)
    ]
    legacy = [
        o.response_row(horizon) for o in campaign_legacy.run_batch(10, 99)
    ]
    assert fast == legacy


def _suite_scenarios(tick_elision: bool):
    specs = [SCENARIOS.get(name) for name in _SUITE_NAMES]
    if tick_elision:
        return specs
    return [
        Scenario.from_dict({**spec.to_dict(), "tick_elision": False})
        for spec in specs
    ]


def test_perf_suite_run(benchmark):
    """Cold suite run on the default (tick-elision) scenario specs."""
    suite = ScenarioSuite(_suite_scenarios(True))
    result = benchmark(suite.run, _SUITE_SEED)
    assert result.names() == list(_SUITE_NAMES)


def test_perf_suite_run_legacy(benchmark):
    """Cold suite run forced onto the legacy per-tick campaign loop."""
    suite = ScenarioSuite(_suite_scenarios(False))
    result = benchmark(suite.run, _SUITE_SEED)
    assert result.names() == list(_SUITE_NAMES)


def test_perf_suite_run_session(benchmark):
    """The same three-scenario suite through ``Session.submit``.

    Paired against ``perf_suite_run`` by the ``_session`` suffix
    convention of :mod:`repro.bench`: the reported ratio is the facade
    overhead (JobHandle + progress hooks), expected ~1.0 — submitting
    through ``repro.api`` must cost no wall-clock over the direct
    ``ScenarioSuite.run`` call.
    """
    from repro.api import Session

    session = Session()

    def run_via_session():
        return session.submit(
            list(_SUITE_NAMES), seed=_SUITE_SEED
        ).result()

    result = benchmark(run_via_session)
    session.close()
    assert result.names() == list(_SUITE_NAMES)


def test_perf_suite_run_warm_cache(benchmark, tmp_path_factory):
    """The same suite answered from a warm content-addressed cache."""
    cache_dir = str(tmp_path_factory.mktemp("suite-cache"))
    warm = ScenarioSuite(_suite_scenarios(True), cache_dir=cache_dir)
    reference = warm.run(_SUITE_SEED)  # populate the cache

    def run_warm():
        return ScenarioSuite(
            _suite_scenarios(True), cache_dir=cache_dir
        ).run(_SUITE_SEED)

    result = benchmark(run_warm)
    assert result.records_by_scenario() == reference.records_by_scenario()
