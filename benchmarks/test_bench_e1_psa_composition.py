"""E1 — the paper's §I composition claim.

    "If the machines are identical, it suffices to compromise one machine
    and then repeating the exploit for the other (PSA ≈ PM).  When the
    machines are different ... PSA ≈ PM1 × PM2: succeeding is harder and
    time-consuming."

Regenerates: PSA and expected attack time for identical vs. diverse
machine chains, for chain lengths 2..8 and PM ∈ {0.1 .. 0.9}, from both
the closed forms and Monte-Carlo simulation.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import print_banner
from repro.core.report import format_table
from repro.diversity.psa import (
    AttackerProfile,
    chain_attack,
    diverse_chain,
    identical_chain,
)


def run_experiment(rng: np.random.Generator):
    profile = AttackerProfile(
        exploit_attempts=1, attempt_time=10.0, reuse_time=0.5
    )
    rows = []
    for n in (2, 3, 4, 6, 8):
        for pm in (0.3, 0.5, 0.7, 0.9):
            psa_i, t_i = identical_chain(pm, n, profile)
            psa_d, t_d = diverse_chain([pm] * n, profile)
            mc_hits = 0
            mc_n = 400
            for _ in range(mc_n):
                ok, __ = chain_attack(
                    [pm] * n, identical=False, rng=rng, profile=profile
                )
                mc_hits += ok
            rows.append(
                (n, pm, psa_i, psa_d, mc_hits / mc_n, psa_i / max(psa_d, 1e-12),
                 t_i, t_d)
            )
    return rows


def test_bench_e1_psa_composition(benchmark, rng):
    rows = benchmark.pedantic(
        run_experiment, args=(rng,), rounds=1, iterations=1
    )
    print_banner(
        "E1  PSA composition: identical (PSA~PM) vs diverse (PSA~prod PMi)"
    )
    print(
        format_table(
            ["n", "PM", "PSA ident", "PSA diverse", "PSA div (MC)",
             "ratio", "E[T] ident", "E[T] diverse"],
            rows,
        )
    )
    for n, pm, psa_i, psa_d, psa_mc, ratio, t_i, t_d in rows:
        # Identical chains: PSA equals the single-machine probability.
        assert psa_i == pytest.approx(pm)
        # Diverse chains: geometric composition.
        assert psa_d == pytest.approx(pm**n)
        # Monte Carlo agrees with the closed form.
        assert abs(psa_mc - psa_d) < 0.1
        # "harder and time-consuming": both directions of the claim.
        assert psa_d <= psa_i
        assert t_d >= t_i
    # The advantage grows geometrically with chain length.
    ratios_at_half = [r[5] for r in rows if r[1] == 0.5]
    assert ratios_at_half == sorted(ratios_at_half)
