"""E8 — TTSF semantics validation against Madan et al. (paper ref. [5]).

The paper adopts Time-To-Security-Failure from Madan, Goseva-Popstojanova,
Vaidyanathan, Trivedi (DSN 2002), where the measure is the absorption
time of a security-state Markov chain (good → vulnerable → compromised →
security-failed).  This experiment builds that canonical chain as a SAN,
computes the mean TTSF exactly via the CTMC path, and checks the Monte
Carlo simulator reproduces it — validating both the SAN engine and the
indicator's estimator on a model with a known answer.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import print_banner
from repro.core.report import format_table
from repro.san.builder import SANBuilder
from repro.san.ctmc import san_to_ctmc
from repro.san.simulator import SANSimulator
from repro.stats.ci import mean_ci


def madan_chain(rate_vulnerable=0.5, rate_compromise=0.25,
                rate_detect_fail=0.4, p_compromise=0.6):
    """The Madan-style security-state chain as a SAN.

    good --(vulnerability disclosed)--> vulnerable
    vulnerable --(exploit attempt: succeeds w.p. p)--> compromised
    compromised --(manifestation)--> security_failed (absorbing)
    """
    builder = SANBuilder("madan2002")
    builder.place("good", 1)
    for p in ("vulnerable", "compromised", "security_failed"):
        builder.place(p, 0)
    builder.stage("disclose", "good", "vulnerable", rate=rate_vulnerable)
    builder.stage(
        "exploit", "vulnerable", "compromised",
        rate=rate_compromise, success_probability=p_compromise,
    )
    builder.stage("manifest", "compromised", "security_failed",
                  rate=rate_detect_fail)
    return builder.build()


def run_experiment(rng: np.random.Generator):
    model = madan_chain()
    ctmc = san_to_ctmc(model)
    targets = [
        i for i, s in enumerate(ctmc.states)
        if dict(s).get("security_failed", 0) > 0
    ]
    start = int(np.argmax(ctmc.initial))
    analytic_ttsf = float(ctmc.mean_hitting_time(targets)[start])
    p_fail_by = {
        t: float(
            ctmc.state_probability(
                t, lambda m: m.get("security_failed", 0) > 0
            )
        )
        for t in (2.0, 5.0, 10.0, 20.0, 50.0)
    }

    sim = SANSimulator(model)
    runs = sim.batch(
        10_000.0, 1500, rng, stop=lambda m: m["security_failed"] > 0
    )
    times = [r.stop_time for r in runs if r.stopped]
    mc_ci = mean_ci(times)
    return analytic_ttsf, p_fail_by, mc_ci


def test_bench_e8_ttsf_validation(benchmark, rng):
    analytic, p_fail_by, mc_ci = benchmark.pedantic(
        run_experiment, args=(rng,), rounds=1, iterations=1
    )
    print_banner("E8  TTSF validation: SAN Monte Carlo vs exact CTMC (Madan 2002)")
    # Hand-derived mean: 1/0.5 + 1/(0.25*0.6) + 1/0.4 = 2 + 6.667 + 2.5.
    expected = 1 / 0.5 + 1 / (0.25 * 0.6) + 1 / 0.4
    rows = [
        ("analytic (CTMC)", analytic),
        ("closed form", expected),
        ("Monte Carlo", mc_ci.estimate),
    ]
    print(format_table(["method", "mean TTSF"], rows))
    print("\nP(security failure by t):")
    print(format_table(["t", "P"], list(p_fail_by.items())))

    assert analytic == pytest.approx(expected, rel=1e-9)
    # Monte Carlo within its own CI half-width (plus slack) of analytic.
    assert abs(mc_ci.estimate - analytic) < max(4 * mc_ci.half_width, 0.4)
    # Failure probability is monotone in t and approaches 1.
    values = list(p_fail_by.values())
    assert values == sorted(values)
    assert values[-1] > 0.95
