"""Shared helpers for the benchmark/experiment harness.

Every ``test_bench_e*`` module regenerates one experiment from the
paper's evaluation content (see DESIGN.md section 5).  Benchmarks print
the same rows/series the paper reports, then assert the *shape* of the
result (who wins, monotonicity, crossovers) — absolute numbers depend on
the simulated substrate and are recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib

import numpy as np
import pytest

from repro.diversity.catalog import default_catalog

_BENCHMARKS_DIR = pathlib.Path(__file__).resolve().parent


def pytest_collection_modifyitems(items):
    """Mark everything under benchmarks/ as ``bench``.

    pytest.ini deselects the marker by default, keeping the tier-1
    run (`python -m pytest -x -q`) to the fast unit suite; run the
    harness explicitly with ``-m bench``.
    """
    bench = pytest.mark.bench
    for item in items:
        path = pathlib.Path(str(item.fspath)).resolve()
        if _BENCHMARKS_DIR in path.parents:
            item.add_marker(bench)


@pytest.fixture(scope="session")
def catalog():
    """One shared catalog across all benchmarks."""
    return default_catalog()


@pytest.fixture
def rng():
    """Deterministic generator: benchmarks are reproducible."""
    return np.random.default_rng(20130624)  # DSN 2013 anniversary seed


def print_banner(title: str) -> None:
    """Uniform experiment banner in benchmark output."""
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
