"""Parallel experiment runner: speedup and determinism benchmark.

Measures the wall-clock speedup of the ``thread`` and ``process``
backends over ``serial`` on a 4-worker batch of 240 replications, and
verifies the central seeding guarantee — every backend returns
bit-identical per-replication records.

The speedup workload models one replication as a fixed service latency
plus RNG draws.  Latency-bound units parallelise on any machine
(including single-core CI), so the dispatch/ordering overhead of the
runner is what is actually being measured: a runner that serialised its
workers, lost results, or re-ordered them would fail loudly here.  A
CPU-bound attack-campaign section reports real Monte-Carlo throughput,
asserting speedup only when the host has cores to parallelise on.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.attacks.campaign import AttackCampaign, CampaignConfig
from repro.attacks.profiles import stuxnet_like
from repro.exec import ExperimentRunner
from repro.scada.topologies import scope_cooling_topology

from benchmarks.conftest import print_banner

REPLICATIONS = 240
N_WORKERS = 4
UNIT_LATENCY = 0.008  # seconds of simulated service time per replication
SEED = 20130624


def _latency_replication(delay, rng):
    """One work unit: a service wait plus a deterministic RNG digest."""
    time.sleep(delay)
    return (float(rng.random()), float(rng.standard_normal()))


def _timed(runner):
    start = time.perf_counter()
    results = runner.run_replications(
        _latency_replication,
        REPLICATIONS,
        seed=SEED,
        common_args=(UNIT_LATENCY,),
    )
    return time.perf_counter() - start, results


def test_parallel_runner_speedup_and_determinism(catalog):
    print_banner(
        "PARALLEL RUNNER — backend speedup on "
        f"{REPLICATIONS} replications, {N_WORKERS} workers"
    )

    serial_time, serial_results = _timed(ExperimentRunner("serial"))
    rows = [("serial", 1, f"{serial_time:.2f}s", "1.00x")]
    speedups = {}
    for backend in ("thread", "process"):
        elapsed, results = _timed(
            ExperimentRunner(backend, n_workers=N_WORKERS)
        )
        assert results == serial_results, (
            f"{backend} backend changed replication records"
        )
        speedups[backend] = serial_time / elapsed
        rows.append(
            (backend, N_WORKERS, f"{elapsed:.2f}s",
             f"{speedups[backend]:.2f}x")
        )

    print(f"{'backend':<10}{'workers':>8}{'wall':>10}{'speedup':>10}")
    for name, workers, wall, speedup in rows:
        print(f"{name:<10}{workers:>8}{wall:>10}{speedup:>10}")

    # The acceptance bar: >= 2x over serial with 4 workers on >= 200
    # replications.  Latency-bound units overlap on any host, so this
    # holds regardless of core count.
    assert speedups["thread"] >= 2.0, speedups
    assert speedups["process"] >= 2.0, speedups


def test_parallel_campaign_throughput(catalog):
    print_banner("PARALLEL RUNNER — attack-campaign Monte-Carlo throughput")

    campaign = AttackCampaign(
        scope_cooling_topology(),
        catalog,
        stuxnet_like(),
        CampaignConfig(horizon=40.0, tick_interval=0.5),
    )
    replications = 48

    start = time.perf_counter()
    serial = campaign.run_batch(
        replications, SEED, runner=ExperimentRunner("serial")
    )
    serial_time = time.perf_counter() - start

    start = time.perf_counter()
    parallel = campaign.run_batch(
        replications,
        SEED,
        runner=ExperimentRunner("process", n_workers=N_WORKERS),
    )
    process_time = time.perf_counter() - start

    def fingerprint(outcome):
        tta = outcome.success_time
        return (
            outcome.success,
            None if np.isnan(tta) else tta,
            outcome.n_hosts,
        )

    assert list(map(fingerprint, parallel)) == list(map(fingerprint, serial))

    speedup = serial_time / process_time
    cores = os.cpu_count() or 1
    print(
        f"{replications} campaign replications: "
        f"serial {serial_time:.2f}s ({replications / serial_time:.0f}/s), "
        f"process[{N_WORKERS}] {process_time:.2f}s "
        f"({replications / process_time:.0f}/s), "
        f"speedup {speedup:.2f}x on {cores} core(s)"
    )
    if cores >= 2:
        # CPU-bound speedup needs actual cores; on single-core CI we
        # only require the parallel path to stay correct (asserted
        # above) without pathological slowdown.
        assert speedup >= 1.3
