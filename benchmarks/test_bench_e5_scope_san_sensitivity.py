"""E5 — the SCoPE case-study sensitivity result (§II).

    "A system model encompassing control/monitoring nodes and PLCs has
    been developed by means of the stochastic activity networks (SAN)
    formalism.  A preliminary sensitivity analysis indicates that the use
    of a small, strategically distributed, number of highly
    attack-resilient components can significantly lower the chance of
    bringing a successful attack to the system."

Regenerates:
  (a) the SAN model of the cooling SCADA system and its analytic attack
      success probability;
  (b) the sensitivity sweep — attack-success probability vs the number k
      of highly attack-resilient components, comparing *strategic*
      placement (greedy search) against *random* placement.

Expected shape: success probability drops steeply for the first few
well-placed resilient components, and strategic placement dominates
random placement at every budget.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import print_banner
from repro.attacks.campaign import CampaignConfig
from repro.attacks.profiles import stuxnet_like
from repro.core.modeling import san_model_for
from repro.core.placement import PlacementProblem
from repro.core.report import format_table
from repro.san.ctmc import san_to_ctmc
from repro.scada.topologies import scope_cooling_topology

CONFIG = CampaignConfig(horizon=30.0, tick_interval=0.5)
CANDIDATES = [
    "office_0", "office_1", "office_2", "historian", "scada_server",
    "hmi_0", "hmi_1", "eng_ws", "plc_0", "plc_1",
]


def run_experiment(catalog, rng: np.random.Generator):
    threat = stuxnet_like()

    # (a) SAN model of the undiversified system, exact CTMC analysis.
    san = san_model_for(scope_cooling_topology(), catalog, threat,
                        give_up=True)
    ctmc = san_to_ctmc(san)
    impair = [i for i, s in enumerate(ctmc.states) if dict(s).get("impaired")]
    start = int(np.argmax(ctmc.initial))
    san_psa = float(ctmc.hitting_probability(impair)[start])

    # (b) placement sweep.
    rows = []
    for k in (0, 1, 2, 3, 4):
        problem = PlacementProblem(
            scope_cooling_topology,
            catalog,
            threat,
            budget=k,
            candidates=CANDIDATES,
            replications=30,
            campaign_config=CONFIG,
        )
        if k == 0:
            base = problem.evaluate([], rng)
            rows.append((0, base, base, "--"))
            continue
        strategic = problem.greedy(rng)
        random_result = problem.random_placement(rng, samples=6)
        rows.append(
            (
                k,
                strategic.objective,
                random_result.objective,
                ",".join(sorted(strategic.subset)),
            )
        )
    return san_psa, rows


def test_bench_e5_scope_san_sensitivity(benchmark, catalog, rng):
    san_psa, rows = benchmark.pedantic(
        run_experiment, args=(catalog, rng), rounds=1, iterations=1
    )
    print_banner("E5  SCoPE SAN model + resilient-component placement sweep")
    print(f"SAN (give-up semantics) analytic attack-success probability of "
          f"the homogeneous system: {san_psa:.3f}\n")
    print(
        format_table(
            ["k resilient", "PSA strategic", "PSA random (mean)",
             "strategic placement"],
            rows,
            title="Attack success within 30h vs number of resilient components",
        )
    )
    psa_strategic = [r[1] for r in rows]
    psa_random = [r[2] for r in rows]
    # "significantly lower the chance": a small k already halves PSA.
    assert psa_strategic[2] < psa_strategic[0] * 0.7
    # Strategic placement weakly dominates random placement.
    for k in range(1, len(rows)):
        assert psa_strategic[k] <= psa_random[k] + 0.1
    # More budget never hurts (within MC noise).
    assert psa_strategic[-1] <= psa_strategic[0]
    # The SAN abstraction (give-up attacker, single pass through the
    # stage chain) agrees the homogeneous system is substantially
    # exposed even to a non-persistent attacker.
    assert 0.2 < san_psa < 1.0
