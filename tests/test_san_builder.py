"""Tests for the fluent SAN builder."""

import numpy as np
import pytest

from repro.san.builder import SANBuilder
from repro.san.model import simple_case
from repro.san.simulator import SANSimulator
from repro.stats.distributions import Deterministic, Exponential


class TestBuilderStructure:
    def test_places_become_initial_marking(self):
        model = SANBuilder().place("a", 2).place("b", 0).build()
        marking = model.initial_marking()
        assert marking["a"] == 2
        assert marking["b"] == 0

    def test_stage_creates_success_and_failure_cases(self):
        builder = SANBuilder()
        builder.place("src", 1).place("dst", 0)
        builder.stage("move", "src", "dst", rate=1.0,
                      success_probability=0.6)
        activity = builder.build().activity("move")
        labels = {case.label for case in activity.cases}
        assert labels == {"success", "failure"}

    def test_certain_stage_has_single_case(self):
        builder = SANBuilder()
        builder.place("src", 1).place("dst", 0)
        builder.stage("move", "src", "dst", rate=1.0,
                      success_probability=1.0)
        activity = builder.build().activity("move")
        assert len(activity.cases) == 1

    def test_impossible_stage_has_single_failure_case(self):
        builder = SANBuilder()
        builder.place("src", 1).place("dst", 0)
        builder.stage("move", "src", "dst", rate=1.0,
                      success_probability=0.0)
        activity = builder.build().activity("move")
        assert [case.label for case in activity.cases] == ["failure"]

    def test_stage_probability_validated(self):
        builder = SANBuilder()
        builder.place("src", 1).place("dst", 0)
        with pytest.raises(ValueError):
            builder.stage("bad", "src", "dst", rate=1.0,
                          success_probability=1.5)

    def test_failure_place_routing(self, rng):
        builder = SANBuilder()
        builder.place("src", 1).place("dst", 0).place("abandoned", 0)
        builder.stage("move", "src", "dst", rate=10.0,
                      success_probability=0.0, failure_place="abandoned")
        sim = SANSimulator(builder.build())
        run = sim.simulate(100.0, rng)
        assert run.final_marking["abandoned"] == 1

    def test_guard_blocks_activity(self, rng):
        builder = SANBuilder()
        builder.place("src", 1).place("dst", 0).place("key", 0)
        builder.stage("move", "src", "dst", rate=100.0,
                      guard=lambda m: m["key"] > 0)
        sim = SANSimulator(builder.build())
        run = sim.simulate(10.0, rng)
        assert run.final_marking["dst"] == 0

    def test_custom_distribution_overrides_rate(self, rng):
        builder = SANBuilder()
        builder.place("src", 1).place("dst", 0)
        builder.stage("move", "src", "dst", rate=999.0,
                      distribution=Deterministic(4.0))
        sim = SANSimulator(builder.build())
        run = sim.simulate(10.0, rng, stop=lambda m: m["dst"] > 0)
        assert run.stop_time == pytest.approx(4.0)

    def test_timed_with_cases(self, rng):
        builder = SANBuilder()
        builder.place("src", 1).place("x", 0).place("y", 0)
        builder.timed(
            "split",
            Exponential(5.0),
            inputs={"src": 1},
            cases=[
                simple_case({"x": 1}, probability=0.5),
                simple_case({"y": 1}, probability=0.5),
            ],
        )
        sim = SANSimulator(builder.build())
        run = sim.simulate(100.0, rng)
        assert run.final_marking["x"] + run.final_marking["y"] == 1

    def test_instantaneous_activity(self, rng):
        builder = SANBuilder()
        builder.place("a", 1).place("b", 0)
        builder.instantaneous("jump", inputs={"a": 1}, outputs={"b": 1})
        sim = SANSimulator(builder.build())
        run = sim.simulate(1.0, rng)
        assert run.final_marking["b"] == 1
        assert run.completions[0][0] == 0.0

    def test_gate_names_unique(self):
        builder = SANBuilder()
        g1 = builder.predicate_gate(lambda m: True)
        g2 = builder.predicate_gate(lambda m: True)
        assert g1.name != g2.name

    def test_output_gate_applies_function(self):
        builder = SANBuilder()
        gate = builder.output_gate(lambda m: m.add("counter", 5))
        from repro.san.model import SANMarking

        marking = SANMarking()
        gate.function(marking)
        assert marking["counter"] == 5
