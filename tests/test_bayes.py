"""Tests for Bayesian networks, inference and attack graphs."""

import numpy as np
import pytest

from repro.bayes.attackgraph import attack_graph_from_topology
from repro.bayes.cpt import CPT
from repro.bayes.inference import Factor, VariableElimination
from repro.bayes.network import BayesianNetwork
from repro.bayes.sampling import forward_sample, likelihood_weighting


def sprinkler_network():
    """The classic rain/sprinkler/wet-grass network."""
    bn = BayesianNetwork("sprinkler")
    bn.add_node(CPT.root("rain", ("false", "true"), (0.8, 0.2)))
    bn.add_node(
        CPT(
            variable="sprinkler",
            variable_states=("false", "true"),
            parents=("rain",),
            parent_states=(("false", "true"),),
            table={
                ("false",): (0.6, 0.4),
                ("true",): (0.99, 0.01),
            },
        )
    )
    bn.add_node(
        CPT(
            variable="wet",
            variable_states=("false", "true"),
            parents=("sprinkler", "rain"),
            parent_states=(("false", "true"), ("false", "true")),
            table={
                ("false", "false"): (1.0, 0.0),
                ("false", "true"): (0.2, 0.8),
                ("true", "false"): (0.1, 0.9),
                ("true", "true"): (0.01, 0.99),
            },
        )
    )
    return bn


class TestCPT:
    def test_rows_must_sum_to_one(self):
        with pytest.raises(ValueError):
            CPT.root("x", ("a", "b"), (0.5, 0.6))

    def test_row_count_must_match_parent_states(self):
        with pytest.raises(ValueError):
            CPT(
                variable="x",
                variable_states=("a", "b"),
                parents=("p",),
                parent_states=(("u", "v"),),
                table={("u",): (0.5, 0.5)},  # missing ("v",)
            )

    def test_probability_lookup(self):
        cpt = CPT.root("x", ("a", "b"), (0.3, 0.7))
        assert cpt.probability("b", {}) == 0.7

    def test_noisy_or_no_active_parents_is_leak(self):
        cpt = CPT.noisy_or("x", ["p", "q"], {"p": 0.5, "q": 0.5}, leak=0.1)
        assert cpt.probability("true", {"p": "false", "q": "false"}) == (
            pytest.approx(0.1)
        )

    def test_noisy_or_all_active(self):
        cpt = CPT.noisy_or("x", ["p", "q"], {"p": 0.5, "q": 0.4})
        expected = 1.0 - 0.5 * 0.6
        assert cpt.probability("true", {"p": "true", "q": "true"}) == (
            pytest.approx(expected)
        )

    def test_noisy_or_weight_validation(self):
        with pytest.raises(ValueError):
            CPT.noisy_or("x", ["p"], {"p": 1.5})


class TestNetworkStructure:
    def test_parents_must_exist_first(self):
        bn = BayesianNetwork()
        with pytest.raises(ValueError):
            bn.add_node(
                CPT(
                    variable="child",
                    variable_states=("a", "b"),
                    parents=("ghost",),
                    parent_states=(("a", "b"),),
                    table={("a",): (1.0, 0.0), ("b",): (0.0, 1.0)},
                )
            )

    def test_duplicate_variable_rejected(self):
        bn = BayesianNetwork()
        bn.add_node(CPT.root("x", ("a", "b"), (0.5, 0.5)))
        with pytest.raises(ValueError):
            bn.add_node(CPT.root("x", ("a", "b"), (0.5, 0.5)))

    def test_joint_probability_chain_rule(self):
        bn = sprinkler_network()
        p = bn.joint_probability(
            {"rain": "true", "sprinkler": "false", "wet": "true"}
        )
        assert p == pytest.approx(0.2 * 0.99 * 0.8)

    def test_children_listing(self):
        bn = sprinkler_network()
        assert set(bn.children("rain")) == {"sprinkler", "wet"}

    def test_validate_checks_parent_state_consistency(self):
        bn = sprinkler_network()
        bn.validate()  # must not raise


class TestVariableElimination:
    def test_prior_marginal(self):
        engine = VariableElimination(sprinkler_network())
        posterior = engine.query("rain")
        assert posterior["true"] == pytest.approx(0.2)

    def test_marginal_sums_to_one(self):
        engine = VariableElimination(sprinkler_network())
        posterior = engine.query("wet")
        assert sum(posterior.values()) == pytest.approx(1.0)

    def test_evidence_updates_belief(self):
        engine = VariableElimination(sprinkler_network())
        prior = engine.query("rain")["true"]
        posterior = engine.query("rain", evidence={"wet": "true"})["true"]
        assert posterior > prior  # wet grass raises belief in rain

    def test_query_of_evidence_variable_is_degenerate(self):
        engine = VariableElimination(sprinkler_network())
        posterior = engine.query("rain", evidence={"rain": "true"})
        assert posterior == {"false": 0.0, "true": 1.0}

    def test_matches_exhaustive_enumeration(self):
        bn = sprinkler_network()
        engine = VariableElimination(bn)
        # Enumerate P(wet=true) by brute force.
        total = 0.0
        for r in ("false", "true"):
            for s in ("false", "true"):
                for w in ("false", "true"):
                    p = bn.joint_probability(
                        {"rain": r, "sprinkler": s, "wet": w}
                    )
                    if w == "true":
                        total += p
        assert engine.query("wet")["true"] == pytest.approx(total)

    def test_probability_of_evidence(self):
        bn = sprinkler_network()
        engine = VariableElimination(bn)
        p_wet = engine.probability_of_evidence({"wet": "true"})
        assert p_wet == pytest.approx(engine.query("wet")["true"])

    def test_explicit_elimination_order(self):
        engine = VariableElimination(sprinkler_network())
        a = engine.query("wet", elimination_order=["rain", "sprinkler"])
        b = engine.query("wet", elimination_order=["sprinkler", "rain"])
        assert a["true"] == pytest.approx(b["true"])

    def test_bad_elimination_order_rejected(self):
        engine = VariableElimination(sprinkler_network())
        with pytest.raises(ValueError):
            engine.query("wet", elimination_order=["rain"])


class TestSampling:
    def test_forward_sample_has_all_variables(self, rng):
        sample = forward_sample(sprinkler_network(), rng)
        assert set(sample) == {"rain", "sprinkler", "wet"}

    def test_forward_sampling_frequency(self):
        bn = sprinkler_network()
        rng = np.random.default_rng(8)
        rains = sum(
            forward_sample(bn, rng)["rain"] == "true" for _ in range(4000)
        )
        assert rains / 4000 == pytest.approx(0.2, abs=0.03)

    def test_likelihood_weighting_approximates_exact(self):
        bn = sprinkler_network()
        engine = VariableElimination(bn)
        exact = engine.query("rain", evidence={"wet": "true"})["true"]
        approx = likelihood_weighting(
            bn, "rain", {"wet": "true"}, 20000, np.random.default_rng(17)
        )["true"]
        assert approx == pytest.approx(exact, abs=0.03)

    def test_zero_samples_rejected(self, rng):
        with pytest.raises(ValueError):
            likelihood_weighting(sprinkler_network(), "rain", {}, 0, rng)


class TestFactorAlgebra:
    def test_multiply_disjoint_factors(self):
        f1 = Factor(("a",), (("x", "y"),), np.array([0.5, 0.5]))
        f2 = Factor(("b",), (("u", "v"),), np.array([0.3, 0.7]))
        product = f1.multiply(f2)
        assert product.values.shape == (2, 2)
        assert product.values[0, 1] == pytest.approx(0.35)

    def test_marginalize_removes_axis(self):
        f = Factor(
            ("a", "b"),
            (("x", "y"), ("u", "v")),
            np.array([[0.1, 0.2], [0.3, 0.4]]),
        )
        marg = f.marginalize("a")
        assert marg.variables == ("b",)
        assert np.allclose(marg.values, [0.4, 0.6])

    def test_reduce_conditions_on_value(self):
        f = Factor(
            ("a", "b"),
            (("x", "y"), ("u", "v")),
            np.array([[0.1, 0.2], [0.3, 0.4]]),
        )
        reduced = f.reduce("a", "y")
        assert np.allclose(reduced.values, [0.3, 0.4])

    def test_normalize_zero_factor_rejected(self):
        f = Factor(("a",), (("x", "y"),), np.zeros(2))
        with pytest.raises(ValueError):
            f.normalize()

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Factor(("a",), (("x", "y"),), np.zeros(3))


class TestAttackGraph:
    def test_two_path_noisy_or(self):
        graph = attack_graph_from_topology(
            [
                ("hmi", "plc", 0.6),
                ("eng", "plc", 0.7),
                ("corp", "hmi", 0.5),
                ("corp", "eng", 0.4),
            ],
            {"corp": 1.0},
        )
        # Hand computation: P = 1 - (1-0.6*0.5)(1-0.7*0.4) = 0.496
        assert graph.compromise_probability("plc") == pytest.approx(0.496)

    def test_cycle_rejected(self):
        with pytest.raises(ValueError):
            attack_graph_from_topology(
                [("a", "b", 0.5), ("b", "a", 0.5)], {"a": 1.0}
            )

    def test_missing_entry_prior_rejected(self):
        with pytest.raises(ValueError):
            attack_graph_from_topology([("a", "b", 0.5)], {})

    def test_out_of_range_probability_rejected(self):
        with pytest.raises(ValueError):
            attack_graph_from_topology([("a", "b", 1.5)], {"a": 1.0})

    def test_evidence_conditioning(self):
        graph = attack_graph_from_topology(
            [("corp", "hmi", 0.5), ("hmi", "plc", 0.6)], {"corp": 1.0}
        )
        unconditional = graph.compromise_probability("plc")
        given_hmi = graph.compromise_probability("plc", evidence={"hmi": True})
        assert given_hmi > unconditional
        assert given_hmi == pytest.approx(0.6)

    def test_diverse_path_lowers_compromise_probability(self):
        # Same topology, one weak link hardened: probability must drop.
        weak = attack_graph_from_topology(
            [("corp", "hmi", 0.8), ("hmi", "plc", 0.8)], {"corp": 1.0}
        )
        strong = attack_graph_from_topology(
            [("corp", "hmi", 0.8), ("hmi", "plc", 0.1)], {"corp": 1.0}
        )
        assert (
            strong.compromise_probability("plc")
            < weak.compromise_probability("plc")
        )

    def test_entry_points_listed(self):
        graph = attack_graph_from_topology(
            [("corp", "plc", 0.5)], {"corp": 0.9}
        )
        assert graph.entry_points == ["corp"]
