"""Suite runner: determinism, aggregation, comparison report.

The fast tests here keep tier 1 quick by using the smoke scenario and a
downsized clone.  The full built-in suite across all three backends —
the expensive cross-backend bit-identity guarantee — carries the
``scenario`` marker and runs with ``-m "scenario or bench"``.
"""

import dataclasses

import pytest

from repro.scenarios import SCENARIOS, Scenario, ScenarioSuite, get_scenario
from repro.scenarios.suite import _summarize

SMOKE = get_scenario("smoke")
#: A second tiny scenario so fast suite tests are multi-scenario.
SMOKE_GRID = dataclasses.replace(
    SMOKE,
    name="smoke_grid",
    topology="smart_grid_feeder",
    plant="feeder",
    topology_params={"n_office_pcs": 1, "n_operator_consoles": 1},
    tags=("smoke",),
)


class TestSuiteConstruction:
    def test_empty_suite_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            ScenarioSuite([])

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            ScenarioSuite(["smoke", "not_a_scenario"])

    def test_duplicate_scenarios_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ScenarioSuite(["smoke", SMOKE])

    def test_unknown_backend_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown backend"):
            ScenarioSuite(["smoke"], backend="quantum")

    def test_accepts_specs_and_names_mixed(self):
        suite = ScenarioSuite([SMOKE_GRID, "smoke"])
        assert [s.name for s in suite.scenarios] == ["smoke_grid", "smoke"]


class TestSuiteRun:
    @pytest.fixture(scope="class")
    def serial_result(self):
        return ScenarioSuite([SMOKE, SMOKE_GRID]).run(seed=42)

    def test_results_in_suite_order(self, serial_result):
        assert serial_result.names() == ["smoke", "smoke_grid"]

    def test_record_counts(self, serial_result):
        for result in serial_result.results:
            assert len(result.records) == result.n_runs * result.replications

    def test_summary_metrics_present_and_finite(self, serial_result):
        for result in serial_result.results:
            for metric in ("psa", "tta_mean", "ttsf_mean",
                           "final_ratio_mean"):
                assert result.summary[metric] == result.summary[metric]
            assert 0.0 <= result.summary["psa"] <= 1.0
            assert 0.0 < result.summary["tta_mean"] <= SMOKE.horizon

    def test_thread_backend_bit_identical(self, serial_result):
        threaded = ScenarioSuite(
            [SMOKE, SMOKE_GRID], backend="thread", n_workers=2
        ).run(seed=42)
        assert (
            threaded.records_by_scenario()
            == serial_result.records_by_scenario()
        )

    def test_different_seed_different_records(self, serial_result):
        other = ScenarioSuite([SMOKE, SMOKE_GRID]).run(seed=43)
        assert (
            other.records_by_scenario()
            != serial_result.records_by_scenario()
        )

    def test_by_name(self, serial_result):
        assert serial_result.by_name("smoke").scenario == SMOKE
        with pytest.raises(ValueError, match="not in suite"):
            serial_result.by_name("cooling_stuxnet")

    def test_comparison_report_renders(self, serial_result):
        report = serial_result.comparison_report()
        assert "smoke" in report and "smoke_grid" in report
        assert "psa" in report
        assert "diversification target" in report

    def test_top_targets_are_factor_names_or_dash(self, serial_result):
        factor_names = {"operating_system", "plc_firmware", "--"}
        for result in serial_result.results:
            for response, target in result.top_targets.items():
                assert target in factor_names, (response, target)


class TestSummarize:
    def test_empty_records_all_nan(self):
        summary = _summarize([])
        assert all(value != value for value in summary.values())

    def test_known_values(self):
        records = [
            {"success": 1.0, "tta": 4.0, "ttsf": 2.0, "final_ratio": 0.5},
            {"success": 0.0, "tta": 8.0, "ttsf": 6.0, "final_ratio": 0.25},
        ]
        summary = _summarize(records)
        assert summary["psa"] == 0.5
        assert summary["tta_mean"] == 6.0
        assert summary["ttsf_mean"] == 4.0
        assert summary["final_ratio_mean"] == 0.375


@pytest.mark.scenario
class TestFullBuiltinSuiteAcrossBackends:
    """The acceptance guarantee: every built-in scenario, bit-identical
    per-scenario records on serial, thread and process backends."""

    def test_builtin_suite_bit_identical_across_backends(self):
        names = SCENARIOS.names()
        assert len(names) >= 8
        reference = None
        for backend in ("serial", "thread", "process"):
            result = ScenarioSuite(
                names, backend=backend, n_workers=4
            ).run(seed=2013)
            records = result.records_by_scenario()
            assert sorted(records) == names
            if reference is None:
                reference = records
            else:
                assert records == reference, f"{backend} diverged"
