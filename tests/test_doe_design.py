"""Tests for the DoE core data structures."""

import numpy as np
import pytest

from repro.doe.design import Design, Factor, Run


class TestFactor:
    def test_levels_preserved_in_order(self):
        f = Factor("os", ("win", "linux", "rtos"))
        assert f.levels == ("win", "linux", "rtos")
        assert f.n_levels == 3

    def test_fewer_than_two_levels_rejected(self):
        with pytest.raises(ValueError):
            Factor("os", ("only",))

    def test_duplicate_levels_rejected(self):
        with pytest.raises(ValueError):
            Factor("os", ("a", "a"))

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Factor("", ("a", "b"))

    def test_two_level_coding_roundtrip(self):
        f = Factor("x", ("low", "high"))
        assert f.coded_to_level(-1.0) == "low"
        assert f.coded_to_level(1.0) == "high"
        assert f.level_to_coded("low") == -1.0
        assert f.level_to_coded("high") == 1.0

    def test_multi_level_coding_roundtrip(self):
        f = Factor("x", ("a", "b", "c"))
        for i, level in enumerate(f.levels):
            assert f.coded_to_level(f.level_to_coded(level)) == level

    def test_multi_level_out_of_range_coded_rejected(self):
        f = Factor("x", ("a", "b", "c"))
        with pytest.raises(ValueError):
            f.coded_to_level(5.0)


class TestRun:
    def test_getitem(self):
        run = Run({"a": 1, "b": 2})
        assert run["a"] == 1
        assert run["b"] == 2

    def test_missing_factor_raises(self):
        with pytest.raises(KeyError):
            Run({"a": 1})["z"]

    def test_as_dict(self):
        assert Run({"a": 1}).as_dict() == {"a": 1}

    def test_runs_hashable_and_comparable(self):
        assert Run({"a": 1, "b": 2}) == Run({"b": 2, "a": 1})


class TestDesign:
    @pytest.fixture
    def design(self):
        factors = [Factor("a", (-1, 1)), Factor("b", (-1, 1))]
        runs = [
            Run({"a": x, "b": y}) for x in (-1, 1) for y in (-1, 1)
        ]
        return Design(factors=factors, runs=runs, name="2^2")

    def test_counts(self, design):
        assert design.n_runs == 4
        assert design.n_factors == 2

    def test_coded_matrix_shape_and_values(self, design):
        m = design.coded_matrix()
        assert m.shape == (4, 2)
        assert set(np.unique(m)) == {-1.0, 1.0}

    def test_full_factorial_is_balanced_and_orthogonal(self, design):
        assert design.is_balanced()
        assert design.is_orthogonal()

    def test_unbalanced_detected(self):
        factors = [Factor("a", (-1, 1))]
        runs = [Run({"a": -1}), Run({"a": -1}), Run({"a": 1})]
        assert not Design(factors=factors, runs=runs).is_balanced()

    def test_replicate_multiplies_runs(self, design):
        assert design.replicate(3).n_runs == 12

    def test_replicate_zero_rejected(self, design):
        with pytest.raises(ValueError):
            design.replicate(0)

    def test_run_not_covering_factors_rejected(self):
        factors = [Factor("a", (-1, 1)), Factor("b", (-1, 1))]
        with pytest.raises(ValueError):
            Design(factors=factors, runs=[Run({"a": -1})])

    def test_duplicate_factor_names_rejected(self):
        factors = [Factor("a", (-1, 1)), Factor("a", (0, 1))]
        with pytest.raises(ValueError):
            Design(factors=factors, runs=[])

    def test_factor_lookup(self, design):
        assert design.factor("a").name == "a"
        with pytest.raises(KeyError):
            design.factor("zzz")

    def test_format_table_lists_all_runs(self, design):
        text = design.format_table()
        assert "4 runs" in text
