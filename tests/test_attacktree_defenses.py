"""Tests for attack-tree defense annotations and portfolio selection."""

import pytest

from repro.attacktree.analysis import evaluate
from repro.attacktree.defenses import (
    Defense,
    apply_defenses,
    select_defenses,
)
from repro.attacktree.nodes import (
    AndNode,
    KofNNode,
    LeafAttack,
    OrNode,
    SandNode,
)
from repro.attacktree.tree import AttackTree
from repro.stats.distributions import Deterministic


def leaf(name, p, cost=1.0, t=0.0):
    return LeafAttack(name, probability=p, cost=cost, time=Deterministic(t))


@pytest.fixture
def tree():
    entry = OrNode("entry", [leaf("usb", 0.8), leaf("smb", 0.6)])
    return AttackTree(SandNode("root", [entry, leaf("reprogram", 0.9)]))


class TestApplyDefenses:
    def test_defense_scales_leaf_probability(self, tree):
        defended = apply_defenses(
            tree, [Defense("block_usb", {"usb": 0.1})]
        )
        assert defended.node("usb").probability == pytest.approx(0.08)

    def test_original_tree_untouched(self, tree):
        apply_defenses(tree, [Defense("block_usb", {"usb": 0.0})])
        assert tree.node("usb").probability == 0.8

    def test_multiple_defenses_multiply(self, tree):
        defended = apply_defenses(
            tree,
            [Defense("a", {"usb": 0.5}), Defense("b", {"usb": 0.5})],
        )
        assert defended.node("usb").probability == pytest.approx(0.2)

    def test_root_probability_drops(self, tree):
        before = evaluate(tree).probability
        defended = apply_defenses(
            tree, [Defense("signed", {"reprogram": 0.1})]
        )
        assert evaluate(defended).probability < before

    def test_unknown_leaf_rejected(self, tree):
        with pytest.raises(ValueError):
            apply_defenses(tree, [Defense("bad", {"ghost": 0.5})])

    def test_structure_preserved(self, tree):
        defended = apply_defenses(tree, [Defense("d", {"usb": 0.5})])
        assert len(defended) == len(tree)
        assert type(defended.root) is type(tree.root)

    def test_kofn_structure_preserved(self):
        children = [leaf(f"l{i}", 0.5) for i in range(3)]
        source = AttackTree(KofNNode("root", children, k=2))
        defended = apply_defenses(source, [Defense("d", {"l0": 0.0})])
        assert defended.node("root").k == 2

    def test_defense_validation(self):
        with pytest.raises(ValueError):
            Defense("empty", {})
        with pytest.raises(ValueError):
            Defense("bad_factor", {"x": 1.5})
        with pytest.raises(ValueError):
            Defense("bad_cost", {"x": 0.5}, cost=-1.0)


class TestSelectDefenses:
    def make_candidates(self):
        return [
            Defense("block_usb", {"usb": 0.05}, cost=2.0),
            Defense("patch_smb", {"smb": 0.1}, cost=2.0),
            Defense("signed_logic", {"reprogram": 0.05}, cost=3.0),
            Defense("useless", {"usb": 1.0}, cost=0.5),
        ]

    def test_budget_respected(self, tree):
        portfolio = select_defenses(tree, self.make_candidates(), budget=3.0)
        assert portfolio.total_cost <= 3.0

    def test_bottleneck_defense_preferred(self, tree):
        # reprogram is a SAND conjunct: mitigating it caps the root
        # probability; with budget for exactly one "real" defense the
        # greedy pick should be signed_logic.
        portfolio = select_defenses(tree, self.make_candidates(), budget=3.0)
        names = {d.name for d in portfolio.chosen}
        assert "signed_logic" in names

    def test_useless_defense_never_chosen(self, tree):
        portfolio = select_defenses(tree, self.make_candidates(), budget=10.0)
        assert all(d.name != "useless" for d in portfolio.chosen)

    def test_bigger_budget_never_worse(self, tree):
        small = select_defenses(tree, self.make_candidates(), budget=2.0)
        large = select_defenses(tree, self.make_candidates(), budget=7.0)
        assert large.residual_probability <= small.residual_probability

    def test_zero_budget_chooses_nothing(self, tree):
        portfolio = select_defenses(tree, self.make_candidates(), budget=0.0)
        assert portfolio.chosen == []
        assert portfolio.residual_probability == pytest.approx(
            evaluate(tree).probability
        )

    def test_negative_budget_rejected(self, tree):
        with pytest.raises(ValueError):
            select_defenses(tree, [], budget=-1.0)

    def test_residual_matches_applied_tree(self, tree):
        candidates = self.make_candidates()
        portfolio = select_defenses(tree, candidates, budget=7.0)
        rebuilt = apply_defenses(tree, portfolio.chosen)
        assert portfolio.residual_probability == pytest.approx(
            evaluate(rebuilt).probability
        )
