"""Scenario spec: validation, serialization round-trip, builders."""

import dataclasses

import numpy as np
import pytest

from repro.attacks.campaign import CampaignConfig
from repro.attacks.profiles import ThreatProfile
from repro.core.study import DiversityStudy
from repro.scada.components import ComponentKind
from repro.scada.network import SCADANetwork
from repro.scada.plant.feeder import PowerFeeder
from repro.scenarios import Scenario, get_scenario


def make_scenario(**overrides):
    base = dict(
        name="unit_test",
        kinds=("operating_system", "plc_firmware"),
        replications=2,
        horizon=10.0,
    )
    base.update(overrides)
    return Scenario(**base)


class TestValidation:
    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="name"):
            make_scenario(name="")

    def test_unknown_design_kind(self):
        with pytest.raises(ValueError, match="design_kind"):
            make_scenario(design_kind="taguchi")

    @pytest.mark.parametrize(
        "field,value",
        [
            ("replications", 0),
            ("horizon", 0.0),
            ("horizon", -5.0),
            ("tick_interval", 0.0),
        ],
    )
    def test_non_positive_knobs_rejected(self, field, value):
        with pytest.raises(ValueError, match=field):
            make_scenario(**{field: value})

    @pytest.mark.parametrize(
        "field,value",
        [
            ("topology", "ring_of_fire"),
            ("threat", "mirai_like"),
            ("catalog", "exotic"),
            ("plant", "reactor"),
        ],
    )
    def test_unknown_registry_names_rejected(self, field, value):
        with pytest.raises(ValueError, match=f"unknown {field}"):
            make_scenario(**{field: value})

    def test_unknown_registry_error_names_choices(self):
        with pytest.raises(ValueError, match="scope_cooling"):
            make_scenario(topology="nope")

    def test_bad_component_kind_rejected(self):
        with pytest.raises(ValueError):
            make_scenario(kinds=("operating_system", "flux_capacitor"))

    def test_enum_kinds_normalized_to_values(self):
        scenario = make_scenario(
            kinds=(ComponentKind.OPERATING_SYSTEM, "plc_firmware")
        )
        assert scenario.kinds == ("operating_system", "plc_firmware")
        # The normalised spec still JSON-round-trips.
        assert Scenario.from_json(scenario.to_json()) == scenario

    def test_bare_string_kinds_rejected(self):
        with pytest.raises(ValueError, match="bare string"):
            make_scenario(kinds="operating_system")

    def test_bare_string_tags_rejected(self):
        with pytest.raises(ValueError, match="bare string"):
            make_scenario(tags="smoke")


class TestSerialization:
    def test_dict_round_trip_is_equal(self):
        scenario = make_scenario(
            topology_params={"n_plcs": 3},
            threat_params={"entry_rate": 0.2},
            tags=("a", "b"),
        )
        assert Scenario.from_dict(scenario.to_dict()) == scenario

    def test_json_round_trip_is_equal(self):
        for scenario in (make_scenario(), get_scenario("smart_grid_duqu")):
            assert Scenario.from_json(scenario.to_json()) == scenario

    def test_from_dict_rejects_unknown_keys(self):
        data = make_scenario().to_dict()
        data["fancyness"] = 11
        with pytest.raises(ValueError, match="fancyness"):
            Scenario.from_dict(data)

    def test_from_dict_validates_values(self):
        data = make_scenario().to_dict()
        data["design_kind"] = "bogus"
        with pytest.raises(ValueError, match="design_kind"):
            Scenario.from_dict(data)

    def test_kinds_none_round_trips(self):
        scenario = make_scenario(kinds=None)
        rebuilt = Scenario.from_dict(scenario.to_dict())
        assert rebuilt.kinds is None
        assert rebuilt == scenario

    def test_round_trip_same_study_artifacts_for_fixed_seed(self):
        original = get_scenario("smoke")
        rebuilt = Scenario.from_json(original.to_json())
        results = []
        for scenario in (original, rebuilt):
            study = DiversityStudy.from_scenario(scenario)
            results.append(study.execute(np.random.default_rng(123)))
        a, b = results
        assert a.measurement.records == b.measurement.records
        assert [f.name for f in a.factors] == [f.name for f in b.factors]
        assert a.design.name == b.design.name


class TestBuilders:
    def test_network_factory_applies_topology_params(self):
        scenario = make_scenario(topology_params={"n_plcs": 4})
        network = scenario.build_network()
        assert isinstance(network, SCADANetwork)
        plcs = [h for h in network.hosts if h.name.startswith("plc_")]
        assert len(plcs) == 4

    def test_threat_params_applied(self):
        scenario = make_scenario(threat_params={"entry_rate": 0.42})
        threat = scenario.build_threat()
        assert isinstance(threat, ThreatProfile)
        assert threat.entry_rate == 0.42

    def test_campaign_config_carries_plant_and_knobs(self):
        scenario = make_scenario(
            topology="smart_grid_feeder", plant="feeder", horizon=33.0
        )
        config = scenario.build_campaign_config()
        assert isinstance(config, CampaignConfig)
        assert config.horizon == 33.0
        assert isinstance(config.plant_factory(), PowerFeeder)

    def test_component_kinds_members(self):
        scenario = make_scenario()
        assert scenario.component_kinds() == [
            ComponentKind.OPERATING_SYSTEM,
            ComponentKind.PLC_FIRMWARE,
        ]
        assert make_scenario(kinds=None).component_kinds() is None

    def test_describe_and_summary_render(self):
        scenario = get_scenario("cooling_stuxnet")
        assert scenario.name in scenario.describe()
        assert "stuxnet_like" in scenario.summary_line()


class TestFromScenario:
    def test_study_mirrors_spec(self):
        scenario = get_scenario("cooling_screening_pb")
        study = DiversityStudy.from_scenario(scenario)
        assert study.design_kind == "pb"
        assert study.replications == scenario.replications
        assert study.campaign_config.horizon == scenario.horizon
        assert study.kinds == scenario.component_kinds()

    def test_execution_overrides_not_in_spec(self):
        scenario = get_scenario("smoke")
        study = DiversityStudy.from_scenario(
            scenario, backend="thread", n_workers=2
        )
        assert study.backend == "thread"
        assert study.n_workers == 2

    def test_scenario_is_immutable(self):
        scenario = get_scenario("smoke")
        with pytest.raises(dataclasses.FrozenInstanceError):
            scenario.replications = 99
