"""Tests for network topology, zoning, firewalling and the SCADA master."""

import pytest

from repro.scada.components import Component, ComponentKind, Host, HostRole
from repro.scada.monitoring import Alarm, SCADAMaster, SpoofDetector
from repro.scada.network import SCADANetwork, Zone
from repro.scada.topologies import scope_cooling_topology


class TestComponents:
    def test_install_and_lookup(self):
        host = Host("h", HostRole.HMI_STATION)
        host.install(ComponentKind.OPERATING_SYSTEM, "win_legacy")
        assert host.variant_of(ComponentKind.OPERATING_SYSTEM) == "win_legacy"

    def test_variant_of_missing_slot_is_none(self):
        host = Host("h", HostRole.HMI_STATION)
        assert host.variant_of(ComponentKind.ANTIVIRUS) is None

    def test_missing_slots_by_role(self):
        host = Host("h", HostRole.PLC)
        missing = set(host.missing_slots())
        assert ComponentKind.PLC_FIRMWARE in missing
        host.install(ComponentKind.PLC_FIRMWARE, "firmware_common")
        assert ComponentKind.PLC_FIRMWARE not in set(host.missing_slots())

    def test_is_computer_and_field_device(self):
        assert Host("h", HostRole.HMI_STATION).is_computer
        assert not Host("s", HostRole.SENSOR).is_computer
        assert Host("s", HostRole.SENSOR).is_field_device

    def test_empty_variant_rejected(self):
        with pytest.raises(ValueError):
            Component(ComponentKind.OPERATING_SYSTEM, "")


class TestNetworkTopology:
    @pytest.fixture
    def net(self):
        net = SCADANetwork()
        net.add_host(Host("a", HostRole.CORPORATE_PC), Zone.ENTERPRISE)
        net.add_host(Host("b", HostRole.SCADA_SERVER), Zone.SUPERVISORY)
        net.add_host(Host("c", HostRole.PLC), Zone.CONTROL)
        net.connect("a", "b", ["smb"])
        net.connect("b", "c", ["modbus"])
        return net

    def test_duplicate_host_rejected(self, net):
        with pytest.raises(ValueError):
            net.add_host(Host("a", HostRole.CORPORATE_PC), Zone.ENTERPRISE)

    def test_connect_unknown_host_rejected(self, net):
        with pytest.raises(KeyError):
            net.connect("a", "ghost")

    def test_cross_zone_denied_by_default(self, net):
        assert not net.flow_allowed("a", "b", "smb")

    def test_firewall_rule_opens_flow(self, net):
        net.allow(Zone.ENTERPRISE, Zone.SUPERVISORY, "smb")
        assert net.flow_allowed("a", "b", "smb")

    def test_rule_is_service_specific(self, net):
        net.allow(Zone.ENTERPRISE, Zone.SUPERVISORY, "smb")
        assert not net.flow_allowed("a", "b", "scada")

    def test_wildcard_service_rule(self):
        net = SCADANetwork()
        net.add_host(Host("a", HostRole.CORPORATE_PC), Zone.ENTERPRISE)
        net.add_host(Host("b", HostRole.SCADA_SERVER), Zone.SUPERVISORY)
        net.connect("a", "b", ["*"])  # link carries every service
        net.allow(Zone.ENTERPRISE, Zone.SUPERVISORY, "*")
        assert net.flow_allowed("a", "b", "anything")

    def test_rule_is_directional(self, net):
        net.allow(Zone.ENTERPRISE, Zone.SUPERVISORY, "smb")
        assert not net.flow_allowed("b", "a", "smb")

    def test_link_must_carry_service(self, net):
        net.allow(Zone.SUPERVISORY, Zone.CONTROL, "scada")
        assert not net.flow_allowed("b", "c", "scada")  # link is modbus-only

    def test_same_zone_needs_no_rule(self):
        net = SCADANetwork()
        net.add_host(Host("x", HostRole.HMI_STATION), Zone.SUPERVISORY)
        net.add_host(Host("y", HostRole.HMI_STATION), Zone.SUPERVISORY)
        net.connect("x", "y", ["smb"])
        assert net.flow_allowed("x", "y", "smb")

    def test_reachable_targets(self, net):
        net.allow(Zone.ENTERPRISE, Zone.SUPERVISORY, "smb")
        assert net.reachable_targets("a", "smb") == ["b"]

    def test_attack_surface_excludes_compromised(self, net):
        net.allow(Zone.ENTERPRISE, Zone.SUPERVISORY, "smb")
        surface = net.attack_surface({"a"}, "smb")
        assert surface == [("a", "b")]
        assert net.attack_surface({"a", "b"}, "smb") == []

    def test_hosts_in_zone_and_role(self, net):
        assert [h.name for h in net.hosts_in_zone(Zone.CONTROL)] == ["c"]
        assert [h.name for h in net.hosts_with_role(HostRole.PLC)] == ["c"]

    def test_shortest_zone_path(self, net):
        assert net.shortest_zone_path("a", "c") == ["a", "b", "c"]

    def test_validate_flags_isolated_hosts(self):
        net = SCADANetwork()
        net.add_host(Host("lonely", HostRole.CORPORATE_PC), Zone.ENTERPRISE)
        warnings = net.validate()
        assert any("no links" in w for w in warnings)


class TestReferenceTopology:
    def test_no_validation_warnings(self):
        assert scope_cooling_topology().validate() == []

    def test_expected_population(self):
        net = scope_cooling_topology()
        assert len(net.hosts_with_role(HostRole.PLC)) == 2
        assert len(net.hosts_with_role(HostRole.SENSOR)) == 2
        assert len(net.hosts_in_zone(Zone.ENTERPRISE)) == 3

    def test_engineering_station_reaches_plc(self):
        net = scope_cooling_topology()
        assert net.flow_allowed("eng_ws", "plc_0", "modbus")

    def test_office_cannot_reach_plc_directly(self):
        net = scope_cooling_topology()
        assert not net.flow_allowed("office_0", "plc_0", "modbus")

    def test_custom_variant_installation(self):
        net = scope_cooling_topology(default_os="linux_hardened")
        os_variant = net.host("office_0").variant_of(
            ComponentKind.OPERATING_SYSTEM
        )
        assert os_variant == "linux_hardened"

    def test_scalable_sizes(self):
        net = scope_cooling_topology(n_office_pcs=5, n_plcs=3, n_hmi=4)
        assert len(net.hosts_in_zone(Zone.ENTERPRISE)) == 5
        assert len(net.hosts_with_role(HostRole.PLC)) == 3


class TestSpoofDetector:
    def test_frozen_signal_detected(self):
        detector = SpoofDetector(window=5)
        findings = [detector.observe(100.0) for _ in range(5)]
        assert findings[-1] == "frozen_signal"

    def test_varying_signal_not_flagged(self, rng):
        detector = SpoofDetector(window=5, max_rate=100.0)
        findings = [
            detector.observe(100.0 + float(rng.normal(0, 2))) for _ in range(20)
        ]
        assert all(f != "frozen_signal" for f in findings)

    def test_impossible_jump_detected(self):
        detector = SpoofDetector(window=5, max_rate=10.0)
        detector.observe(100.0)
        assert detector.observe(200.0) == "impossible_rate"

    def test_reset_clears_window(self):
        detector = SpoofDetector(window=3)
        detector.observe(1.0)
        detector.observe(1.0)
        detector.reset()
        assert detector.observe(1.0) is None

    def test_window_validation(self):
        with pytest.raises(ValueError):
            SpoofDetector(window=2)


class TestSCADAMaster:
    def test_alarm_trips_on_high_value(self):
        master = SCADAMaster(
            alarms=[Alarm("hot", register=100, high=35.0, scale=0.1)]
        )
        findings = master.poll(1.0, {100: 400})
        assert findings == ["alarm:hot"]
        assert master.detected
        assert master.first_detection_time == 1.0

    def test_alarm_quiet_in_range(self):
        master = SCADAMaster(
            alarms=[Alarm("hot", register=100, high=35.0, scale=0.1)]
        )
        assert master.poll(1.0, {100: 250}) == []
        assert not master.detected

    def test_low_alarm(self):
        master = SCADAMaster(alarms=[Alarm("lo", register=5, low=10.0)])
        assert master.poll(0.0, {5: 3}) == ["alarm:lo"]

    def test_spoof_watch_detects_frozen_register(self):
        master = SCADAMaster(spoof_window=4)
        master.watch(100)
        for t in range(4):
            master.poll(float(t), {100: 250})
        assert master.detected
        assert any("frozen" in label for _, label in master.findings)

    def test_first_detection_time_is_earliest(self):
        master = SCADAMaster(
            alarms=[Alarm("hot", register=1, high=10.0)]
        )
        master.poll(5.0, {1: 50})
        master.poll(6.0, {1: 50})
        assert master.first_detection_time == 5.0

    def test_poll_log_accumulates(self):
        master = SCADAMaster(alarms=[Alarm("a", register=1, high=10.0)])
        master.poll(0.0, {1: 1})
        master.poll(1.0, {1: 2})
        assert len(master.poll_log) == 2
