"""The SAN structure-of-arrays batch engine.

Determinism contract under test:

* ``batch_size=1`` (and single-lane engine batches) are **bit-exact**
  against the scalar engine from the same seeds.
* Wider batches are **distribution-identical** — the same draws are
  consumed in batched order, so statistics agree but individual runs
  need not.
"""

import math

import numpy as np
import pytest

from repro.san.batched import PlaceThreshold, SANBatchEngine, simulate_batch
from repro.san.model import SANModel, simple_case
from repro.san.simulator import SANSimulator
from repro.stats.distributions import Exponential
from repro.telemetry import Telemetry
from repro.telemetry.report import render_snapshot


def pipeline_model(stages: int = 3) -> SANModel:
    """A lockstep pipeline whose stages branch 60/40 between advancing
    and dropping the token — the final marking is genuinely random."""
    model = SANModel("pipe")
    for i in range(stages):
        model.add_timed_activity(
            f"a{i}",
            distribution=Exponential(1.0),
            input_places={f"s{i}": 1},
            cases=[
                simple_case({f"s{i + 1}": 1}, probability=0.6, label="go"),
                simple_case({"dropped": 1}, probability=0.4, label="drop"),
            ],
        )
    model.set_initial("s0", 1)
    return model


def runs_equal(a, b) -> bool:
    if a.final_marking.as_dict() != b.final_marking.as_dict():
        return False
    if a.end_time != b.end_time:
        return False
    if not (
        a.stop_time == b.stop_time
        or (math.isnan(a.stop_time) and math.isnan(b.stop_time))
    ):
        return False
    return a.completions == b.completions


class TestBitExactness:
    def test_batch_size_one_matches_scalar_runner_path(self):
        sim = SANSimulator(pipeline_model())
        scalar = sim.batch(50.0, 7, rng=123)
        batched = sim.batch(50.0, 7, rng=123, batch_size=1)
        assert len(batched) == len(scalar) == 7
        for a, b in zip(scalar, batched):
            assert runs_equal(a, b)

    def test_single_lane_engine_matches_simulate(self):
        model = pipeline_model()
        engine = SANBatchEngine(model)
        assert engine.vectorizable, engine.fallback_reason
        for seed in range(10):
            lane = engine.run(50.0, 1, np.random.default_rng(seed))[0]
            scalar = SANSimulator(model).simulate(
                50.0, np.random.default_rng(seed)
            )
            assert runs_equal(lane, scalar)

    def test_single_lane_stop_time_matches(self):
        """nan/finite stop times agree lane-for-lane at B=1."""
        model = pipeline_model()
        stop = PlaceThreshold("s2", 1)
        engine = SANBatchEngine(model)
        saw_hit = saw_miss = False
        for seed in range(20):
            lane = engine.run(
                50.0, 1, np.random.default_rng(seed), stop=stop
            )[0]
            scalar = SANSimulator(model).simulate(
                50.0, np.random.default_rng(seed), stop=stop
            )
            assert runs_equal(lane, scalar)
            if math.isnan(lane.stop_time):
                saw_miss = True
            else:
                saw_hit = True
        assert saw_hit and saw_miss


class TestEdgeCases:
    def test_all_lanes_stop_at_time_zero(self):
        """A predicate already true at the initial marking retires every
        lane before any draw — scalar semantics, batched."""
        model = pipeline_model()
        runs = SANBatchEngine(model).run(
            50.0, 5, np.random.default_rng(0), stop=PlaceThreshold("s0", 1)
        )
        assert len(runs) == 5
        for run in runs:
            assert run.stop_time == 0.0
            assert run.end_time == 0.0
            assert run.completions == []
            assert run.final_marking.as_dict() == {"s0": 1}

    def test_ragged_final_batch(self):
        """replications % batch_size != 0 — the tail unit is smaller but
        every replication still runs, deterministically."""
        sim = SANSimulator(pipeline_model())
        first = sim.batch(50.0, 5, rng=7, batch_size=2)
        again = sim.batch(50.0, 5, rng=7, batch_size=2)
        assert len(first) == 5
        for a, b in zip(first, again):
            assert runs_equal(a, b)

    def test_batch_size_larger_than_replications(self):
        sim = SANSimulator(pipeline_model())
        runs = sim.batch(50.0, 3, rng=7, batch_size=64)
        assert len(runs) == 3

    def test_module_level_helper(self):
        runs = simulate_batch(
            pipeline_model(), 50.0, 4, np.random.default_rng(3)
        )
        assert len(runs) == 4


class TestDistributionalIdentity:
    def test_terminal_place_distribution_matches_scalar(self):
        """P(token reaches s3) is 0.6^3; batched and scalar estimates
        agree within sampling error at a fixed seed."""
        model = pipeline_model()
        n = 800
        sim = SANSimulator(model)
        scalar = sim.batch(50.0, n, rng=99)
        batched = sim.batch(50.0, n, rng=99, batch_size=n)
        p_scalar = sum(
            r.final_marking.as_dict().get("s3", 0) for r in scalar
        ) / n
        p_batched = sum(
            r.final_marking.as_dict().get("s3", 0) for r in batched
        ) / n
        p = 0.6 ** 3
        bound = 4.0 * math.sqrt(p * (1 - p) / n)
        assert abs(p_scalar - p) < bound
        assert abs(p_batched - p) < bound
        assert abs(p_scalar - p_batched) < 2 * bound

    def test_mean_end_time_matches_scalar(self):
        model = pipeline_model()
        n = 800
        sim = SANSimulator(model)
        scalar = np.mean([r.end_time for r in sim.batch(50.0, n, rng=5)])
        batched = np.mean(
            [r.end_time for r in sim.batch(50.0, n, rng=5, batch_size=n)]
        )
        assert abs(scalar - batched) < 0.25


class TestValidation:
    def test_replications_must_be_integer(self):
        sim = SANSimulator(pipeline_model())
        with pytest.raises(
            TypeError, match=r"replications must be an integer, got 2\.5"
        ):
            sim.batch(50.0, 2.5)
        with pytest.raises(
            TypeError, match=r"replications must be an integer, got True"
        ):
            sim.batch(50.0, True)

    def test_replications_must_be_positive(self):
        sim = SANSimulator(pipeline_model())
        with pytest.raises(
            ValueError, match=r"replications must be >= 1, got 0"
        ):
            sim.batch(50.0, 0)

    def test_batch_size_must_be_integer(self):
        sim = SANSimulator(pipeline_model())
        with pytest.raises(
            TypeError, match=r"batch_size must be an integer, got 2\.5"
        ):
            sim.batch(50.0, 4, batch_size=2.5)
        with pytest.raises(
            TypeError, match=r"batch_size must be an integer, got True"
        ):
            sim.batch(50.0, 4, batch_size=True)

    def test_batch_size_must_be_positive(self):
        sim = SANSimulator(pipeline_model())
        with pytest.raises(
            ValueError, match=r"batch_size must be >= 1, got 0"
        ):
            sim.batch(50.0, 4, batch_size=0)

    def test_engine_rejects_empty_batch(self):
        with pytest.raises(ValueError, match=r"size must be >= 1, got 0"):
            SANBatchEngine(pipeline_model()).run(
                50.0, 0, np.random.default_rng(0)
            )


class TestPlaceThreshold:
    def test_rejects_non_positive_threshold(self):
        with pytest.raises(ValueError, match=r"min_tokens must be >= 1"):
            PlaceThreshold("s0", 0)

    def test_scalar_and_batch_agree(self):
        stop = PlaceThreshold("s1", 2)
        index = {"s0": 0, "s1": 1}
        markings = np.array([[0, 2], [3, 1], [0, 5]])
        mask = stop.batch_mask(markings, index)
        assert mask.tolist() == [True, False, True]

    def test_unknown_place_never_stops(self):
        stop = PlaceThreshold("missing")
        mask = stop.batch_mask(np.ones((4, 2), dtype=np.int64), {"s0": 0})
        assert not mask.any()


class TestTelemetry:
    def test_batch_counters_and_headline(self):
        sim = SANSimulator(pipeline_model())
        telemetry = Telemetry()
        with telemetry.activate():
            sim.batch(50.0, 64, rng=1, batch_size=32)
        snapshot = telemetry.snapshot()
        assert snapshot.counter("batch.batches") == 2
        assert snapshot.counter("batch.lanes") == 64
        assert snapshot.counter("batch.lane_retirements") == 64
        assert snapshot.counter("batch.steps") > 0
        report = render_snapshot(snapshot)
        assert "batch: 64 lanes in 2 batches" in report
        assert "lane utilization" in report
