"""Per-rule unit tests for the static-analysis pass.

Each rule gets a positive fixture (the defect fires), a negative
fixture (the compliant idiom stays clean) and — for the python rules —
a suppressed fixture showing the inline ``# repro: allow[...]``
contract, all on small inline sources through
:func:`repro.analysis.analyze_source`.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis import all_rules, analyze_source, get_rule


def rules_of(report):
    return [finding.rule for finding in report.findings]


def analyze(source: str, **kwargs):
    return analyze_source(textwrap.dedent(source), **kwargs)


class TestRegistry:
    def test_all_rule_packs_registered(self):
        ids = {rule.id for rule in all_rules()}
        assert {
            "DET001", "DET002", "DET003", "DET004",
            "SEED001", "SEED002", "RACE001", "RACE002",
            "PICKLE001", "SPEC001", "SPEC002", "SPEC003", "SPEC004",
            "PARSE001",
        } <= ids

    def test_rule_lookup_and_kinds(self):
        assert get_rule("DET001").kind == "python"
        assert get_rule("SPEC003").kind == "spec"
        with pytest.raises(KeyError):
            get_rule("NOPE999")

    def test_duplicate_registration_rejected(self):
        from repro.analysis import rule

        with pytest.raises(ValueError, match="already registered"):
            rule("DET001", "dup")(lambda ctx: [])


class TestDetRules:
    def test_det001_unseeded_default_rng(self):
        report = analyze(
            """
            import numpy as np
            rng = np.random.default_rng()
            """
        )
        assert rules_of(report) == ["DET001"]

    def test_det001_explicit_none_seed(self):
        report = analyze(
            """
            import numpy as np
            rng = np.random.default_rng(None)
            other = np.random.default_rng(seed=None)
            """
        )
        assert rules_of(report) == ["DET001", "DET001"]

    def test_det001_unseeded_bit_generator(self):
        report = analyze(
            """
            from numpy.random import Generator, PCG64
            rng = Generator(PCG64())
            """
        )
        assert rules_of(report) == ["DET001"]

    def test_det001_seeded_is_clean(self):
        report = analyze(
            """
            import numpy as np
            a = np.random.default_rng(7)
            b = np.random.default_rng(seed_seq)
            c = np.random.Generator(np.random.PCG64(123))
            """
        )
        assert report.findings == []

    def test_det001_unimported_local_name_is_clean(self):
        # A local helper that happens to be called default_rng must not
        # trip the rule — name resolution goes through the import map.
        report = analyze(
            """
            def default_rng():
                return 42
            value = default_rng()
            """
        )
        assert report.findings == []

    def test_det002_stdlib_random(self):
        report = analyze(
            """
            import random
            x = random.random()
            y = random.choice([1, 2])
            """
        )
        assert rules_of(report) == ["DET002", "DET002"]

    def test_det003_numpy_legacy_global_state(self):
        report = analyze(
            """
            import numpy as np
            np.random.seed(0)
            x = np.random.rand(3)
            """
        )
        assert rules_of(report) == ["DET003", "DET003"]

    def test_det004_wall_clock_and_entropy(self):
        report = analyze(
            """
            import os
            import time
            import uuid
            from datetime import datetime
            a = time.time()
            b = datetime.now()
            c = uuid.uuid4()
            d = os.urandom(8)
            """
        )
        assert rules_of(report) == ["DET004"] * 4

    def test_det004_monotonic_is_clean(self):
        report = analyze(
            """
            import time
            start = time.monotonic()
            lap = time.perf_counter()
            """
        )
        assert report.findings == []

    def test_det004_suppressed_with_reason(self):
        report = analyze(
            """
            import time
            stamp = time.time()  # repro: allow[DET004] display only
            """
        )
        assert report.findings == []
        assert len(report.suppressed) == 1
        finding, reason = report.suppressed[0]
        assert finding.rule == "DET004"
        assert reason == "display only"

    def test_reasonless_allow_is_inert(self):
        report = analyze(
            """
            import time
            stamp = time.time()  # repro: allow[DET004]
            """
        )
        assert rules_of(report) == ["DET004"]

    def test_allow_on_line_above(self):
        report = analyze(
            """
            import time
            # repro: allow[DET004] wall-clock for the report header
            stamp = time.time()
            """
        )
        assert report.findings == []

    def test_allow_only_silences_named_rule(self):
        report = analyze(
            """
            import time
            import numpy as np
            rng = np.random.default_rng()  # repro: allow[DET004] wrong id
            """
        )
        assert rules_of(report) == ["DET001"]


class TestSeedRules:
    def test_seed001_literal_seed_despite_parameter(self):
        report = analyze(
            """
            import numpy as np
            def simulate(horizon, rng):
                local = np.random.default_rng(1234)
                return local.random()
            """
        )
        assert rules_of(report) == ["SEED001"]

    def test_seed001_derived_from_parameter_is_clean(self):
        report = analyze(
            """
            import numpy as np
            def simulate(horizon, seed):
                rng = np.random.default_rng(seed)
                return rng.random()
            """
        )
        assert report.findings == []

    def test_seed002_generator_reuse_across_replications(self):
        report = analyze(
            """
            def run(body, replications, rng):
                return [body(rng) for _ in range(replications)]
            """
        )
        assert rules_of(report) == ["SEED002"]

    def test_seed002_for_loop_variant(self):
        report = analyze(
            """
            def run(body, n_reps, rng):
                out = []
                for _ in range(n_reps):
                    out.append(body(rng))
                return out
            """
        )
        assert rules_of(report) == ["SEED002"]

    def test_seed002_per_replication_spawn_is_clean(self):
        report = analyze(
            """
            import numpy as np
            def run(body, replications, seed_seq):
                out = []
                for child in seed_seq.spawn(replications):
                    rng = np.random.default_rng(child)
                    out.append(body(rng))
                return out
            """
        )
        assert report.findings == []

    def test_seed002_non_replication_loop_is_clean(self):
        report = analyze(
            """
            def run(body, n_points, rng):
                return [body(rng) for _ in range(n_points)]
            """
        )
        assert report.findings == []


class TestRaceRules:
    def test_race001_subscript_write_to_module_global(self):
        report = analyze(
            """
            CACHE = {}
            def remember(key, value):
                CACHE[key] = value
            """
        )
        assert rules_of(report) == ["RACE001"]

    def test_race001_mutator_method_and_rebind(self):
        report = analyze(
            """
            RESULTS = []
            def collect(item):
                RESULTS.append(item)
            def reset():
                global RESULTS
                RESULTS = []
            """
        )
        assert rules_of(report) == ["RACE001", "RACE001"]

    def test_race001_lock_guarded_is_clean(self):
        report = analyze(
            """
            import threading
            CACHE = {}
            _lock = threading.Lock()
            def remember(key, value):
                with _lock:
                    CACHE[key] = value
            """
        )
        assert report.findings == []

    def test_race001_local_shadow_is_clean(self):
        report = analyze(
            """
            CACHE = {}
            def isolated():
                CACHE = {}
                CACHE["x"] = 1
                return CACHE
            """
        )
        assert report.findings == []

    def test_race002_callback_attribute_write(self):
        report = analyze(
            """
            def submit(handle):
                def on_done(index, outcome):
                    handle.last = outcome
                return on_done
            """
        )
        assert rules_of(report) == ["RACE002"]

    def test_race002_locked_callback_is_clean(self):
        report = analyze(
            """
            def submit(handle, lock):
                def on_done(index, outcome):
                    with lock:
                        handle.last = outcome
                return on_done
            """
        )
        assert report.findings == []

    def test_race002_write_to_own_local_is_clean(self):
        report = analyze(
            """
            def submit(handle):
                def on_done(index, outcome):
                    box = make_box()
                    box.value = outcome
                return on_done
            """
        )
        assert report.findings == []


class TestPickleRule:
    def test_pickle001_lambda_to_backend(self):
        report = analyze(
            """
            def launch(runner, items):
                return runner.map(lambda x: x + 1, items)
            """
        )
        assert rules_of(report) == ["PICKLE001"]

    def test_pickle001_local_def_to_backend(self):
        report = analyze(
            """
            def launch(pool, items):
                def work(x):
                    return x + 1
                return pool.submit(work, items)
            """
        )
        assert rules_of(report) == ["PICKLE001"]

    def test_pickle001_module_level_function_is_clean(self):
        report = analyze(
            """
            def work(x):
                return x + 1
            def launch(runner, items):
                return runner.map(work, items)
            """
        )
        assert report.findings == []

    def test_pickle001_non_backend_receiver_is_clean(self):
        report = analyze(
            """
            def transform(values):
                return list(map(lambda x: x + 1, values))
            """
        )
        assert report.findings == []


class TestParseRule:
    def test_syntax_error_yields_parse001(self):
        report = analyze("def broken(:\n    pass\n")
        assert rules_of(report) == ["PARSE001"]
        assert report.findings[0].line == 1


class TestSpecRules:
    def test_spec001_invalid_json(self):
        report = analyze_source(
            '{"name": "x", "topology": ', path="bad.json", kind="spec"
        )
        assert rules_of(report) == ["SPEC001"]

    def test_spec002_unknown_field(self):
        report = analyze_source(
            '{"name": "x", "topology": "scope_cooling", "bogus": 1}',
            path="c.json",
            kind="spec",
        )
        assert "SPEC002" in rules_of(report)
        assert any("bogus" in f.message for f in report.findings)

    def test_spec003_unregistered_names(self):
        report = analyze_source(
            '{"name": "x", "topology": "nope", "threat": "also-nope",'
            ' "kinds": ["not_a_kind"]}',
            path="c.json",
            kind="spec",
        )
        assert rules_of(report).count("SPEC003") == 3

    def test_spec004_type_and_range(self):
        report = analyze_source(
            '{"name": "x", "replications": 0, "horizon": -1,'
            ' "design_kind": "weird", "two_level": "yes"}',
            path="c.json",
            kind="spec",
        )
        assert rules_of(report).count("SPEC004") == 4

    def test_spec004_missing_name(self):
        report = analyze_source(
            '{"topology": "scope_cooling"}', path="c.json", kind="spec"
        )
        assert any(
            f.rule == "SPEC004" and "name" in f.message
            for f in report.findings
        )

    def test_spec004_response_delay_requires_response(self):
        report = analyze_source(
            '{"name": "x", "response_delay_rate": 0.1}',
            path="c.json",
            kind="spec",
        )
        assert any(
            "response_enabled" in f.message for f in report.findings
        )

    def test_valid_scenario_is_clean(self):
        report = analyze_source(
            '{"name": "ok", "topology": "scope_cooling",'
            ' "threat": "stuxnet_like", "catalog": "default",'
            ' "plant": "cooling", "kinds": ["operating_system"],'
            ' "design_kind": "full", "replications": 2, "horizon": 20.0,'
            ' "response_enabled": true, "response_delay_rate": 0.2}',
            path="c.json",
            kind="spec",
        )
        assert report.findings == []

    def test_key_line_recovery(self):
        text = (
            '{\n  "name": "x",\n  "topology": "nope"\n}\n'
        )
        report = analyze_source(text, path="c.json", kind="spec")
        spec3 = [f for f in report.findings if f.rule == "SPEC003"]
        assert spec3 and spec3[0].line == 3
