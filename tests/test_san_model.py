"""Tests for SAN model elements."""

import pytest

from repro.san.model import (
    Case,
    InputGate,
    SANMarking,
    SANModel,
    simple_case,
)
from repro.stats.distributions import Deterministic, Exponential


class TestSANMarking:
    def test_unknown_place_reads_zero(self):
        assert SANMarking()["nowhere"] == 0

    def test_set_and_get(self):
        m = SANMarking()
        m["p"] = 3
        assert m["p"] == 3

    def test_negative_set_rejected(self):
        m = SANMarking()
        with pytest.raises(ValueError):
            m["p"] = -1

    def test_add_delta(self):
        m = SANMarking({"p": 2})
        m.add("p", -1)
        assert m["p"] == 1

    def test_add_below_zero_rejected(self):
        m = SANMarking({"p": 1})
        with pytest.raises(ValueError):
            m.add("p", -2)

    def test_copy_is_independent(self):
        m = SANMarking({"p": 1})
        c = m.copy()
        c["p"] = 5
        assert m["p"] == 1

    def test_freeze_ignores_zeros(self):
        m = SANMarking({"p": 1, "q": 0})
        assert m.freeze() == (("p", 1),)

    def test_equality_via_freeze(self):
        assert SANMarking({"p": 1}) == SANMarking({"p": 1, "q": 0})

    def test_direct_hash_forbidden(self):
        with pytest.raises(TypeError):
            hash(SANMarking())


class TestActivities:
    def test_enabling_requires_input_tokens(self):
        model = SANModel()
        model.set_initial("src", 0)
        act = model.add_timed_activity(
            "a", Exponential(1.0), input_places={"src": 1},
            output_places={"dst": 1},
        )
        assert not act.is_enabled(model.initial_marking())

    def test_enabling_respects_gates(self):
        model = SANModel()
        model.set_initial("src", 1)
        gate = InputGate("g", predicate=lambda m: m["flag"] > 0,
                         function=lambda m: None)
        act = model.add_timed_activity(
            "a", Exponential(1.0), input_places={"src": 1},
            input_gates=[gate], output_places={"dst": 1},
        )
        marking = model.initial_marking()
        assert not act.is_enabled(marking)
        marking["flag"] = 1
        assert act.is_enabled(marking)

    def test_completion_moves_tokens(self):
        model = SANModel()
        model.set_initial("src", 2)
        act = model.add_timed_activity(
            "a", Exponential(1.0), input_places={"src": 1},
            output_places={"dst": 3},
        )
        marking = model.initial_marking()
        act.complete(marking, 0)
        assert marking["src"] == 1
        assert marking["dst"] == 3

    def test_case_probabilities_must_sum_to_one(self):
        model = SANModel()
        model.set_initial("src", 1)
        act = model.add_timed_activity(
            "a",
            Exponential(1.0),
            input_places={"src": 1},
            cases=[
                simple_case({"x": 1}, probability=0.5),
                simple_case({"y": 1}, probability=0.3),
            ],
        )
        with pytest.raises(ValueError):
            act.case_probabilities(model.initial_marking())

    def test_marking_dependent_case_probability(self):
        model = SANModel()
        model.set_initial("src", 1)
        act = model.add_timed_activity(
            "a",
            Exponential(1.0),
            input_places={"src": 1},
            cases=[
                simple_case({"x": 1},
                            probability=lambda m: 0.2 + 0.1 * m["boost"]),
                simple_case({"y": 1},
                            probability=lambda m: 0.8 - 0.1 * m["boost"]),
            ],
        )
        marking = model.initial_marking()
        marking["boost"] = 3
        assert act.case_probabilities(marking) == pytest.approx([0.5, 0.5])

    def test_marking_dependent_distribution(self):
        model = SANModel()
        model.set_initial("src", 1)
        act = model.add_timed_activity(
            "a",
            lambda m: Deterministic(float(m["src"])),
            input_places={"src": 1},
            output_places={"dst": 1},
        )
        dist = act.distribution_in(model.initial_marking())
        assert dist.value == 1.0

    def test_out_of_range_case_probability_rejected(self):
        case = Case(probability=1.5)
        with pytest.raises(ValueError):
            case.probability_in(SANMarking())


class TestModelStructure:
    def test_duplicate_activity_rejected(self):
        model = SANModel()
        model.add_timed_activity("a", Exponential(1.0))
        with pytest.raises(ValueError):
            model.add_timed_activity("a", Exponential(1.0))

    def test_cases_and_output_places_mutually_exclusive(self):
        model = SANModel()
        with pytest.raises(ValueError):
            model.add_timed_activity(
                "a",
                Exponential(1.0),
                cases=[simple_case({"x": 1})],
                output_places={"y": 1},
            )

    def test_places_enumerated(self):
        model = SANModel()
        model.set_initial("start", 1)
        model.add_timed_activity(
            "a", Exponential(1.0), input_places={"start": 1},
            output_places={"end": 1},
        )
        assert set(model.places()) == {"start", "end"}

    def test_negative_initial_rejected(self):
        with pytest.raises(ValueError):
            SANModel().set_initial("p", -1)

    def test_instantaneous_weight_validation(self):
        model = SANModel()
        with pytest.raises(ValueError):
            model.add_instantaneous_activity("i", weight=-1.0)

    def test_activity_lookup(self):
        model = SANModel()
        model.add_timed_activity("a", Exponential(1.0))
        assert model.activity("a").name == "a"
        with pytest.raises(KeyError):
            model.activity("ghost")
