"""Additional property-based tests: fractional designs, SAN markings,
survival curves and cut-set structure."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacktree.cutsets import minimal_cut_sets
from repro.attacktree.nodes import AndNode, LeafAttack, OrNode
from repro.attacktree.tree import AttackTree
from repro.core.indicators import TimeToAttack
from repro.doe.fractional import fractional_factorial
from repro.san.model import SANMarking
from repro.stats.fitting import fit_exponential
from tests.test_core_indicators import outcome


# ---------------------------------------------------------- fractional DoE
@given(st.integers(min_value=3, max_value=8))
@settings(max_examples=15, deadline=None)
def test_half_fraction_always_orthogonal_balanced(k):
    names = [f"f{i}" for i in range(k)]
    letters = "ABCDEFGHJKLMNPQRSTUVWXYZ"
    generator = f"{letters[k - 1]}={letters[: k - 1]}"
    design, info = fractional_factorial(names, [generator])
    assert design.n_runs == 2 ** (k - 1)
    assert design.is_orthogonal()
    assert design.is_balanced()
    assert info.resolution == k  # single full-word generator


# ---------------------------------------------------------------- markings
marking_dicts = st.dictionaries(
    st.sampled_from(["a", "b", "c", "d"]),
    st.integers(min_value=0, max_value=20),
    max_size=4,
)


@given(marking_dicts)
def test_san_marking_freeze_roundtrip(counts):
    marking = SANMarking(counts)
    rebuilt = SANMarking(dict(marking.freeze()))
    assert rebuilt == marking


@given(marking_dicts, st.sampled_from(["a", "b", "c", "d"]),
       st.integers(min_value=0, max_value=5))
def test_san_marking_add_then_subtract_is_identity(counts, place, delta):
    marking = SANMarking(counts)
    before = marking.freeze()
    marking.add(place, delta)
    marking.add(place, -delta)
    assert marking.freeze() == before


# ----------------------------------------------------------------- cutsets
@given(
    st.lists(st.floats(min_value=0.1, max_value=0.9), min_size=2, max_size=5),
    st.lists(st.floats(min_value=0.1, max_value=0.9), min_size=2, max_size=5),
)
@settings(max_examples=30)
def test_cut_sets_are_antichains(ps_left, ps_right):
    left = AndNode(
        "left", [LeafAttack(f"l{i}", probability=p)
                 for i, p in enumerate(ps_left)]
    )
    right = AndNode(
        "right", [LeafAttack(f"r{i}", probability=p)
                  for i, p in enumerate(ps_right)]
    )
    tree = AttackTree(OrNode("root", [left, right]))
    cut_sets = [frozenset(cs) for cs in minimal_cut_sets(tree)]
    # No cut set contains another (minimality), and all are nonempty.
    for a in cut_sets:
        assert a
        for b in cut_sets:
            if a is not b:
                assert not a < b


# ---------------------------------------------------------------- survival
@given(
    st.lists(st.floats(min_value=0.1, max_value=99.0), min_size=1,
             max_size=30),
    st.integers(min_value=0, max_value=10),
)
def test_survival_curve_properties(times, n_censored):
    outcomes = [outcome(float(t)) for t in times]
    outcomes += [outcome()] * n_censored
    sample = TimeToAttack.from_outcomes(outcomes)
    curve = sample.survival_curve()
    values = [s for __, s in curve]
    xs = [t for t, __ in curve]
    # Times strictly increasing, survival non-increasing within [0, 1].
    assert xs == sorted(set(xs))
    assert all(0.0 - 1e-12 <= v <= 1.0 + 1e-12 for v in values)
    assert all(b <= a + 1e-12 for a, b in zip(values, values[1:]))
    # Uncensored sample ends at survival 0.
    if n_censored == 0:
        assert values[-1] == pytest.approx(0.0, abs=1e-12)
    # Under type-I censoring S(horizon) == censored fraction.
    assert sample.survival_at(sample.horizon) == pytest.approx(
        n_censored / sample.n_total
    )


# ----------------------------------------------------------------- fitting
@given(
    st.floats(min_value=0.05, max_value=20.0),
    st.integers(min_value=50, max_value=400),
)
@settings(max_examples=20, deadline=None)
def test_exponential_fit_is_consistent(rate, n):
    rng = np.random.default_rng(1234)
    samples = rng.exponential(1.0 / rate, size=n)
    fit = fit_exponential(samples)
    # MLE rate equals 1/sample-mean by construction.
    assert fit.distribution.rate == pytest.approx(1.0 / samples.mean())
    assert 0.0 <= fit.ks_statistic <= 1.0
