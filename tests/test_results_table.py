"""Unit and property tests for the columnar results subsystem."""

import json
import math
import os
import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.results import (
    RESPONSE_COLUMNS,
    RecordTable,
    ResultCache,
    canonical_json,
    content_key,
    summarize_records,
)


def sample_records():
    return [
        {
            "operating_system": "win_modern",
            "run": 0,
            "success": 1.0,
            "tta": 4.0,
            "ttsf": 2.0,
            "final_ratio": 0.5,
        },
        {
            "operating_system": "linux_hardened",
            "run": 1,
            "success": 0.0,
            "tta": 8.0,
            "ttsf": 6.0,
            "final_ratio": 0.25,
        },
    ]


class TestRecordTableBasics:
    def test_round_trip_preserves_values_and_types(self):
        records = sample_records()
        table = RecordTable.from_dicts(records)
        back = table.to_dicts()
        assert back == records
        assert type(back[0]["run"]) is int
        assert type(back[0]["success"]) is float
        assert type(back[0]["operating_system"]) is str

    def test_column_dtypes(self):
        table = RecordTable.from_dicts(sample_records())
        assert table.column("run").dtype == np.int64
        assert table.column("tta").dtype == np.float64
        assert table.column("operating_system").dtype == object

    def test_mixed_type_column_round_trips_via_object(self):
        records = [{"x": 1}, {"x": 2.5}]
        back = RecordTable.from_dicts(records).to_dicts()
        assert back == records
        assert type(back[0]["x"]) is int and type(back[1]["x"]) is float

    def test_empty(self):
        table = RecordTable.from_dicts([])
        assert len(table) == 0 and not table
        assert table.to_dicts() == []

    def test_mismatched_keys_rejected(self):
        with pytest.raises(ValueError, match="keys"):
            RecordTable.from_dicts([{"a": 1}, {"b": 2}])

    def test_ragged_columns_rejected(self):
        with pytest.raises(ValueError, match="rows"):
            RecordTable({"a": np.zeros(2), "b": np.zeros(3)})

    def test_non_1d_rejected(self):
        with pytest.raises(ValueError, match="1-D"):
            RecordTable({"a": np.zeros((2, 2))})

    def test_equality(self):
        a = RecordTable.from_dicts(sample_records())
        b = RecordTable.from_dicts(sample_records())
        assert a == b
        assert a != b.filter(np.array([True, False]))


class TestRelationalOps:
    def test_concat(self):
        table = RecordTable.from_dicts(sample_records())
        doubled = RecordTable.concat([table, table])
        assert len(doubled) == 4
        assert doubled.to_dicts() == sample_records() + sample_records()

    def test_concat_schema_mismatch(self):
        a = RecordTable.from_dicts([{"x": 1.0}])
        b = RecordTable.from_dicts([{"y": 1.0}])
        with pytest.raises(ValueError, match="columns"):
            RecordTable.concat([a, b])

    def test_filter_and_where(self):
        table = RecordTable.from_dicts(sample_records())
        wins = table.where("operating_system", "win_modern")
        assert len(wins) == 1
        assert wins.row(0)["run"] == 0

    def test_groupby_first_appearance_order(self):
        records = [
            {"scenario": "b", "v": 1.0},
            {"scenario": "a", "v": 2.0},
            {"scenario": "b", "v": 3.0},
        ]
        groups = list(RecordTable.from_dicts(records).groupby("scenario"))
        assert [name for name, _ in groups] == ["b", "a"]
        assert len(groups[0][1]) == 2

    def test_means(self):
        table = RecordTable.from_dicts(sample_records())
        means = table.means(("success", "tta"))
        assert means == {"success": 0.5, "tta": 6.0}


class TestSummarize:
    def test_known_values(self):
        summary = summarize_records(
            RecordTable.from_dicts(sample_records())
        )
        assert summary == {
            "psa": 0.5,
            "tta_mean": 6.0,
            "ttsf_mean": 4.0,
            "final_ratio_mean": 0.375,
        }

    def test_accepts_dict_records(self):
        assert summarize_records(sample_records())["psa"] == 0.5

    def test_empty_all_nan(self):
        summary = summarize_records([])
        assert all(math.isnan(v) for v in summary.values())


# Exact-value strategies: finite floats, bounded ints, and identifier-ish
# strings — the value space of long-format measurement records.
_floats = st.floats(allow_nan=False, allow_infinity=False, width=64)
_ints = st.integers(min_value=-(2 ** 53), max_value=2 ** 53)
_strings = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")),
    max_size=12,
)


@st.composite
def record_lists(draw):
    n_cols = draw(st.integers(min_value=1, max_value=5))
    names = [f"c{i}" for i in range(n_cols)]
    kinds = [
        draw(st.sampled_from(["float", "int", "str", "mixed"]))
        for _ in names
    ]
    n_rows = draw(st.integers(min_value=0, max_value=8))
    records = []
    for _ in range(n_rows):
        record = {}
        for name, kind in zip(names, kinds):
            if kind == "float":
                record[name] = draw(_floats)
            elif kind == "int":
                record[name] = draw(_ints)
            elif kind == "str":
                record[name] = draw(_strings)
            else:
                record[name] = draw(
                    st.one_of(_floats, _ints, _strings)
                )
        records.append(record)
    return records


class TestRoundTripProperties:
    @settings(max_examples=60, deadline=None)
    @given(record_lists())
    def test_dict_round_trip_is_exact(self, records):
        table = RecordTable.from_dicts(records)
        assert table.to_dicts() == records
        assert [type(v) for r in records for v in r.values()] == [
            type(v) for r in table.to_dicts() for v in r.values()
        ]

    @settings(max_examples=30, deadline=None)
    @given(record_lists())
    def test_pickle_round_trip(self, records):
        table = RecordTable.from_dicts(records)
        assert pickle.loads(pickle.dumps(table)) == table

    @settings(max_examples=30, deadline=None)
    @given(record_lists())
    def test_concat_of_splits_is_identity(self, records):
        table = RecordTable.from_dicts(records)
        n = len(table)
        head = table.filter(np.arange(n) < n // 2)
        tail = table.filter(np.arange(n) >= n // 2)
        assert RecordTable.concat([head, tail]) == table


class TestNpzSerialization:
    def test_round_trip(self, tmp_path):
        table = RecordTable.from_dicts(sample_records())
        path = str(tmp_path / "table.npz")
        table.save_npz(path)
        loaded = RecordTable.load_npz(path)
        assert loaded == table
        assert loaded.to_dicts() == sample_records()

    def test_non_string_object_column_rejected(self, tmp_path):
        table = RecordTable.from_dicts([{"x": (1, 2)}])
        with pytest.raises(TypeError, match="non-string"):
            table.save_npz(str(tmp_path / "bad.npz"))

    def test_empty_round_trip(self, tmp_path):
        path = str(tmp_path / "empty.npz")
        RecordTable.from_dicts([]).save_npz(path)
        assert len(RecordTable.load_npz(path)) == 0


class TestResultCache:
    def test_content_key_is_canonical(self):
        a = content_key({"b": 1, "a": [1, 2]})
        b = content_key({"a": [1, 2], "b": 1})
        assert a == b
        assert a != content_key({"a": [1, 2], "b": 2})

    def test_canonical_json_rejects_non_json(self):
        with pytest.raises(TypeError):
            canonical_json({"x": object()})

    def test_store_load_round_trip(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        table = RecordTable.from_dicts(sample_records())
        key = content_key({"spec": "s", "seed": 1})
        assert cache.load(key) is None
        assert not cache.contains(key)
        cache.store(key, table, {"summary": {"psa": 0.5}})
        assert cache.contains(key)
        loaded, meta = cache.load(key)
        assert loaded == table
        assert meta == {"summary": {"psa": 0.5}}

    @pytest.mark.parametrize(
        "garbage",
        [
            b"not an npz",
            b"PK\x03\x04truncated-zip-header",
        ],
        ids=["random-bytes", "truncated-zip"],
    )
    def test_corrupt_entry_is_a_miss(self, tmp_path, garbage):
        cache = ResultCache(str(tmp_path))
        table = RecordTable.from_dicts(sample_records())
        key = content_key({"k": 1})
        cache.store(key, table, {"m": 1})
        npz_path = os.path.join(str(tmp_path), f"{key}.npz")
        with open(npz_path, "wb") as handle:
            handle.write(garbage)
        assert cache.load(key) is None

    def test_no_stray_temp_files(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.store(
            content_key({"k": 2}),
            RecordTable.from_dicts(sample_records()),
            {},
        )
        assert not [
            name
            for name in os.listdir(str(tmp_path))
            if name.startswith(".tmp-")
        ]


class TestResponseColumnConstants:
    def test_response_columns_cover_summary_inputs(self):
        assert RESPONSE_COLUMNS == ("success", "tta", "ttsf", "final_ratio")


class TestOutcomeTableConstants:
    def _outcome(self):
        from repro.attacks.campaign import AttackOutcome
        from repro.sim.trace import TraceRecorder

        return AttackOutcome(
            success=True,
            success_time=3.0,
            detection_time=float("nan"),
            compromise_times={"h": 1.0},
            root_times={},
            sabotage_start=float("nan"),
            stage_times={},
            horizon=10.0,
            n_hosts=2,
            trace=TraceRecorder(),
        )

    def test_numeric_constants_take_numeric_dtypes(self):
        from repro.core.measurement import outcome_table

        table = outcome_table(
            [self._outcome()],
            10.0,
            {"run": 3, "weight": 0.5, "level": "a"},
        )
        assert table.column("run").dtype == np.int64
        assert table.column("weight").dtype == np.float64
        assert table.column("level").dtype == object
        assert table.row(0)["weight"] == 0.5
        assert table.row(0)["ttsf"] == 10.0  # censored at the horizon

    def test_float_level_table_serializes(self, tmp_path):
        from repro.core.measurement import outcome_table

        table = outcome_table([self._outcome()], 10.0, {"gain": 1.5})
        path = str(tmp_path / "t.npz")
        table.save_npz(path)  # float levels must not land in object cols
        assert RecordTable.load_npz(path) == table


class TestConcatEmptyIdentity:
    """Schema-less empty tables are identity elements of concat."""

    def test_concat_nothing_is_schema_less_empty(self):
        empty = RecordTable.concat([])
        assert len(empty) == 0
        assert empty.columns == []

    def test_schema_less_empties_are_skipped(self):
        table = RecordTable.from_dicts(sample_records())
        empty = RecordTable.from_dicts([])
        assert RecordTable.concat([empty, table]) == table
        assert RecordTable.concat([table, empty]) == table
        assert RecordTable.concat([empty, table, empty, table]) == (
            RecordTable.concat([table, table])
        )

    def test_all_empty_concat_is_empty(self):
        empty = RecordTable.from_dicts([])
        combined = RecordTable.concat([empty, empty])
        assert len(combined) == 0
        assert combined.columns == []

    def test_zero_row_table_with_schema_still_checked(self):
        table = RecordTable.from_dicts(sample_records())
        wrong = RecordTable({"other": np.array([], dtype=np.float64)})
        with pytest.raises(ValueError, match="cannot concat"):
            RecordTable.concat([wrong, table])

    def test_zero_row_table_with_matching_schema_participates(self):
        table = RecordTable.from_dicts(sample_records())
        zero = table.filter(np.zeros(len(table), dtype=bool))
        assert RecordTable.concat([zero, table]) == table


class TestNaNGrouping:
    """NaN factor levels: where/groupby must reach NaN rows."""

    def _table(self):
        return RecordTable(
            {
                "latency": np.array(
                    [1.0, np.nan, 2.0, np.nan, 1.0], dtype=np.float64
                ),
                "v": np.arange(5, dtype=np.int64),
            }
        )

    def test_where_nan_matches_nan_rows(self):
        sub = self._table().where("latency", float("nan"))
        assert sub.column("v").tolist() == [1, 3]

    def test_groupby_coalesces_nan_into_one_group(self):
        groups = list(self._table().groupby("latency"))
        keys = [k for k, _ in groups]
        assert len(keys) == 3
        assert keys[0] == 1.0
        assert math.isnan(keys[1])
        assert keys[2] == 2.0
        nan_group = groups[1][1]
        assert nan_group.column("v").tolist() == [1, 3]

    def test_groupby_covers_every_row_exactly_once(self):
        table = self._table()
        total = sum(len(g) for _, g in table.groupby("latency"))
        assert total == len(table)

    def test_nan_in_object_column(self):
        table = RecordTable.from_dicts(
            [{"k": "a"}, {"k": float("nan")}, {"k": float("nan")}]
        )
        assert len(table.where("k", float("nan"))) == 2
        assert len(list(table.groupby("k"))) == 2

    def test_nan_against_int_column_matches_nothing(self):
        table = RecordTable({"k": np.array([1, 2], dtype=np.int64)})
        assert len(table.where("k", float("nan"))) == 0


class TestAggregationEdgeCases:
    """The PR's bugfix sweep: mean/filter/npz corner cases, pinned."""

    def test_mean_on_string_column_raises_type_error(self):
        table = RecordTable.from_dicts(sample_records())
        with pytest.raises(TypeError, match="not numeric"):
            table.mean("operating_system")

    def test_mean_on_numeric_object_column(self):
        table = RecordTable.from_dicts(
            [{"level": 1}, {"level": 2.5}, {"level": 2}]
        )
        # Mixed int/float factor levels land in an object column but
        # are still perfectly good numbers.
        if table.column("level").dtype == object:
            assert table.mean("level") == pytest.approx(5.5 / 3)

    def test_filter_zero_length_mask_on_empty_table(self):
        empty = RecordTable(
            {"x": np.array([], dtype=np.float64)}
        )
        out = empty.filter(np.array([], dtype=bool))
        assert len(out) == 0
        assert out.columns == ["x"]

    def test_filter_wrong_shape_mask_rejected(self):
        table = RecordTable.from_dicts(sample_records())
        with pytest.raises(ValueError, match="mask shape"):
            table.filter(np.array([], dtype=bool))
        with pytest.raises(ValueError, match="mask shape"):
            table.filter(np.ones((len(table), 1), dtype=bool))

    def test_npz_round_trip_zero_row_object_column(self, tmp_path):
        table = RecordTable(
            {
                "name": np.empty(0, dtype=object),
                "x": np.array([], dtype=np.float64),
            }
        )
        path = str(tmp_path / "zero.npz")
        table.save_npz(path)
        loaded = RecordTable.load_npz(path)
        assert loaded == table
        assert loaded.column("name").dtype == object
        assert loaded.column("x").dtype == np.float64
