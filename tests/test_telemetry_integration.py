"""Telemetry across the experiment stack: instrumentation + invariants.

Two families of guarantees:

* **Coverage** — cache hits/misses, streaming spills, campaign tick
  elision, dispatch metrics and worker-side spans all surface in the
  snapshot, including across process-pool workers.
* **Non-perturbation** — records and provenance seed material are
  bit-identical with telemetry on vs off on every backend, and the
  merged span/metric structure is deterministic run-to-run.
"""

from __future__ import annotations

import logging

import numpy as np
import pytest

from repro.api import Session
from repro.telemetry import Telemetry

BACKENDS = ["serial", "thread", "process"]


def _tables_equal(left, right) -> bool:
    if left.columns != right.columns:
        return False
    return all(
        np.array_equal(
            np.asarray(left.column(name)), np.asarray(right.column(name))
        )
        for name in left.columns
    )


class TestInstrumentationCoverage:
    def test_process_backend_suite_records_worker_spans(self):
        with Session(
            backend="process", n_workers=2, telemetry=True
        ) as session:
            result = session.run(["smoke", "cooling_stuxnet"], seed=7)
        snapshot = result.telemetry
        paths = snapshot.span_paths()
        assert "session.run/suite.run" in paths
        # Worker-side spans came back as deltas and nested under the
        # coordinator's exec.map cursor.
        assert any("exec.map/exec.chunk" in path for path in paths)
        assert any("scenario.execute" in path for path in paths)
        assert snapshot.counter("exec.dispatches") >= 1
        assert snapshot.counter("campaign.replications") > 0
        assert "exec.chunk_wait_ms" in snapshot.metrics["histograms"]

    def test_report_renders_for_process_backend_run(self):
        with Session(
            backend="process", n_workers=2, telemetry=True
        ) as session:
            result = session.run(["smoke", "cooling_stuxnet"], seed=7)
        text = result.telemetry.render()
        assert "TELEMETRY REPORT" in text
        assert "Phase timings" in text
        assert "exec.chunk" in text
        assert "Metrics" in text

    def test_cache_miss_then_hit_counters(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        with Session(cache_dir=cache_dir, telemetry=True) as session:
            cold = session.run("smoke", seed=3)
        assert cold.telemetry.counter("cache.miss") == 1.0
        assert cold.telemetry.counter("cache.hit") == 0.0
        assert cold.telemetry.counter("cache.stores") == 1.0
        assert cold.telemetry.counter("cache.bytes_written") > 0.0
        with Session(cache_dir=cache_dir, telemetry=True) as session:
            warm = session.run("smoke", seed=3)
        assert warm.telemetry.counter("cache.hit") == 1.0
        assert warm.telemetry.counter("cache.miss") == 0.0
        assert warm.telemetry.counter("cache.bytes_read") > 0.0
        assert _tables_equal(cold.table, warm.table)

    def test_streaming_spill_metrics(self):
        with Session(telemetry=True) as session:
            result = session.campaign(
                "smoke", 12, seed=5, max_records_in_ram=4
            )
        snapshot = result.telemetry
        assert snapshot.counter("streaming.spills") >= 1.0
        assert snapshot.counter("streaming.bytes_spilled") > 0.0
        maxima = snapshot.metrics["gauge_maxima"]
        assert maxima.get("streaming.peak_resident_rows", 0.0) <= 4.0

    def test_campaign_elision_counters(self):
        with Session(telemetry=True) as session:
            result = session.campaign("cooling_stuxnet", 5, seed=9)
        snapshot = result.telemetry
        assert snapshot.counter("campaign.replications") == 5.0
        # Tick elision is the default: elided ticks dominate executed.
        assert snapshot.counter("campaign.ticks_elided") > 0.0

    def test_profile_mode_produces_hotspots(self):
        with Session(telemetry="cprofile") as session:
            result = session.run("smoke", seed=1)
        hotspots = result.telemetry.hotspots
        assert hotspots.get("rows")

    def test_dispatch_debug_log_fires_without_telemetry(self, caplog):
        with caplog.at_level(logging.DEBUG, logger="repro.exec.runner"):
            with Session() as session:
                session.run("smoke", seed=1)
        assert any(
            "dispatching" in record.message for record in caplog.records
        )

    def test_cache_logs_hit_and_miss(self, tmp_path, caplog):
        cache_dir = str(tmp_path / "cache")
        with caplog.at_level(logging.DEBUG, logger="repro.scenarios.suite"):
            with Session(cache_dir=cache_dir) as session:
                session.run("smoke", seed=2)
                session.run("smoke", seed=2)
        messages = [record.message for record in caplog.records]
        assert any("cache miss" in message for message in messages)
        assert any("cache hit" in message for message in messages)


class TestNonPerturbation:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_records_and_seed_material_identical_on_off(self, backend):
        n_workers = None if backend == "serial" else 2
        with Session(backend=backend, n_workers=n_workers) as session:
            plain = session.run("smoke", seed=13)
        with Session(
            backend=backend, n_workers=n_workers, telemetry=True
        ) as session:
            instrumented = session.run("smoke", seed=13)
        assert instrumented.telemetry is not None
        assert plain.telemetry is None
        assert _tables_equal(plain.table, instrumented.table)
        assert (
            plain.provenance.spec_digest
            == instrumented.provenance.spec_digest
        )
        assert plain.provenance.entropy == instrumented.provenance.entropy
        assert (
            plain.provenance.spawn_key == instrumented.provenance.spawn_key
        )

    def test_records_identical_across_backends_with_telemetry(self):
        tables = {}
        for backend in BACKENDS:
            n_workers = None if backend == "serial" else 2
            with Session(
                backend=backend, n_workers=n_workers, telemetry=True
            ) as session:
                tables[backend] = session.run("smoke", seed=21).table
        assert _tables_equal(tables["serial"], tables["thread"])
        assert _tables_equal(tables["serial"], tables["process"])

    def test_campaign_records_identical_on_off(self):
        with Session(backend="thread", n_workers=2) as session:
            plain = session.campaign("smoke", 6, seed=11)
        with Session(
            backend="thread", n_workers=2, telemetry=True
        ) as session:
            instrumented = session.campaign("smoke", 6, seed=11)
        assert _tables_equal(plain.table, instrumented.table)
        assert plain.summary == instrumented.summary

    def test_merged_structure_is_deterministic(self):
        def structure():
            with Session(
                backend="process", n_workers=2, chunk_size=1, telemetry=True
            ) as session:
                snapshot = session.run(
                    ["smoke", "cooling_stuxnet"], seed=7
                ).telemetry
            paths = snapshot.span_paths()
            return (
                [(path, node["count"]) for path, node in paths.items()],
                snapshot.metrics["counters"],
            )

        first_spans, first_counters = structure()
        second_spans, second_counters = structure()
        # Wall-clock totals differ run to run; the tree shape, span
        # order, entry counts and every counter must not.
        assert first_spans == second_spans
        assert first_counters == second_counters

    def test_snapshot_not_attached_without_telemetry(self):
        with Session() as session:
            result = session.run("smoke", seed=1)
        assert result.telemetry is None


class TestSessionModes:
    def test_caller_owned_telemetry_accumulates(self):
        own = Telemetry()
        with Session(telemetry=own) as session:
            session.run("smoke", seed=1)
            session.run("smoke", seed=2)
        snapshot = own.snapshot()
        assert snapshot.span_paths()["session.run"]["count"] == 2

    def test_fresh_instance_per_run_for_bool_mode(self):
        with Session(telemetry=True) as session:
            first = session.run("smoke", seed=1)
            second = session.run("smoke", seed=2)
        assert first.telemetry is not second.telemetry
        assert first.telemetry.span_paths()["session.run"]["count"] == 1

    def test_unknown_profile_mode_rejected(self):
        with pytest.raises(ValueError):
            Session(telemetry="bogus")

    def test_suite_and_scenario_results_share_snapshot(self):
        with Session(telemetry=True) as session:
            result = session.run(["smoke", "cooling_stuxnet"], seed=7)
        assert result.telemetry is not None
        for scenario_result in result.results:
            assert scenario_result.telemetry is result.telemetry

    def test_submitted_job_attaches_snapshot_and_events(self):
        with Session(telemetry=True) as session:
            job = session.submit("smoke", seed=7)
            result = job.result()
        snapshot = result.telemetry
        assert snapshot is not None
        states = [
            event["state"]
            for event in snapshot.events
            if event["kind"] == "job.state"
        ]
        # The snapshot freezes inside the job body: it sees the replayed
        # PENDING and the RUNNING transition; the terminal state lands
        # on the handle's own event list afterwards.
        assert states[:2] == ["pending", "running"]
