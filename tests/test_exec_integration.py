"""End-to-end determinism of the runner-backed batch entry points.

Same seed ⇒ identical records across the ``serial``, ``thread`` and
``process`` backends and across worker counts, for every refactored
entry point: ``AttackCampaign.run_batch``, ``MeasurementPlan.execute``,
``SANSimulator.batch`` and ``DiversityStudy``.
"""

import math

import numpy as np
import pytest

from repro import (
    AttackCampaign,
    CampaignConfig,
    DiversityStudy,
    ExperimentRunner,
    MeasurementPlan,
    default_catalog,
    scope_cooling_topology,
    stuxnet_like,
)
from repro.doe.design import Factor
from repro.doe.factorial import full_factorial
from repro.san.builder import SANBuilder
from repro.san.simulator import SANSimulator
from repro.scada.components import ComponentKind

FAST_CONFIG = CampaignConfig(horizon=20.0, tick_interval=0.5)


def _small_design():
    return full_factorial(
        [
            Factor("operating_system", ("win_legacy", "linux_hardened")),
            Factor("antivirus", ("av_signature", "av_behavioral")),
        ]
    )


def _small_plan(replications=3):
    return MeasurementPlan(
        scope_cooling_topology,
        default_catalog(),
        stuxnet_like(),
        _small_design(),
        replications=replications,
        campaign_config=FAST_CONFIG,
    )


def _nan_safe(value):
    # nan != nan would make identical outcomes compare unequal.
    if isinstance(value, float) and math.isnan(value):
        return "nan"
    return value


def _outcome_fingerprint(outcome):
    return (
        outcome.success,
        _nan_safe(outcome.success_time),
        _nan_safe(outcome.detection_time),
        _nan_safe(outcome.sabotage_start),
        tuple(sorted(outcome.compromise_times.items())),
        tuple(sorted(outcome.root_times.items())),
    )


def _chain_model():
    builder = SANBuilder()
    builder.place("s0", 1).place("s1", 0).place("s2", 0)
    builder.stage("a01", "s0", "s1", rate=2.0)
    builder.stage("a12", "s1", "s2", rate=1.0)
    return builder.build()


def _reached_s2(marking):
    # Module-level so the process backend can pickle the stop predicate.
    return marking["s2"] > 0


class TestCampaignBatchDeterminism:
    @pytest.fixture(scope="class")
    def reference(self):
        campaign = AttackCampaign(
            scope_cooling_topology(),
            default_catalog(),
            stuxnet_like(),
            FAST_CONFIG,
        )
        serial = campaign.run_batch(
            6, 2024, runner=ExperimentRunner("serial")
        )
        return campaign, [_outcome_fingerprint(o) for o in serial]

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_backends_match_serial(self, reference, backend):
        campaign, expected = reference
        outcomes = campaign.run_batch(
            6, 2024, runner=ExperimentRunner(backend, n_workers=4)
        )
        assert [_outcome_fingerprint(o) for o in outcomes] == expected

    @pytest.mark.parametrize("n_workers", [1, 3])
    def test_worker_counts_match_serial(self, reference, n_workers):
        campaign, expected = reference
        outcomes = campaign.run_batch(
            6,
            2024,
            runner=ExperimentRunner(
                "thread", n_workers=n_workers, chunk_size=1
            ),
        )
        assert [_outcome_fingerprint(o) for o in outcomes] == expected

    def test_seed_only_call_defaults_to_serial_runner(self, reference):
        campaign, expected = reference
        outcomes = campaign.run_batch(6, 2024)
        assert [_outcome_fingerprint(o) for o in outcomes] == expected

    def test_legacy_shared_generator_path_still_sequential(self):
        campaign = AttackCampaign(
            scope_cooling_topology(),
            default_catalog(),
            stuxnet_like(),
            FAST_CONFIG,
        )
        a = campaign.run_batch(4, np.random.default_rng(7))
        b = campaign.run_batch(4, np.random.default_rng(7))
        assert [_outcome_fingerprint(o) for o in a] == [
            _outcome_fingerprint(o) for o in b
        ]


class TestMeasurementPlanDeterminism:
    @pytest.fixture(scope="class")
    def serial_result(self):
        return _small_plan().execute(
            rng=99, runner=ExperimentRunner("serial")
        )

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_records_bit_identical_across_backends(
        self, serial_result, backend
    ):
        result = _small_plan().execute(
            rng=99, runner=ExperimentRunner(backend, n_workers=4)
        )
        assert result.records == serial_result.records

    def test_run_indicators_match_too(self, serial_result):
        result = _small_plan().execute(
            rng=99,
            runner=ExperimentRunner("thread", n_workers=2, chunk_size=1),
        )
        for mine, ref in zip(
            result.run_indicators, serial_result.run_indicators
        ):
            a, b = mine.summary_row(), ref.summary_row()
            assert a.keys() == b.keys()
            for key in a:
                x, y = a[key], b[key]
                if isinstance(x, float) and math.isnan(x):
                    assert math.isnan(y)
                else:
                    assert x == y

    def test_legacy_generator_path_unchanged_shape(self):
        result = _small_plan().execute(np.random.default_rng(1))
        assert len(result.records) == 4 * 3
        assert result.replications == 3


class TestSANBatchDeterminism:
    def _fingerprints(self, runs):
        return [
            (r.end_time, r.stop_time, tuple(r.completions)) for r in runs
        ]

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_backends_match_serial(self, backend):
        sim = SANSimulator(_chain_model())
        serial = sim.batch(
            50.0, 8, 11, stop=_reached_s2, runner=ExperimentRunner("serial")
        )
        parallel = sim.batch(
            50.0,
            8,
            11,
            stop=_reached_s2,
            runner=ExperimentRunner(backend, n_workers=4),
        )
        assert self._fingerprints(parallel) == self._fingerprints(serial)

    def test_legacy_generator_path_still_works(self):
        sim = SANSimulator(_chain_model())
        runs = sim.batch(50.0, 5, np.random.default_rng(3))
        assert len(runs) == 5


class TestDiversityStudyBackendOption:
    def test_thread_backend_matches_serial_backend(self):
        def build(backend, n_workers=None):
            return DiversityStudy(
                network_factory=scope_cooling_topology,
                catalog=default_catalog(),
                threat=stuxnet_like(),
                kinds=[
                    ComponentKind.OPERATING_SYSTEM,
                    ComponentKind.ANTIVIRUS,
                ],
                two_level=True,
                replications=3,
                campaign_config=FAST_CONFIG,
                backend=backend,
                n_workers=n_workers,
            )

        serial = build("serial").execute(np.random.default_rng(42))
        threaded = build("thread", 4).execute(np.random.default_rng(42))
        assert serial.measurement.records == threaded.measurement.records
