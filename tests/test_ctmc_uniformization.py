"""Tests for sparse CTMC analysis: uniformization, sparse solves,
scale-aware absorption and the interned state index."""

import numpy as np
import pytest
from scipy import sparse

from repro.san.builder import SANBuilder
from repro.san.ctmc import (
    CTMC,
    DENSE_STATE_CUTOFF,
    poisson_weights,
    san_to_ctmc,
)
from repro.stats.distributions import Exponential


def random_ctmc(rng, n):
    """A dense random generator with ~40% connectivity."""
    q = rng.random((n, n)) * (rng.random((n, n)) < 0.4)
    np.fill_diagonal(q, 0.0)
    q[np.diag_indices(n)] = -q.sum(axis=1)
    initial = rng.random(n)
    initial /= initial.sum()
    states = [(("p", i),) for i in range(n)]
    return CTMC(states=states, generator=q, initial=initial)


def birth_death_ctmc(n, up=1.2, down=0.9):
    builder = SANBuilder("bd")
    builder.place("free", n - 1).place("load", 0)
    builder.timed("grow", Exponential(up), inputs={"free": 1},
                  outputs={"load": 1})
    builder.timed("shrink", Exponential(down), inputs={"load": 1},
                  outputs={"free": 1})
    return san_to_ctmc(builder.build())


class TestPoissonWeights:
    def test_mass_near_one(self):
        for q in (0.0, 0.3, 1.0, 7.5, 40.0, 900.0):
            left, weights = poisson_weights(q, tol=1e-12)
            assert sum(weights) == pytest.approx(1.0, abs=1e-11)
            assert left >= 0
            assert all(w >= 0 for w in weights)

    def test_matches_scipy_pmf(self):
        from scipy.stats import poisson

        q = 12.5
        left, weights = poisson_weights(q)
        ks = np.arange(left, left + len(weights))
        assert np.allclose(weights, poisson.pmf(ks, q), atol=1e-13)

    def test_zero_rate_is_point_mass(self):
        assert poisson_weights(0.0) == (0, [1.0])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            poisson_weights(-1.0)

    def test_huge_rate_terminates(self):
        """pmf cancellation error must not make the target unreachable.

        At q = 3e8 the lgamma-based pmf saturates the retained mass a
        few 1e-7 short of 1 - 1e-12; the loop must stop at the sub-ulp
        frontier instead of grinding through subnormal tails forever.
        """
        left, weights = poisson_weights(3e8)
        assert sum(weights) == pytest.approx(1.0, abs=1e-5)
        # The window is centred near the mode, a few sigma wide.
        assert abs(left + len(weights) / 2 - 3e8) < 1e6
        assert len(weights) < 2_000_000


class TestUniformizationAgreesWithExpm:
    def test_property_random_small_ctmcs(self):
        """Uniformization vs dense expm, atol 1e-10, random chains."""
        rng = np.random.default_rng(42)
        for _ in range(25):
            n = int(rng.integers(2, 30))
            ctmc = random_ctmc(rng, n)
            for t in (0.0, 0.25, 2.0, 13.0):
                dense = ctmc.transient_distribution(t, method="expm")
                unif = ctmc.transient_distribution(
                    t, method="uniformization"
                )
                assert np.allclose(dense, unif, atol=1e-10)

    def test_auto_dispatch_by_size(self):
        rng = np.random.default_rng(0)
        small = random_ctmc(rng, 5)
        big = birth_death_ctmc(DENSE_STATE_CUTOFF + 10)
        # Both dispatch without error and produce distributions.
        assert small.transient_distribution(1.0).sum() == pytest.approx(1.0)
        assert big.transient_distribution(1.0).sum() == pytest.approx(1.0)
        # The auto path on the big chain matches the dense reference.
        assert np.allclose(
            big.transient_distribution(1.5),
            big.transient_distribution(1.5, method="expm"),
            atol=1e-10,
        )

    def test_unknown_method_rejected(self):
        ctmc = random_ctmc(np.random.default_rng(1), 4)
        with pytest.raises(ValueError):
            ctmc.transient_distribution(1.0, method="magic")

    def test_negative_time_rejected(self):
        ctmc = random_ctmc(np.random.default_rng(1), 4)
        with pytest.raises(ValueError):
            ctmc.transient_distribution(-0.5)
        with pytest.raises(ValueError):
            ctmc.transient_at([1.0, -2.0])

    def test_all_absorbing_chain_is_constant(self):
        ctmc = CTMC(
            states=[(("p", 0),), (("p", 1),)],
            generator=np.zeros((2, 2)),
            initial=np.array([0.3, 0.7]),
        )
        for method in ("uniformization", "expm"):
            assert np.allclose(
                ctmc.transient_distribution(5.0, method=method),
                ctmc.initial,
            )


class TestTransientAt:
    def test_grid_matches_single_queries(self):
        ctmc = birth_death_ctmc(80)
        times = [0.0, 0.5, 1.5, 4.0, 9.0]
        grid = ctmc.transient_at(times, method="uniformization")
        assert grid.shape == (len(times), ctmc.n_states)
        for row, t in zip(grid, times):
            assert np.allclose(
                row,
                ctmc.transient_distribution(t, method="expm"),
                atol=1e-10,
            )

    def test_empty_grid_returns_empty_matrix(self):
        for ctmc in (birth_death_ctmc(10), birth_death_ctmc(100)):
            grid = ctmc.transient_at([])
            assert grid.shape == (0, ctmc.n_states)

    def test_state_probability_uses_transient(self):
        ctmc = birth_death_ctmc(30)
        p = ctmc.state_probability(2.0, lambda m: m.get("load", 0) >= 1)
        assert 0.0 < p < 1.0


class TestSparseStorage:
    def test_generator_dense_view_matches_sparse(self):
        ctmc = birth_death_ctmc(50)
        assert sparse.issparse(ctmc.sparse_generator)
        assert np.allclose(
            ctmc.generator, ctmc.sparse_generator.toarray()
        )
        assert np.allclose(ctmc.generator.sum(axis=1), 0.0, atol=1e-9)

    def test_accepts_sparse_input(self):
        q = sparse.csr_array(
            np.array([[-1.0, 1.0], [2.0, -2.0]])
        )
        ctmc = CTMC(
            states=[(("p", 0),), (("p", 1),)],
            generator=q,
            initial=np.array([1.0, 0.0]),
        )
        assert ctmc.generator[0, 1] == 1.0
        assert ctmc.transient_distribution(3.0).sum() == pytest.approx(1.0)

    def test_sparse_hitting_matches_dense(self):
        """Above the dense cutoff the sparse solver path takes over."""
        big = birth_death_ctmc(450, up=1.2, down=0.9)
        n = big.n_states
        target = [n - 1]
        hp = big.hitting_probability(target)
        mh = big.mean_hitting_time(target)
        start = int(np.argmax(big.initial))
        # Irreducible (upward-biased, well-conditioned) birth-death
        # chain: the top state is hit almost surely, in finite time.
        assert hp[start] == pytest.approx(1.0, abs=1e-8)
        assert 0.0 < mh[start] < np.inf
        # And the sparse solve reproduces the dense reference solve.
        transient = [i for i in range(n) if i != n - 1]
        q_tt = big.generator[np.ix_(transient, transient)]
        rhs = -big.generator[np.ix_(transient, target)].sum(axis=1)
        dense_hp = np.linalg.solve(q_tt, rhs)
        assert np.allclose(hp[transient], dense_hp, atol=1e-8)


class TestStateIndex:
    def test_lookup_and_unknown(self):
        ctmc = birth_death_ctmc(20)
        for i, state in enumerate(ctmc.states):
            assert ctmc.state_index(state) == i
        with pytest.raises(KeyError):
            ctmc.state_index((("nope", 1),))


class TestAbsorbingStates:
    def test_scale_aware_on_fast_rate_model(self):
        """Residual exit rate tiny *relative* to 1e12-scale clocks."""
        q = np.zeros((3, 3))
        q[0, 1] = 1e12
        q[0, 0] = -1e12
        q[1, 2] = 1e12
        q[1, 1] = -1e12
        # State 2 keeps a 1e-3 numerical residue: huge vs the old
        # absolute 1e-14 cutoff, noise (1e-15 relative) vs the rates.
        q[2, 0] = 1e-3
        q[2, 2] = -1e-3
        ctmc = CTMC(
            states=[(("p", i),) for i in range(3)],
            generator=q,
            initial=np.array([1.0, 0.0, 0.0]),
        )
        assert ctmc.absorbing_states() == [2]

    def test_exact_zero_rows_still_absorbing_at_small_scale(self):
        builder = SANBuilder()
        builder.place("s0", 1).place("s1", 0)
        builder.stage("go", "s0", "s1", rate=0.25)
        ctmc = san_to_ctmc(builder.build())
        absorbing = ctmc.absorbing_states()
        assert len(absorbing) == 1
        assert dict(ctmc.states[absorbing[0]]).get("s1") == 1

    def test_genuinely_slow_state_not_swallowed(self):
        """A real (if slow) exit rate at comparable scale stays active."""
        q = np.array([[-0.01, 0.01], [0.0, 0.0]])
        ctmc = CTMC(
            states=[(("p", 0),), (("p", 1),)],
            generator=q,
            initial=np.array([1.0, 0.0]),
        )
        assert ctmc.absorbing_states() == [1]


class TestSimulatorCrossValidation:
    def test_compiled_simulator_matches_ctmc_mean_hitting_time(self):
        """Statistical agreement of the compiled path with exact CTMC."""
        builder = SANBuilder()
        builder.place("s0", 1).place("s1", 0).place("s2", 0)
        builder.stage("a1", "s0", "s1", rate=1.0, success_probability=0.8)
        builder.stage("a2", "s1", "s2", rate=0.5, success_probability=0.6)
        model = builder.build()
        ctmc = san_to_ctmc(model)
        targets = [
            i for i, s in enumerate(ctmc.states) if dict(s).get("s2", 0) > 0
        ]
        analytic = ctmc.mean_hitting_time(targets)[
            int(np.argmax(ctmc.initial))
        ]
        from repro.san.simulator import SANSimulator

        sim = SANSimulator(model)  # compiled default
        runs = sim.batch(10_000.0, 1500, rng=11,
                         stop=lambda m: m["s2"] > 0)
        sampled = np.mean([r.stop_time for r in runs if r.stopped])
        assert sampled == pytest.approx(analytic, rel=0.1)
