"""Tests for the event queue."""

import pytest

from repro.sim.events import Event, EventQueue


class TestEventOrdering:
    def test_events_pop_in_time_order(self):
        q = EventQueue()
        q.schedule(3.0)
        q.schedule(1.0)
        q.schedule(2.0)
        times = [q.pop().time for _ in range(3)]
        assert times == [1.0, 2.0, 3.0]

    def test_priority_breaks_time_ties(self):
        q = EventQueue()
        q.schedule(1.0, priority=5, payload="late")
        q.schedule(1.0, priority=1, payload="early")
        assert q.pop().payload == "early"
        assert q.pop().payload == "late"

    def test_fifo_among_full_ties(self):
        q = EventQueue()
        for i in range(5):
            q.schedule(1.0, payload=i)
        order = [q.pop().payload for _ in range(5)]
        assert order == [0, 1, 2, 3, 4]

    def test_peek_does_not_remove(self):
        q = EventQueue()
        q.schedule(1.0)
        assert q.peek() is q.peek()
        assert len(q) == 1


class TestCancellation:
    def test_cancelled_event_is_skipped(self):
        q = EventQueue()
        keep = q.schedule(1.0, payload="keep")
        drop = q.schedule(0.5, payload="drop")
        q.cancel(drop)
        assert q.pop() is keep

    def test_cancel_updates_length(self):
        q = EventQueue()
        ev = q.schedule(1.0)
        q.schedule(2.0)
        q.cancel(ev)
        assert len(q) == 1

    def test_double_cancel_is_idempotent(self):
        q = EventQueue()
        ev = q.schedule(1.0)
        q.cancel(ev)
        q.cancel(ev)
        assert len(q) == 0

    def test_peek_skips_cancelled_head(self):
        q = EventQueue()
        head = q.schedule(0.5)
        tail = q.schedule(1.0)
        q.cancel(head)
        assert q.peek() is tail


class TestValidation:
    def test_negative_time_rejected(self):
        q = EventQueue()
        with pytest.raises(ValueError):
            q.schedule(-1.0)

    def test_nan_time_rejected(self):
        q = EventQueue()
        with pytest.raises(ValueError):
            q.schedule(float("nan"))

    def test_infinite_time_rejected(self):
        q = EventQueue()
        with pytest.raises(ValueError):
            q.schedule(float("inf"))


class TestQueueBasics:
    def test_empty_queue_pops_none(self):
        assert EventQueue().pop() is None

    def test_empty_queue_peeks_none(self):
        assert EventQueue().peek() is None

    def test_bool_reflects_liveness(self):
        q = EventQueue()
        assert not q
        q.schedule(1.0)
        assert q

    def test_clear_discards_everything(self):
        q = EventQueue()
        q.schedule(1.0)
        q.schedule(2.0)
        q.clear()
        assert len(q) == 0
        assert q.pop() is None

    def test_event_fire_invokes_action(self):
        hits = []
        ev = Event(time=1.0, action=lambda e: hits.append(e.time))
        ev.fire()
        assert hits == [1.0]

    def test_event_fire_without_action_is_noop(self):
        Event(time=1.0).fire()  # must not raise
