"""The GSPN structure-of-arrays batch engine.

Vectorizable nets (purely timed, static rates) advance all lanes in
lockstep steps; nets with immediate transitions or marking-dependent
rates — and any batch with a ``stop`` predicate — transparently fall
back to the scalar interpreter lane by lane.  Single-lane batches are
bit-exact against ``GSPN.simulate`` either way.
"""

import math

import numpy as np
import pytest

from repro.petri.batched import GSPNBatchEngine, GSPNBatchRun, simulate_batch
from repro.petri.gspn import GSPN
from repro.petri.net import PetriNet
from repro.telemetry import Telemetry


def birth_death(servers: int = 3) -> GSPN:
    net = PetriNet("bd")
    net.add_place("idle", tokens=servers)
    net.add_place("busy")
    net.add_transition("start", inputs={"idle": 1}, outputs={"busy": 1})
    net.add_transition("done", inputs={"busy": 1}, outputs={"idle": 1})
    gspn = GSPN(net)
    gspn.add_timed("start", 2.0)
    gspn.add_timed("done", 1.0)
    return gspn


def with_immediate() -> GSPN:
    net = PetriNet("imm")
    net.add_place("a", tokens=1)
    net.add_place("b")
    net.add_place("c")
    net.add_transition("t", inputs={"a": 1}, outputs={"b": 1})
    net.add_transition("i", inputs={"b": 1}, outputs={"c": 1})
    gspn = GSPN(net)
    gspn.add_timed("t", 1.0)
    gspn.add_immediate("i")
    return gspn


class TestBitExactness:
    def test_single_lane_matches_simulate(self):
        gspn = birth_death()
        engine = GSPNBatchEngine(gspn, horizon=10.0)
        assert engine.vectorized, engine.fallback_reason
        for seed in range(20):
            lane = engine.run(
                1, np.random.default_rng(seed), record_log=True
            )[0]
            marking, stop_time, log = gspn.simulate(
                10.0, np.random.default_rng(seed)
            )
            assert lane.final_marking.as_dict() == marking.as_dict()
            assert lane.stop_time == stop_time or (
                math.isnan(lane.stop_time) and math.isnan(stop_time)
            )
            assert lane.log == [(t, name) for t, name, _ in log]

    def test_log_suppressed_by_default(self):
        lane = GSPNBatchEngine(birth_death(), horizon=10.0).run(
            1, np.random.default_rng(0)
        )[0]
        assert isinstance(lane, GSPNBatchRun)
        assert lane.log == []


class TestFallbacks:
    def test_immediate_transitions_fall_back(self):
        gspn = with_immediate()
        engine = GSPNBatchEngine(gspn, horizon=5.0)
        assert not engine.vectorized
        assert "immediate" in engine.fallback_reason
        lanes = engine.run(3, np.random.default_rng(4), record_log=True)
        reference_rng = np.random.default_rng(4)
        for lane in lanes:
            marking, _, log = gspn.simulate(5.0, reference_rng)
            assert lane.final_marking.as_dict() == marking.as_dict()
            assert lane.log == [(t, name) for t, name, _ in log]

    def test_marking_dependent_rates_fall_back(self):
        net = PetriNet("md")
        net.add_place("p", tokens=2)
        net.add_place("q")
        net.add_transition("t", inputs={"p": 1}, outputs={"q": 1})
        gspn = GSPN(net)
        gspn.add_timed("t", lambda marking: 1.0 + marking["p"])
        engine = GSPNBatchEngine(gspn, horizon=5.0)
        assert not engine.vectorized
        assert "marking-dependent" in engine.fallback_reason
        assert len(engine.run(2, np.random.default_rng(0))) == 2

    def test_stop_predicate_falls_back_with_parity(self):
        gspn = birth_death()
        engine = GSPNBatchEngine(gspn, horizon=10.0)
        assert engine.vectorized

        def stop(marking):
            return marking["busy"] >= 2

        lanes = engine.run(4, np.random.default_rng(9), stop=stop)
        reference_rng = np.random.default_rng(9)
        for lane in lanes:
            marking, stop_time, _ = gspn.simulate(
                10.0, reference_rng, stop=stop
            )
            assert lane.final_marking.as_dict() == marking.as_dict()
            assert lane.stop_time == stop_time or (
                math.isnan(lane.stop_time) and math.isnan(stop_time)
            )

    def test_undeclared_transition_rejected(self):
        net = PetriNet("u")
        net.add_place("p", tokens=1)
        net.add_transition("t", inputs={"p": 1})
        with pytest.raises(
            ValueError, match=r"transitions without timing declaration"
        ):
            GSPNBatchEngine(GSPN(net), horizon=1.0)


class TestDistributionalIdentity:
    def test_mean_busy_tokens_matches_scalar(self):
        gspn = birth_death()
        n = 400
        engine = GSPNBatchEngine(gspn, horizon=8.0)
        batched = engine.run(n, np.random.default_rng(11))
        rng = np.random.default_rng(12)
        scalar = [gspn.simulate(8.0, rng) for _ in range(n)]
        mean_batched = np.mean(
            [lane.final_marking.as_dict().get("busy", 0) for lane in batched]
        )
        mean_scalar = np.mean(
            [m.as_dict().get("busy", 0) for m, _, _ in scalar]
        )
        # M/M/3-ish stationary mean; both estimates share it.
        assert abs(mean_batched - mean_scalar) < 0.25


class TestValidationAndTelemetry:
    def test_rejects_empty_batch(self):
        with pytest.raises(ValueError, match=r"size must be >= 1, got 0"):
            GSPNBatchEngine(birth_death(), horizon=1.0).run(
                0, np.random.default_rng(0)
            )

    def test_module_level_helper(self):
        runs = simulate_batch(
            birth_death(), 5.0, 6, np.random.default_rng(2)
        )
        assert len(runs) == 6

    def test_batch_counters(self):
        telemetry = Telemetry()
        with telemetry.activate():
            GSPNBatchEngine(birth_death(), horizon=5.0).run(
                16, np.random.default_rng(1)
            )
        snapshot = telemetry.snapshot()
        assert snapshot.counter("batch.batches") == 1
        assert snapshot.counter("batch.lanes") == 16
        assert snapshot.counter("batch.lane_retirements") == 16
        assert snapshot.counter("batch.steps") > 0
