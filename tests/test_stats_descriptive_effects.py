"""Tests for descriptive statistics and effect sizes."""

import numpy as np
import pytest

from repro.stats.anova import anova
from repro.stats.descriptive import summarize
from repro.stats.effects import (
    effect_magnitudes,
    eta_squared,
    main_effects,
    omega_squared,
)


class TestSummarize:
    def test_basic_fields(self):
        s = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
        assert s.n == 5
        assert s.mean == 3.0
        assert s.median == 3.0
        assert s.minimum == 1.0
        assert s.maximum == 5.0

    def test_std_is_sample_std(self):
        s = summarize([2.0, 4.0])
        assert s.std == pytest.approx(np.std([2.0, 4.0], ddof=1))

    def test_single_value_zero_std(self):
        assert summarize([7.0]).std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_sem_shrinks_with_n(self, rng):
        small = summarize(rng.normal(0, 1, 10))
        large = summarize(rng.normal(0, 1, 1000))
        assert large.sem < small.sem

    def test_cv_nan_for_zero_mean(self):
        s = summarize([-1.0, 1.0])
        assert s.cv != s.cv  # NaN

    def test_quartiles_ordered(self, rng):
        s = summarize(rng.normal(0, 1, 200))
        assert s.q25 <= s.median <= s.q75

    def test_str_mentions_n(self):
        assert "n=3" in str(summarize([1.0, 2.0, 3.0]))


class TestEffects:
    @pytest.fixture
    def data(self, rng):
        data = []
        for a in (0, 1):
            for b in (0, 1):
                for _ in range(8):
                    data.append(
                        {"a": a, "b": b, "y": 4.0 * a + 1.0 * b + rng.normal(0, 0.2)}
                    )
        return data

    def test_main_effects_sum_to_zero_per_factor(self, data):
        effects = main_effects(data, "y", ["a", "b"])
        for factor_effects in effects.values():
            assert sum(factor_effects.values()) == pytest.approx(0.0, abs=1e-9)

    def test_effect_magnitude_recovers_true_effect(self, data):
        effects = main_effects(data, "y", ["a", "b"])
        magnitudes = effect_magnitudes(effects)
        assert magnitudes["a"] == pytest.approx(4.0, abs=0.5)
        assert magnitudes["b"] == pytest.approx(1.0, abs=0.5)

    def test_empty_data_rejected(self):
        with pytest.raises(ValueError):
            main_effects([], "y", ["a"])

    def test_eta_squared_matches_allocation(self, data):
        result = anova(data, "y", ["a", "b"])
        assert eta_squared(result, "a") == pytest.approx(
            result.row("a").allocation
        )

    def test_omega_squared_less_than_eta_squared(self, data):
        result = anova(data, "y", ["a", "b"])
        assert omega_squared(result, "a") <= eta_squared(result, "a")

    def test_omega_squared_clamped_at_zero(self, rng):
        # Pure-noise factor: omega² would be negative, must clamp to 0.
        data = [
            {"a": a, "y": rng.normal()} for a in (0, 1) for _ in range(4)
        ]
        result = anova(data, "y", ["a"])
        assert omega_squared(result, "a") >= 0.0
