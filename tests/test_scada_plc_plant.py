"""Tests for PLCs, the cooling plant and damage model."""

import pytest

from repro.scada.plant.cooling import (
    CoolingPlant,
    CoolingPlantConfig,
    REG_CHILLER_SP,
    REG_CRAC_ENABLE,
    REG_LOOP_TEMP,
    REG_PUMP_ENABLE,
    REG_ROOM_TEMP,
)
from repro.scada.plant.damage import DamageModel
from repro.scada.plant.thermal import ThermalNode
from repro.scada.plc import (
    LadderProgram,
    PLC,
    Rung,
    sabotage_program,
    threshold_controller,
)
from repro.scada.protocol import (
    FunctionCode,
    ModbusFrame,
    ProtocolError,
    STANDARD_DIALECT,
    encode_frame,
    remapped_dialect,
)


class TestThermalNode:
    def test_heating_raises_temperature(self):
        node = ThermalNode("n", heat_capacity=100.0, temperature=20.0)
        node.step(heat_in_kw=10.0, heat_out_kw=0.0, dt=10.0)
        assert node.temperature == pytest.approx(21.0)

    def test_cooling_lowers_temperature(self):
        node = ThermalNode("n", heat_capacity=100.0, temperature=20.0)
        node.step(heat_in_kw=0.0, heat_out_kw=5.0, dt=10.0)
        assert node.temperature == pytest.approx(19.5)

    def test_ambient_coupling_pulls_toward_ambient(self):
        node = ThermalNode(
            "n", heat_capacity=100.0, temperature=50.0,
            ambient_coupling=1.0, ambient_temperature=20.0,
        )
        node.step(0.0, 0.0, dt=1.0)
        assert node.temperature < 50.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ThermalNode("n", heat_capacity=0.0, temperature=20.0)
        node = ThermalNode("n", heat_capacity=1.0, temperature=20.0)
        with pytest.raises(ValueError):
            node.step(0.0, 0.0, dt=0.0)


class TestCoolingPlant:
    def test_healthy_plant_reaches_equilibrium(self):
        plant = CoolingPlant()
        registers = plant.default_registers()
        plant.run(registers, duration=4 * 3600, dt=10.0)
        assert plant.room.temperature < 30.0

    def test_disabled_cooling_overheats(self):
        plant = CoolingPlant()
        registers = plant.default_registers()
        registers[REG_CRAC_ENABLE] = 0
        registers[REG_PUMP_ENABLE] = 0
        plant.run(registers, duration=3600, dt=10.0)
        assert plant.room.temperature > 40.0

    def test_raised_setpoint_degrades_cooling(self):
        healthy = CoolingPlant()
        r1 = healthy.default_registers()
        healthy.run(r1, duration=2 * 3600, dt=10.0)

        sabotaged = CoolingPlant()
        r2 = sabotaged.default_registers()
        r2[REG_CHILLER_SP] = 500  # 50 °C setpoint idles the chiller
        sabotaged.run(r2, duration=2 * 3600, dt=10.0)
        assert sabotaged.loop.temperature > healthy.loop.temperature

    def test_registers_mirror_measurements(self):
        plant = CoolingPlant()
        registers = plant.default_registers()
        plant.step(registers, dt=10.0)
        assert registers[REG_ROOM_TEMP] == int(plant.room.temperature * 10)
        assert registers[REG_LOOP_TEMP] == int(plant.loop.temperature * 10)

    def test_large_dt_is_substepped_and_stable(self):
        plant = CoolingPlant()
        registers = plant.default_registers()
        plant.run(registers, duration=2 * 3600, dt=900.0)
        assert 5.0 < plant.room.temperature < 30.0  # no blow-up

    def test_history_recording_optional(self):
        plant = CoolingPlant(record_history=False)
        registers = plant.default_registers()
        plant.run(registers, duration=600, dt=10.0)
        assert plant.history == []


class TestDamageModel:
    def test_no_damage_below_safe_temperature(self):
        model = DamageModel()
        model.update(temperature=30.0, dt=1000.0, now=1000.0)
        assert model.damage == 0.0
        assert not model.impaired

    def test_damage_accumulates_above_threshold(self):
        model = DamageModel()
        model.update(temperature=45.0, dt=300.0, now=300.0)
        assert model.damage == pytest.approx(300.0 / 600.0)

    def test_impairment_time_recorded_once(self):
        model = DamageModel()
        model.update(temperature=45.0, dt=700.0, now=700.0)
        assert model.impaired
        first = model.impairment_time
        model.update(temperature=45.0, dt=100.0, now=800.0)
        assert model.impairment_time == first

    def test_hotter_damages_faster(self):
        cool = DamageModel()
        hot = DamageModel()
        cool.update(40.0, 100.0, 100.0)
        hot.update(60.0, 100.0, 100.0)
        assert hot.damage > cool.damage

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            DamageModel(safe_temperature=50.0, critical_temperature=40.0)
        model = DamageModel()
        with pytest.raises(ValueError):
            model.update(50.0, dt=0.0, now=0.0)


class TestPLC:
    def make_plc(self):
        program = threshold_controller(
            "cooling", sensor_register=100, actuator_register=200,
            on_threshold=250, off_threshold=220,
        )
        return PLC("plc0", unit=1, program=program)

    def test_scan_cycle_applies_control_law(self):
        plc = self.make_plc()
        plc.write_register(100, 300)  # hot
        plc.scan_cycle()
        assert plc.read_register(200) == 1
        plc.write_register(100, 200)  # cool
        plc.scan_cycle()
        assert plc.read_register(200) == 0

    def test_hysteresis_keeps_state_between_thresholds(self):
        plc = self.make_plc()
        plc.write_register(100, 300)
        plc.scan_cycle()
        plc.write_register(100, 235)  # inside the dead band
        plc.scan_cycle()
        assert plc.read_register(200) == 1

    def test_read_write_over_protocol(self):
        plc = self.make_plc()
        plc.write_register(100, 42)
        frame = ModbusFrame(
            unit=1, function=FunctionCode.READ_HOLDING_REGISTERS,
            address=100, count=1,
        )
        response = plc.handle_frame(
            encode_frame(frame, STANDARD_DIALECT), STANDARD_DIALECT
        )
        assert response.values == (42,)

    def test_write_over_protocol(self):
        plc = self.make_plc()
        frame = ModbusFrame(
            unit=1, function=FunctionCode.WRITE_SINGLE_REGISTER,
            address=300, values=(7,),
        )
        plc.handle_frame(encode_frame(frame, STANDARD_DIALECT),
                         STANDARD_DIALECT)
        assert plc.read_register(300) == 7

    def test_wrong_dialect_frame_rejected(self):
        plc = self.make_plc()
        frame = ModbusFrame(
            unit=1, function=FunctionCode.READ_HOLDING_REGISTERS,
            address=100, count=1,
        )
        raw = encode_frame(frame, remapped_dialect("attacker"))
        with pytest.raises(ProtocolError):
            plc.handle_frame(raw, remapped_dialect("attacker"))

    def test_wrong_unit_rejected(self):
        plc = self.make_plc()
        frame = ModbusFrame(
            unit=9, function=FunctionCode.READ_HOLDING_REGISTERS,
            address=100, count=1,
        )
        with pytest.raises(ProtocolError):
            plc.handle_frame(encode_frame(frame, STANDARD_DIALECT),
                             STANDARD_DIALECT)

    def test_reprogram_tracks_compromise(self):
        plc = self.make_plc()
        assert not plc.compromised
        plc.load_program(sabotage_program("evil", actuator_register=200,
                                          forced_value=0))
        assert plc.compromised
        assert plc.reprogram_count == 1
        plc.restore_program()
        assert not plc.compromised

    def test_sabotage_program_forces_actuator_and_spoofs(self):
        plc = self.make_plc()
        plc.load_program(
            sabotage_program(
                "evil", actuator_register=200, forced_value=0,
                spoof_register=100, spoof_value=230,
            )
        )
        plc.write_register(100, 400)  # actually very hot
        plc.scan_cycle()
        assert plc.read_register(200) == 0  # cooling forced off
        assert plc.read_register(100) == 230  # reading spoofed

    def test_threshold_controller_validation(self):
        with pytest.raises(ValueError):
            threshold_controller("bad", 100, 200, on_threshold=10,
                                 off_threshold=20)

    def test_register_value_range_enforced(self):
        plc = self.make_plc()
        with pytest.raises(ValueError):
            plc.write_register(0, 100000)
