"""Tests for threat models: vectors, spoofers, C2, profiles."""

import numpy as np
import pytest

from repro.attacks.c2 import C2Channel
from repro.attacks.profiles import (
    ThreatProfile,
    duqu_like,
    flame_like,
    stuxnet_like,
)
from repro.attacks.spoof import ConstantSpoofer, ReplaySpoofer
from repro.attacks.stages import AttackStage, StageTracker
from repro.attacks.vectors import (
    NetworkExploitVector,
    PrintSpoolerVector,
    SharedFolderVector,
    USBVector,
)
from repro.scada.components import ComponentKind, Host, HostRole
from repro.scada.network import Zone


class TestStageTracker:
    def test_first_entry_recorded(self):
        tracker = StageTracker()
        assert tracker.reach(AttackStage.INITIAL, 1.0, "h")
        assert not tracker.reach(AttackStage.INITIAL, 2.0, "other")
        assert tracker.time_of(AttackStage.INITIAL) == 1.0

    def test_unreached_stage_is_none(self):
        assert StageTracker().time_of(AttackStage.ROOT_ACCESS) is None

    def test_furthest_stage(self):
        tracker = StageTracker()
        tracker.reach(AttackStage.INITIAL, 1.0, "h")
        tracker.reach(AttackStage.ROOT_ACCESS, 3.0, "h")
        assert tracker.furthest() == AttackStage.ROOT_ACCESS

    def test_records_ordered_by_stage(self):
        tracker = StageTracker()
        tracker.reach(AttackStage.ROOT_ACCESS, 3.0, "h")
        tracker.reach(AttackStage.INITIAL, 1.0, "h")
        stages = [r.stage for r in tracker.records()]
        assert stages == sorted(stages)

    def test_stage_ordering_matches_paper(self):
        assert (
            AttackStage.INITIAL
            < AttackStage.ACTIVATED
            < AttackStage.ROOT_ACCESS
            < AttackStage.PROPAGATION
            < AttackStage.DEVICE_IMPAIRMENT
        )


class TestVectors:
    def make_host(self, **flags):
        host = Host("target", HostRole.HMI_STATION, **flags)
        host.install(ComponentKind.OPERATING_SYSTEM, "win_legacy")
        return host

    def test_usb_requires_usb_ports(self):
        vector = USBVector()
        assert vector.applicable(self.make_host(usb_ports=True))
        assert not vector.applicable(self.make_host(usb_ports=False))

    def test_shared_folder_requires_shares(self):
        vector = SharedFolderVector()
        assert vector.applicable(self.make_host(shared_folders=True))
        assert not vector.applicable(self.make_host())

    def test_spooler_requires_service(self):
        vector = PrintSpoolerVector()
        assert vector.applicable(self.make_host(print_spooler=True))
        assert not vector.applicable(self.make_host())

    def test_field_devices_not_infectable(self):
        sensor = Host("s", HostRole.SENSOR, usb_ports=True)
        assert not USBVector().applicable(sensor)
        assert not NetworkExploitVector().applicable(sensor)

    def test_success_probability_uses_catalog(self, catalog):
        host = self.make_host(shared_folders=True)
        p = SharedFolderVector().success_probability(host, catalog)
        assert p == pytest.approx(0.8)  # win_legacy smb, no AV

    def test_antivirus_multiplies_in(self, catalog):
        host = self.make_host(shared_folders=True)
        host.install(ComponentKind.ANTIVIRUS, "av_behavioral")
        p = SharedFolderVector().success_probability(host, catalog)
        assert p == pytest.approx(0.8 * 0.35)

    def test_hardened_os_lowers_probability(self, catalog):
        host = self.make_host(shared_folders=True)
        host.install(ComponentKind.OPERATING_SYSTEM, "linux_hardened")
        p = SharedFolderVector().success_probability(host, catalog)
        assert p == pytest.approx(0.08)

    def test_usb_targets_stay_in_zone(self, network):
        vector = USBVector()
        targets = vector.targets("office_0", network)
        zones = {network.zone_of(t) for t in targets}
        assert zones == {Zone.ENTERPRISE}

    def test_network_vector_respects_firewalls(self, network):
        vector = SharedFolderVector()
        targets = vector.targets("office_0", network)
        assert "plc_0" not in targets


class TestSpoofers:
    def test_constant_spoofer_repeats_last_value(self, rng):
        spoofer = ConstantSpoofer()
        spoofer.record(220.0)
        spoofer.record(230.0)
        assert spoofer.emit(rng) == 230.0
        assert spoofer.emit(rng) == 230.0

    def test_constant_spoofer_without_recording(self, rng):
        assert ConstantSpoofer().emit(rng) == 0.0

    def test_replay_spoofer_loops_recording(self):
        spoofer = ReplaySpoofer(capacity=3, jitter=0.0)
        for v in (1.0, 2.0, 3.0):
            spoofer.record(v)
        rng = np.random.default_rng(0)
        emitted = [spoofer.emit(rng) for _ in range(6)]
        assert emitted == [1.0, 2.0, 3.0, 1.0, 2.0, 3.0]

    def test_replay_spoofer_rolls_window(self):
        spoofer = ReplaySpoofer(capacity=2, jitter=0.0)
        for v in (1.0, 2.0, 3.0):
            spoofer.record(v)
        assert spoofer.samples_recorded == 2
        rng = np.random.default_rng(0)
        assert spoofer.emit(rng) == 2.0

    def test_replay_jitter_varies_output(self):
        spoofer = ReplaySpoofer(capacity=2, jitter=0.5)
        spoofer.record(10.0)
        spoofer.record(10.0)
        rng = np.random.default_rng(1)
        values = {spoofer.emit(rng) for _ in range(10)}
        assert len(values) > 1

    def test_replay_defeats_frozen_check_constant_does_not(self):
        from repro.scada.monitoring import SpoofDetector

        rng = np.random.default_rng(2)
        replay = ReplaySpoofer(capacity=30, jitter=0.3)
        constant = ConstantSpoofer()
        for i in range(30):
            value = 220.0 + 5.0 * np.sin(i / 3.0)
            replay.record(value)
            constant.record(value)

        det_replay = SpoofDetector(window=10)
        det_const = SpoofDetector(window=10)
        replay_findings = [
            det_replay.observe(replay.emit(rng)) for _ in range(20)
        ]
        const_findings = [
            det_const.observe(constant.emit(rng)) for _ in range(20)
        ]
        assert "frozen_signal" in const_findings
        assert "frozen_signal" not in replay_findings

    def test_validation(self):
        with pytest.raises(ValueError):
            ReplaySpoofer(capacity=1)
        with pytest.raises(ValueError):
            ReplaySpoofer(jitter=-1.0)


class TestC2:
    def test_detection_probability_lifted_by_dpi_firewall(
        self, catalog
    ):
        from repro.scada.topologies import scope_cooling_topology

        c2 = C2Channel(base_detection_probability=0.02)
        basic = scope_cooling_topology()
        p_basic = c2.detection_probability(basic, catalog)
        dpi = scope_cooling_topology()
        dpi.host("fw_outer").install(
            ComponentKind.FIREWALL_SOFTWARE, "fw_dpi"
        )
        p_dpi = c2.detection_probability(dpi, catalog)
        assert p_dpi > p_basic

    def test_first_detection_time_respects_horizon(self, network, catalog):
        c2 = C2Channel(beacon_interval=1.0, base_detection_probability=1.0)
        rng = np.random.default_rng(0)
        t = c2.first_detection_time(0.0, 100.0, network, catalog, rng)
        assert t == pytest.approx(1.0)

    def test_no_detection_when_probability_zero(self, network, catalog):
        c2 = C2Channel(beacon_interval=1.0, base_detection_probability=0.0)
        rng = np.random.default_rng(0)
        assert c2.first_detection_time(0.0, 50.0, network, catalog, rng) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            C2Channel(beacon_interval=0.0)
        with pytest.raises(ValueError):
            C2Channel(base_detection_probability=1.5)


class TestProfiles:
    def test_stuxnet_profile_shape(self):
        threat = stuxnet_like()
        assert threat.goal == "impair"
        assert threat.requires_engineering_host
        names = {v.name for v in threat.vectors}
        assert {"usb", "shared_folder", "print_spooler"} <= names

    def test_duqu_profile_shape(self):
        threat = duqu_like()
        assert threat.goal == "exfiltrate"
        assert threat.make_spoofer() is None

    def test_flame_profile_shape(self):
        threat = flame_like()
        assert threat.goal == "recon"
        assert 0.0 < threat.recon_fraction <= 1.0

    def test_spoofer_kinds(self):
        assert stuxnet_like().make_spoofer() is not None
        replay = ThreatProfile(name="t", goal="impair", spoofer_kind="replay")
        constant = ThreatProfile(name="t", goal="impair",
                                 spoofer_kind="constant")
        assert type(replay.make_spoofer()).__name__ == "ReplaySpoofer"
        assert type(constant.make_spoofer()).__name__ == "ConstantSpoofer"

    def test_invalid_goal_rejected(self):
        with pytest.raises(ValueError):
            ThreatProfile(name="bad", goal="world_peace")

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            ThreatProfile(name="bad", goal="impair", entry_rate=0.0)

    def test_invalid_spoofer_rejected(self):
        with pytest.raises(ValueError):
            ThreatProfile(name="bad", goal="impair", spoofer_kind="magic")
