"""Smoke tests: the example scripts stay importable and the fast ones run.

Heavy examples (full studies) are exercised by the benchmark harness;
here we make sure every example module parses/imports and the quick ones
execute end to end.
"""

import importlib.util
import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
ALL_EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))
FAST_EXAMPLES = ["plant_sabotage_physics.py"]


def test_examples_directory_populated():
    assert len(ALL_EXAMPLES) >= 6


@pytest.mark.parametrize("name", ALL_EXAMPLES)
def test_example_imports(name):
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(name[:-3], path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)  # import only; main() not called
    assert hasattr(module, "main"), f"{name} must expose main()"


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_fast_example_runs(name):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()
