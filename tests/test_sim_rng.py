"""Tests for reproducible random streams."""

import numpy as np

from repro.sim.rng import RandomStreams, generator_from_seed


class TestReproducibility:
    def test_same_seed_same_stream(self):
        a = RandomStreams(seed=7).stream("x").random(5)
        b = RandomStreams(seed=7).stream("x").random(5)
        assert np.allclose(a, b)

    def test_different_seeds_differ(self):
        a = RandomStreams(seed=7).stream("x").random(5)
        b = RandomStreams(seed=8).stream("x").random(5)
        assert not np.allclose(a, b)

    def test_named_streams_are_independent(self):
        streams = RandomStreams(seed=7)
        a = streams.stream("a").random(5)
        b = streams.stream("b").random(5)
        assert not np.allclose(a, b)

    def test_stream_identity_does_not_depend_on_request_order(self):
        s1 = RandomStreams(seed=3)
        s2 = RandomStreams(seed=3)
        __ = s1.stream("first").random(3)
        a = s1.stream("second").random(3)
        b = s2.stream("second").random(3)  # requested first here
        assert np.allclose(a, b)

    def test_stream_is_cached(self):
        streams = RandomStreams(seed=1)
        assert streams.stream("x") is streams.stream("x")

    def test_root_seed_exposed(self):
        assert RandomStreams(seed=42).root_seed == 42


class TestSpawning:
    def test_spawned_children_are_deterministic(self):
        a = RandomStreams(seed=9).spawn().stream("x").random(4)
        b = RandomStreams(seed=9).spawn().stream("x").random(4)
        assert np.allclose(a, b)

    def test_successive_spawns_differ(self):
        parent = RandomStreams(seed=9)
        a = parent.spawn().stream("x").random(4)
        b = parent.spawn().stream("x").random(4)
        assert not np.allclose(a, b)

    def test_replication_seeds_are_distinct(self):
        streams = RandomStreams(seed=5)
        seeds = list(streams.replication_seeds(50))
        assert len(set(seeds)) == 50

    def test_replication_seeds_reproducible(self):
        a = list(RandomStreams(seed=5).replication_seeds(10))
        b = list(RandomStreams(seed=5).replication_seeds(10))
        assert a == b


class TestHelpers:
    def test_generator_from_seed_reproducible(self):
        a = generator_from_seed(11).random(3)
        b = generator_from_seed(11).random(3)
        assert np.allclose(a, b)
