"""Tests for the streaming out-of-core results pipeline.

Covers the spilling :class:`~repro.results.StreamingTableBuilder` /
:class:`~repro.results.ShardedRecordTable` pair, the running
aggregators (:class:`~repro.results.RunningStats`,
:class:`~repro.results.QuantileSketch`,
:class:`~repro.results.StreamingSummary`), the cache's shard
manifests, and the streaming execution paths end to end (campaign,
measurement plan, scenario suite, session facade) — all pinned against
the exact in-RAM reference within 1e-9.
"""

import gc
import math
import os
import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.results import (
    DEFAULT_MAX_RECORDS_IN_RAM,
    RESPONSE_COLUMNS,
    QuantileSketch,
    RecordTable,
    ResultCache,
    RunningStats,
    ShardedRecordTable,
    StreamingSummary,
    StreamingTableBuilder,
    SuiteStreamingAggregator,
    summarize_records,
)
from repro.results.streaming import TableShard


def response_table(n, seed=0):
    """A deterministic table shaped like the library's response rows."""
    rng = np.random.default_rng(seed)
    return RecordTable(
        {
            "success": rng.integers(0, 2, n).astype(np.float64),
            "tta": rng.exponential(5.0, n),
            "ttsf": rng.exponential(3.0, n),
            "final_ratio": rng.random(n),
        }
    )


def assert_summaries_close(a, b, tol=1e-9):
    assert set(a) == set(b)
    for key in a:
        x, y = a[key], b[key]
        if isinstance(x, float) and math.isnan(x):
            assert isinstance(y, float) and math.isnan(y), key
        else:
            assert x == pytest.approx(y, abs=tol, rel=tol), key


class TestStreamingTableBuilder:
    def test_build_equals_concat(self):
        parts = [response_table(n, seed=n) for n in (7, 0, 13, 1)]
        builder = StreamingTableBuilder(max_records_in_ram=8)
        for part in parts:
            builder.append_table(part)
        assert builder.rows_appended == 21
        built = builder.build()
        assert built.materialize() == RecordTable.concat(parts)

    def test_in_ram_rows_bounded(self):
        builder = StreamingTableBuilder(max_records_in_ram=16)
        for seed in range(6):
            builder.append_table(response_table(50, seed=seed))
            assert builder.buffered_rows <= 16
        table = builder.build()
        assert len(table) == 300
        assert table.in_ram_rows <= 16
        assert len(table.shards) >= 300 // 16

    def test_unbounded_builder_never_spills(self):
        builder = StreamingTableBuilder(max_records_in_ram=None)
        builder.append_table(response_table(100))
        table = builder.build()
        assert table.shards == []
        assert table.in_ram_rows == 100

    def test_append_rows(self):
        builder = StreamingTableBuilder(max_records_in_ram=4)
        builder.append_rows(
            {"x": np.arange(10, dtype=np.float64)}
        )
        table = builder.build()
        assert table.values("x") == [float(i) for i in range(10)]

    def test_build_is_single_use(self):
        builder = StreamingTableBuilder(max_records_in_ram=4)
        builder.append_table(response_table(9))
        builder.build()
        with pytest.raises(ValueError, match="already built"):
            builder.build()

    def test_schema_mismatch_rejected(self):
        builder = StreamingTableBuilder(max_records_in_ram=4)
        builder.append_table(response_table(3))
        with pytest.raises(ValueError):
            builder.append_table(
                RecordTable({"other": np.zeros(2)})
            )

    def test_spill_dir_removed_when_table_collected(self):
        builder = StreamingTableBuilder(max_records_in_ram=4)
        builder.append_table(response_table(32))
        table = builder.build()
        spill_dir = os.path.dirname(table.shards[0].path)
        assert os.path.isdir(spill_dir)
        del table
        gc.collect()
        assert not os.path.exists(spill_dir)


def sharded_copy(table, chunk):
    """Split ``table`` into a ShardedRecordTable of ``chunk``-row parts."""
    builder = StreamingTableBuilder(max_records_in_ram=chunk)
    builder.append_table(table)
    return builder.build()


class TestShardedRecordTableOps:
    def test_streaming_ops_match_materialized(self):
        exact = response_table(101, seed=3)
        table = sharded_copy(exact, 16)
        assert table == exact
        assert table.to_dicts() == exact.to_dicts()
        assert table.row(0) == exact.row(0)
        assert table.row(100) == exact.row(100)
        assert table.values("tta") == exact.values("tta")
        for name in RESPONSE_COLUMNS:
            assert table.mean(name) == pytest.approx(
                exact.mean(name), abs=1e-9
            )

    def test_iter_chunks_respects_bound(self):
        table = sharded_copy(response_table(100), 16)
        chunks = list(table.iter_chunks())
        assert sum(len(c) for c in chunks) == 100
        assert all(len(c) <= 16 for c in chunks)
        assert RecordTable.concat(chunks) == table.materialize()

    def test_filter_where_groupby_match(self):
        exact = response_table(80, seed=5)
        table = sharded_copy(exact, 8)
        mask = np.asarray(exact.column("final_ratio")) > 0.5
        assert table.filter(mask) == exact.filter(mask)
        assert table.where("success", 1.0) == exact.where(
            "success", 1.0
        )
        got = [(k, g.materialize()) for k, g in table.groupby("success")]
        want = list(exact.groupby("success"))
        assert [k for k, _ in got] == [k for k, _ in want]
        assert [g for _, g in got] == [g for _, g in want]

    def test_filter_wrong_mask_shape_rejected(self):
        table = sharded_copy(response_table(10), 4)
        with pytest.raises(ValueError, match="mask"):
            table.filter(np.ones(3, dtype=bool))

    def test_mean_on_object_column_raises(self):
        exact = RecordTable.from_dicts(
            [{"name": "a", "x": 1.0}, {"name": "b", "x": 2.0}]
        )
        table = sharded_copy(exact, 1)
        with pytest.raises(TypeError, match="not numeric"):
            table.mean("name")

    def test_chain_of_tables(self):
        a, b = response_table(30, seed=1), response_table(11, seed=2)
        chained = ShardedRecordTable.chain(
            [sharded_copy(a, 8), b]
        )
        assert chained.materialize() == RecordTable.concat([a, b])

    def test_pickle_degrades_to_plain_table(self):
        exact = response_table(40, seed=9)
        table = sharded_copy(exact, 8)
        loaded = pickle.loads(pickle.dumps(table))
        assert type(loaded) is RecordTable
        assert loaded == exact

    def test_summarize_records_accepts_sharded(self):
        exact = response_table(64, seed=4)
        assert_summaries_close(
            summarize_records(sharded_copy(exact, 8)),
            summarize_records(exact),
        )


class TestRunningStats:
    def test_matches_numpy(self):
        values = np.random.default_rng(1).exponential(2.0, 500)
        stats = RunningStats()
        for v in values:
            stats.update(float(v))
        assert stats.count == 500
        assert stats.mean == pytest.approx(values.mean(), rel=1e-12)
        assert stats.variance == pytest.approx(
            values.var(ddof=1), rel=1e-9
        )
        assert stats.minimum == values.min()
        assert stats.maximum == values.max()

    def test_update_many_equals_update(self):
        values = np.random.default_rng(2).normal(0, 1, 300)
        one = RunningStats()
        one.update_many(values)
        each = RunningStats()
        for v in values:
            each.update(float(v))
        assert one.mean == pytest.approx(each.mean, rel=1e-12)
        assert one.variance == pytest.approx(
            each.variance, rel=1e-9
        )

    def test_merge_equals_single_pass(self):
        values = np.random.default_rng(3).random(200)
        whole = RunningStats()
        whole.update_many(values)
        left, right = RunningStats(), RunningStats()
        left.update_many(values[:73])
        right.update_many(values[73:])
        left.merge(right)
        assert left.count == whole.count
        assert left.mean == pytest.approx(whole.mean, rel=1e-12)
        assert left.variance == pytest.approx(
            whole.variance, rel=1e-9
        )

    def test_ci_matches_mean_ci(self):
        from repro.stats.ci import mean_ci

        values = np.random.default_rng(4).exponential(1.0, 64)
        stats = RunningStats()
        stats.update_many(values)
        exact = mean_ci(values)
        got = stats.ci()
        assert got.estimate == pytest.approx(exact.estimate, abs=1e-9)
        assert got.low == pytest.approx(exact.low, abs=1e-9)
        assert got.high == pytest.approx(exact.high, abs=1e-9)
        assert got.n == exact.n

    def test_dict_round_trip(self):
        stats = RunningStats()
        stats.update_many([1.0, 2.0, 5.0])
        back = RunningStats.from_dict(stats.to_dict())
        assert back.count == stats.count
        assert back.mean == stats.mean
        assert back.variance == pytest.approx(stats.variance)


class TestQuantileSketch:
    def test_quantiles_close_to_exact(self):
        values = np.random.default_rng(5).normal(10.0, 3.0, 5000)
        sketch = QuantileSketch()
        sketch.update_many(values)
        for q in (0.1, 0.25, 0.5, 0.75, 0.9):
            assert sketch.quantile(q) == pytest.approx(
                float(np.quantile(values, q)), abs=0.15
            )

    def test_extremes_are_exact(self):
        values = np.random.default_rng(6).random(3000)
        sketch = QuantileSketch()
        sketch.update_many(values)
        assert sketch.quantile(0.0) == values.min()
        assert sketch.quantile(1.0) == values.max()

    def test_merge_matches_single_sketch(self):
        values = np.random.default_rng(7).exponential(1.0, 4000)
        whole = QuantileSketch()
        whole.update_many(values)
        left, right = QuantileSketch(), QuantileSketch()
        left.update_many(values[:1500])
        right.update_many(values[1500:])
        left.merge(right)
        for q in (0.25, 0.5, 0.9):
            assert left.quantile(q) == pytest.approx(
                whole.quantile(q), abs=0.1
            )

    def test_dict_round_trip(self):
        sketch = QuantileSketch(compression=50)
        sketch.update_many(np.random.default_rng(8).random(1000))
        back = QuantileSketch.from_dict(sketch.to_dict())
        for q in (0.1, 0.5, 0.9):
            assert back.quantile(q) == sketch.quantile(q)


class TestStreamingSummary:
    def test_matches_exact_summary(self):
        exact = response_table(257, seed=11)
        summary = StreamingSummary()
        summary.observe_table(exact)
        assert summary.count == 257
        assert_summaries_close(
            summary.summary(), summarize_records(exact)
        )

    def test_hook_shapes(self):
        table = response_table(3, seed=12)
        a, b = StreamingSummary(), StreamingSummary()
        for i, row in enumerate(table.to_dicts()):
            values = tuple(row[c] for c in RESPONSE_COLUMNS)
            a(i, values)  # (index, result) exec-hook shape
            b(values)  # bare-result shape
        assert a.means() == b.means()
        assert_summaries_close(a.summary(), summarize_records(table))

    def test_merge_matches_whole(self):
        table = response_table(120, seed=13)
        whole = StreamingSummary()
        whole.observe_table(table)
        left, right = StreamingSummary(), StreamingSummary()
        left.observe_table(table.filter(np.arange(120) < 47))
        right.observe_table(table.filter(np.arange(120) >= 47))
        left.merge(right)
        assert_summaries_close(left.summary(), whole.summary())

    def test_quantiles_and_cis(self):
        table = response_table(200, seed=14)
        summary = StreamingSummary(quantiles=True)
        summary.observe_table(table)
        tta = np.asarray(table.column("tta"))
        assert summary.quantile("tta", 0.5) == pytest.approx(
            float(np.quantile(tta, 0.5)), abs=0.5
        )
        ci = summary.ci("tta")
        from repro.stats.ci import mean_ci

        exact = mean_ci(tta)
        assert ci.low == pytest.approx(exact.low, abs=1e-9)
        assert ci.high == pytest.approx(exact.high, abs=1e-9)

    def test_dict_round_trip(self):
        table = response_table(60, seed=15)
        summary = StreamingSummary(quantiles=True)
        summary.observe_table(table)
        back = StreamingSummary.from_dict(summary.to_dict())
        assert_summaries_close(back.summary(), summary.summary())


class TestStreamingEquivalenceProperties:
    """For every chunk size and shard split, streaming == exact."""

    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(min_value=0, max_value=120),
        chunk=st.integers(min_value=1, max_value=50),
        seed=st.integers(min_value=0, max_value=10),
    )
    def test_builder_split_is_identity(self, n, chunk, seed):
        exact = response_table(n, seed=seed)
        assert sharded_copy(exact, chunk).materialize() == exact

    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=150),
        chunk=st.integers(min_value=1, max_value=64),
        seed=st.integers(min_value=0, max_value=10),
    )
    def test_streaming_summary_matches_exact(self, n, chunk, seed):
        exact = response_table(n, seed=seed)
        summary = StreamingSummary()
        for start in range(0, n, chunk):
            mask = (np.arange(n) >= start) & (
                np.arange(n) < start + chunk
            )
            summary.observe_table(exact.filter(mask))
        assert_summaries_close(
            summary.summary(), summarize_records(exact)
        )

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=100),
        split=st.integers(min_value=1, max_value=99),
        seed=st.integers(min_value=0, max_value=10),
    )
    def test_merged_summaries_match_whole(self, n, split, seed):
        split = min(split, n - 1)
        exact = response_table(n, seed=seed)
        whole = StreamingSummary()
        whole.observe_table(exact)
        left, right = StreamingSummary(), StreamingSummary()
        left.observe_table(exact.filter(np.arange(n) < split))
        right.observe_table(exact.filter(np.arange(n) >= split))
        left.merge(right)
        assert_summaries_close(left.summary(), whole.summary())


class TestCacheShardManifests:
    def test_sharded_round_trip_is_lazy(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        exact = response_table(100, seed=20)
        cache.store("k", sharded_copy(exact, 16), {"note": "x"})
        loaded, meta = cache.load("k")
        assert meta == {"note": "x"}
        assert isinstance(loaded, ShardedRecordTable)
        assert loaded.in_ram_rows <= 16
        assert loaded.materialize() == exact
        assert cache.contains("k")

    def test_shard_files_on_disk(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.store("k", sharded_copy(response_table(64), 8), {})
        shard_files = [
            f for f in os.listdir(str(tmp_path)) if ".shard" in f
        ]
        assert len(shard_files) == 8

    def test_torn_manifest_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.store("k", sharded_copy(response_table(64), 8), {})
        victim = sorted(
            f for f in os.listdir(str(tmp_path)) if ".shard" in f
        )[3]
        os.remove(os.path.join(str(tmp_path), victim))
        assert not cache.contains("k")
        assert cache.load("k") is None

    def test_plain_tables_unaffected(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        exact = response_table(10, seed=21)
        cache.store("plain", exact, {"a": 1})
        loaded, meta = cache.load("plain")
        assert type(loaded) is RecordTable
        assert loaded == exact
        assert meta == {"a": 1}

    def test_reserved_meta_key_rejected(self, tmp_path):
        from repro.results.cache import SHARD_MANIFEST_KEY

        cache = ResultCache(str(tmp_path))
        with pytest.raises(ValueError, match="reserved"):
            cache.store(
                "k", response_table(1), {SHARD_MANIFEST_KEY: {}}
            )


class TestExecCollectFalse:
    def test_hook_order_and_empty_return(self):
        from repro.exec.runner import ExperimentRunner

        for backend in ("serial", "thread"):
            runner = ExperimentRunner(backend=backend, n_workers=4)
            seen = []
            out = runner.map(
                _square,
                [(i,) for i in range(20)],
                on_result=lambda i, r: seen.append((i, r)),
                collect=False,
            )
            assert out == []
            assert seen == [(i, i * i) for i in range(20)]

    def test_collect_true_unchanged(self):
        from repro.exec.runner import ExperimentRunner

        runner = ExperimentRunner(backend="thread", n_workers=4)
        assert runner.map(_square, [(i,) for i in range(10)]) == [
            i * i for i in range(10)
        ]


def _square(x):
    return x * x


class TestStreamingExecutionPaths:
    """End-to-end: streaming runs reproduce the in-RAM reference."""

    def _campaign(self):
        from repro.scenarios.registry import SCENARIOS

        scenario = SCENARIOS.get("smoke")
        from repro.attacks.campaign import AttackCampaign

        return AttackCampaign(
            scenario.build_network(),
            scenario.build_catalog(),
            scenario.build_threat(),
            scenario.build_campaign_config(),
        )

    def test_campaign_streaming_bit_identical(self):
        campaign = self._campaign()
        exact = campaign.run_batch_table(40, rng=11)
        streamed = self._campaign().run_batch_table(
            40, rng=11, max_records_in_ram=8
        )
        assert isinstance(streamed, ShardedRecordTable)
        assert streamed.in_ram_rows <= 8
        assert streamed.materialize() == exact

    def test_campaign_aggregators_fed_in_both_modes(self):
        summary_default = StreamingSummary()
        exact = self._campaign().run_batch_table(
            25, rng=12, aggregators=(summary_default,)
        )
        summary_stream = StreamingSummary()
        self._campaign().run_batch_table(
            25, rng=12, max_records_in_ram=8,
            aggregators=(summary_stream,),
        )
        assert summary_default.count == 25
        assert_summaries_close(
            summary_default.summary(), summarize_records(exact)
        )
        assert_summaries_close(
            summary_stream.summary(), summary_default.summary()
        )

    def test_measurement_streaming_identical(self):
        from repro.attacks.campaign import CampaignConfig
        from repro.attacks.profiles import stuxnet_like
        from repro.core.measurement import MeasurementPlan
        from repro.diversity.catalog import default_catalog
        from repro.doe import Factor, full_factorial
        from repro.scada.topologies import scope_cooling_topology

        design = full_factorial(
            [
                Factor(
                    "operating_system",
                    ("win_legacy", "linux_hardened"),
                ),
            ]
        )

        def plan():
            return MeasurementPlan(
                scope_cooling_topology,
                default_catalog(),
                stuxnet_like(),
                design,
                replications=3,
                campaign_config=CampaignConfig(
                    horizon=20.0, tick_interval=0.5
                ),
            )

        exact = plan().execute(7)
        streamed = plan().execute(7, max_records_in_ram=4)
        assert isinstance(streamed.table, ShardedRecordTable)
        assert streamed.table.in_ram_rows <= 4
        assert streamed.table.materialize() == exact.table
        assert streamed.run_indicators == exact.run_indicators
        assert (
            streamed.provenance.spec_digest
            == exact.provenance.spec_digest
        )

    def test_suite_streaming_and_aggregate(self):
        from repro.scenarios.suite import ScenarioSuite

        names = ["smoke"]
        exact = ScenarioSuite(names).run(seed=5)
        aggregate = SuiteStreamingAggregator()
        streamed = ScenarioSuite(names).run(
            seed=5,
            aggregators=(aggregate,),
            max_records_in_ram=8,
        )
        assert streamed.table.materialize() == exact.table
        assert streamed.aggregate is aggregate
        pooled = aggregate.pooled.summary()
        assert_summaries_close(pooled, summarize_records(exact.table))
        assert "smoke" in aggregate.summaries()

    def test_suite_merge_with_empty_shard(self):
        from repro.scenarios.suite import ScenarioSuite, SuiteResult

        real = ScenarioSuite(["smoke"]).run(seed=5)
        empty = SuiteResult(results=[])
        # A shard that got no scenarios has a schema-less empty table;
        # concat's identity fix keeps it mergeable.
        assert len(empty.table) == 0
        merged = SuiteResult.merge([real, empty])
        assert merged.table == real.table
        assert merged.names() == ["smoke"]

    def test_session_stream_knob(self):
        from repro.api import Session

        with Session(backend="serial") as session:
            base = session.campaign("smoke", 30, seed=7)
            streamed = session.campaign(
                "smoke", 30, seed=7, stream=True, max_records_in_ram=8
            )
        assert base.aggregate is None
        assert base.provenance.execution is None
        assert streamed.aggregate is not None
        assert streamed.aggregate.count == 30
        assert streamed.provenance.execution == {
            "stream": True,
            "max_records_in_ram": 8,
        }
        # Execution knobs never enter the digest: streamed and in-RAM
        # runs of the same spec digest identically.
        assert (
            streamed.provenance.spec_digest == base.provenance.spec_digest
        )
        assert streamed.table.materialize() == base.table
        assert_summaries_close(streamed.summary, base.summary)

    def test_default_max_records_constant(self):
        assert DEFAULT_MAX_RECORDS_IN_RAM == 65536
