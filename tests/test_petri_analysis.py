"""Tests for Petri-net analysis."""

import pytest

from repro.petri.analysis import (
    deadlock_markings,
    is_bounded,
    p_invariants,
    reachability_graph,
    t_invariants,
)
from repro.petri.net import PetriNet


@pytest.fixture
def cycle_net():
    net = PetriNet("cycle")
    net.add_place("a", 1)
    net.add_place("b", 0)
    net.add_transition("t1", {"a": 1}, {"b": 1})
    net.add_transition("t2", {"b": 1}, {"a": 1})
    return net


@pytest.fixture
def unbounded_net():
    net = PetriNet("unbounded")
    net.add_place("src", 1)
    net.add_place("sink", 0)
    net.add_transition("gen", {"src": 1}, {"src": 1, "sink": 1})
    return net


class TestReachability:
    def test_cycle_has_two_markings(self, cycle_net):
        graph = reachability_graph(cycle_net)
        assert graph.n_markings == 2
        assert not graph.truncated

    def test_edges_reference_transitions(self, cycle_net):
        graph = reachability_graph(cycle_net)
        names = {t for _, t, _ in graph.edges}
        assert names == {"t1", "t2"}

    def test_truncation_flag_set(self, unbounded_net):
        graph = reachability_graph(unbounded_net, max_markings=10)
        assert graph.truncated
        assert graph.n_markings == 10

    def test_successors(self, cycle_net):
        graph = reachability_graph(cycle_net)
        succ = graph.successors(0)
        assert len(succ) == 1

    def test_initial_override(self, cycle_net):
        from repro.petri.net import Marking

        graph = reachability_graph(cycle_net, initial=Marking({"b": 1}))
        assert graph.markings[0]["b"] == 1


class TestDeadlocksAndBoundedness:
    def test_cycle_has_no_deadlock(self, cycle_net):
        graph = reachability_graph(cycle_net)
        assert deadlock_markings(graph) == []

    def test_terminal_net_deadlocks(self):
        net = PetriNet()
        net.add_place("p", 1)
        net.add_place("end", 0)
        net.add_transition("t", {"p": 1}, {"end": 1})
        graph = reachability_graph(net)
        dead = deadlock_markings(graph)
        assert len(dead) == 1
        assert dead[0]["end"] == 1

    def test_cycle_is_1_bounded(self, cycle_net):
        assert is_bounded(cycle_net, bound=1) is True

    def test_unbounded_net_detected(self, unbounded_net):
        assert is_bounded(unbounded_net, bound=3, max_markings=100) is False

    def test_truncated_exploration_returns_none(self, unbounded_net):
        # With a huge bound the violation is found late; tiny exploration
        # budget makes the check inconclusive.
        assert is_bounded(unbounded_net, bound=10**9, max_markings=5) is None


class TestInvariants:
    def test_cycle_p_invariant_conserves_tokens(self, cycle_net):
        invariants = p_invariants(cycle_net)
        assert {"a": 1, "b": 1} in invariants or {"a": -1, "b": -1} in invariants

    def test_cycle_t_invariant_is_full_cycle(self, cycle_net):
        invariants = t_invariants(cycle_net)
        assert any(
            set(inv) == {"t1", "t2"} and inv["t1"] == inv["t2"]
            for inv in invariants
        )

    def test_p_invariant_certifies_conservation(self, cycle_net):
        # Check the invariant numerically over the reachability graph.
        invariants = p_invariants(cycle_net)
        graph = reachability_graph(cycle_net)
        for inv in invariants:
            totals = {
                sum(w * m[p] for p, w in inv.items())
                for m in graph.markings
            }
            assert len(totals) == 1

    def test_net_without_invariants(self):
        net = PetriNet()
        net.add_place("p", 1)
        net.add_place("q", 0)
        net.add_transition("t", {"p": 1}, {"q": 2})  # not conservative
        invariants = p_invariants(net)
        # The only candidate weight vector would need 1*p = 2*q weights:
        # (2, 1) is a valid invariant, so check it's found and correct.
        graph = reachability_graph(net)
        for inv in invariants:
            totals = {
                sum(w * m[p] for p, w in inv.items()) for m in graph.markings
            }
            assert len(totals) == 1
