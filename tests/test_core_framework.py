"""Tests for modeling, measurement, assessment, study and report."""

import numpy as np
import pytest

from repro.attacks.campaign import CampaignConfig
from repro.attacks.profiles import stuxnet_like
from repro.attacktree.analysis import evaluate as evaluate_tree
from repro.core.assessment import assess
from repro.core.measurement import MeasurementPlan
from repro.core.modeling import (
    attack_tree_for,
    bayesian_attack_graph_for,
    san_model_for,
    stage_probabilities,
)
from repro.core.report import comparison_table, format_series, format_table
from repro.core.study import DiversityStudy
from repro.doe.design import Design, Factor, Run
from repro.san.ctmc import san_to_ctmc
from repro.scada.components import ComponentKind
from repro.scada.topologies import scope_cooling_topology

K = ComponentKind
FAST = CampaignConfig(horizon=80.0, tick_interval=0.5)


class TestStageProbabilities:
    def test_all_stages_present(self, network, catalog, threat):
        probs = stage_probabilities(network, catalog, threat)
        assert set(probs) == {"entry", "escalation", "propagation", "reprogram"}
        assert all(0.0 <= p <= 1.0 for p in probs.values())

    def test_hardening_lowers_probabilities(self, catalog, threat):
        soft = stage_probabilities(
            scope_cooling_topology(), catalog, threat
        )
        hard = stage_probabilities(
            scope_cooling_topology(
                default_os="linux_hardened",
                default_firmware="firmware_signed",
            ),
            catalog,
            threat,
        )
        assert hard["entry"] < soft["entry"]
        assert hard["escalation"] < soft["escalation"]
        assert hard["reprogram"] < soft["reprogram"]


class TestModelBuilders:
    def test_san_model_is_ctmc_analyzable(self, network, catalog, threat):
        model = san_model_for(network, catalog, threat)
        ctmc = san_to_ctmc(model)
        assert ctmc.n_states >= 5

    def test_san_give_up_variant_has_absorbing_failure(
        self, network, catalog, threat
    ):
        model = san_model_for(network, catalog, threat, give_up=True)
        ctmc = san_to_ctmc(model)
        impair = [
            i for i, s in enumerate(ctmc.states) if dict(s).get("impaired")
        ]
        start = int(np.argmax(ctmc.initial))
        p = ctmc.hitting_probability(impair)[start]
        assert 0.0 < p < 1.0  # give-up makes success uncertain

    def test_hardened_san_has_lower_success(self, catalog, threat):
        def success_prob(net):
            model = san_model_for(net, catalog, threat, give_up=True)
            ctmc = san_to_ctmc(model)
            impair = [
                i for i, s in enumerate(ctmc.states) if dict(s).get("impaired")
            ]
            return ctmc.hitting_probability(impair)[int(np.argmax(ctmc.initial))]

        soft = success_prob(scope_cooling_topology())
        hard = success_prob(
            scope_cooling_topology(
                default_os="linux_hardened",
                default_firmware="firmware_signed",
                default_stack="modbus_variant_b",
            )
        )
        assert hard < soft

    def test_attack_tree_probability_in_unit_interval(
        self, network, catalog, threat
    ):
        tree = attack_tree_for(network, catalog, threat)
        metrics = evaluate_tree(tree)
        assert 0.0 <= metrics.probability <= 1.0
        assert metrics.expected_time > 0.0

    def test_attack_tree_hardening_effect(self, catalog, threat):
        soft = evaluate_tree(
            attack_tree_for(scope_cooling_topology(), catalog, threat)
        ).probability
        hard = evaluate_tree(
            attack_tree_for(
                scope_cooling_topology(
                    default_os="linux_hardened",
                    default_firmware="firmware_signed",
                ),
                catalog,
                threat,
            )
        ).probability
        assert hard < soft

    def test_bayesian_graph_reaches_plc(self, network, catalog, threat):
        graph = bayesian_attack_graph_for(network, catalog, threat)
        p = graph.compromise_probability("plc_0")
        assert 0.0 < p <= 1.0

    def test_bayesian_graph_hardening_effect(self, catalog, threat):
        soft = bayesian_attack_graph_for(
            scope_cooling_topology(), catalog, threat
        ).compromise_probability("plc_0")
        hard = bayesian_attack_graph_for(
            scope_cooling_topology(
                default_os="linux_hardened",
                default_firmware="firmware_signed",
                default_stack="modbus_variant_b",
            ),
            catalog,
            threat,
        ).compromise_probability("plc_0")
        assert hard < soft


@pytest.fixture(scope="module")
def measurement(catalog_module, threat_module):
    factors = [
        Factor("operating_system", ("win_legacy", "linux_hardened")),
        Factor("plc_firmware", ("firmware_common", "firmware_signed")),
    ]
    from repro.doe.factorial import full_factorial

    design = full_factorial(factors)
    plan = MeasurementPlan(
        scope_cooling_topology,
        catalog_module,
        threat_module,
        design,
        replications=10,
        campaign_config=FAST,
    )
    return plan.execute(np.random.default_rng(42))


@pytest.fixture(scope="module")
def catalog_module():
    from repro.diversity.catalog import default_catalog

    return default_catalog()


@pytest.fixture(scope="module")
def threat_module():
    return stuxnet_like()


class TestMeasurement:
    def test_record_count(self, measurement):
        assert len(measurement.records) == 4 * 10

    def test_records_carry_factor_levels(self, measurement):
        for record in measurement.records:
            assert record["operating_system"] in (
                "win_legacy", "linux_hardened",
            )
            assert record["plc_firmware"] in (
                "firmware_common", "firmware_signed",
            )

    def test_responses_present_and_finite(self, measurement):
        for record in measurement.records:
            for response in ("success", "tta", "ttsf", "final_ratio"):
                value = float(record[response])
                assert value == value  # not NaN

    def test_tta_restricted_at_horizon(self, measurement):
        for record in measurement.records:
            assert 0.0 <= float(record["tta"]) <= FAST.horizon

    def test_run_indicators_parallel_to_design(self, measurement):
        assert len(measurement.run_indicators) == measurement.design.n_runs

    def test_hardened_runs_have_higher_tta(self, measurement):
        by_os = {}
        for record in measurement.records:
            by_os.setdefault(record["operating_system"], []).append(
                float(record["tta"])
            )
        assert (
            np.mean(by_os["linux_hardened"]) > np.mean(by_os["win_legacy"])
        )

    def test_zero_replications_rejected(self, catalog_module, threat_module):
        from repro.doe.factorial import full_factorial

        design = full_factorial(
            [Factor("operating_system", ("a", "b"))]
        )
        with pytest.raises(ValueError):
            MeasurementPlan(
                scope_cooling_topology, catalog_module, threat_module,
                design, replications=0,
            )


class TestAssessment:
    def test_allocation_tables_per_response(self, measurement):
        result = assess(measurement)
        assert set(result.anova_tables) == {
            "success", "tta", "ttsf", "final_ratio",
        }

    def test_os_dominates_tta_variance(self, measurement):
        result = assess(measurement)
        ranking = result.ranking("tta")
        assert ranking[0].component == "operating_system"

    def test_recommendations_are_factor_names(self, measurement):
        result = assess(measurement)
        recs = result.recommended_diversification("tta", top=2)
        assert set(recs) <= {"operating_system", "plc_firmware"}

    def test_report_renders(self, measurement):
        result = assess(measurement)
        text = result.format_report()
        assert "Variance allocation" in text
        assert "operating_system" in text

    def test_empty_measurement_rejected(self, measurement):
        import copy

        empty = copy.copy(measurement)
        empty.records = []
        with pytest.raises(ValueError):
            assess(empty)


class TestStudyPipeline:
    def test_full_study_end_to_end(self, catalog):
        study = DiversityStudy(
            network_factory=scope_cooling_topology,
            catalog=catalog,
            threat=stuxnet_like(),
            kinds=[K.OPERATING_SYSTEM, K.PLC_FIRMWARE],
            design_kind="full",
            two_level=True,
            replications=5,
            campaign_config=FAST,
        )
        result = study.execute(np.random.default_rng(3))
        assert result.design.n_runs == 4
        assert len(result.measurement.records) == 20
        report = result.report()
        assert "Step 1" in report and "Step 3" in report

    def test_factor_reduction_to_extremes(self, catalog):
        study = DiversityStudy(
            network_factory=scope_cooling_topology,
            catalog=catalog,
            threat=stuxnet_like(),
            kinds=[K.OPERATING_SYSTEM],
            two_level=True,
        )
        factors = study.build_factors()
        assert len(factors) == 1
        levels = factors[0].levels
        assert len(levels) == 2
        # Weakest first, strongest second by construction.
        assert levels[0] == "win_legacy"

    def test_fractional_design_halves_runs(self, catalog):
        study = DiversityStudy(
            network_factory=scope_cooling_topology,
            catalog=catalog,
            threat=stuxnet_like(),
            kinds=[
                K.OPERATING_SYSTEM,
                K.PLC_FIRMWARE,
                K.PROTOCOL_STACK,
                K.ANTIVIRUS,
            ],
            design_kind="fractional",
        )
        factors = study.build_factors()
        design = study.build_design(factors)
        assert design.n_runs == 2 ** (len(factors) - 1)

    def test_pb_design_small(self, catalog):
        study = DiversityStudy(
            network_factory=scope_cooling_topology,
            catalog=catalog,
            threat=stuxnet_like(),
            design_kind="pb",
        )
        factors = study.build_factors()
        design = study.build_design(factors)
        assert design.n_runs <= 12

    def test_unknown_design_kind_rejected(self, catalog):
        with pytest.raises(ValueError):
            DiversityStudy(
                network_factory=scope_cooling_topology,
                catalog=catalog,
                threat=stuxnet_like(),
                design_kind="magic",
            )

    def test_unknown_backend_rejected_at_construction(self, catalog):
        # A typo'd backend must fail when the study is built, not deep
        # inside execute(); the message names the valid choices.
        with pytest.raises(ValueError, match="serial.*thread.*process"):
            DiversityStudy(
                network_factory=scope_cooling_topology,
                catalog=catalog,
                threat=stuxnet_like(),
                backend="proccess",
            )

    def test_bad_n_workers_rejected_at_construction(self, catalog):
        with pytest.raises(ValueError, match="n_workers"):
            DiversityStudy(
                network_factory=scope_cooling_topology,
                catalog=catalog,
                threat=stuxnet_like(),
                backend="thread",
                n_workers=0,
            )


class TestReportHelpers:
    def test_format_table_alignment(self):
        text = format_table(
            ["name", "value"], [("a", 1.5), ("bb", 2.25)], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]

    def test_format_table_nan_rendered_as_dashes(self):
        text = format_table(["x"], [(float("nan"),)])
        assert "--" in text

    def test_format_series(self):
        text = format_series("k", ["psa"], [(1, 0.5), (2, 0.25)])
        assert "psa" in text

    def test_comparison_table_column_order_and_rows(self):
        text = comparison_table(
            "study",
            {
                "a": {"psa": 0.5, "tta": 10.0},
                "b": {"psa": 0.25, "tta": 20.0},
            },
            columns=("tta", "psa"),
            title="cmp",
        )
        lines = text.splitlines()
        assert lines[0] == "cmp"
        header = lines[1]
        assert header.index("tta") < header.index("psa")
        assert [line.split()[0] for line in lines[3:]] == ["a", "b"]

    def test_comparison_table_default_columns_first_appearance(self):
        text = comparison_table(
            "s",
            {"a": {"x": 1.0}, "b": {"y": 2.0, "x": 3.0}},
        )
        header = text.splitlines()[0]
        assert header.index("x") < header.index("y")

    def test_comparison_table_missing_metric_dashes(self):
        text = comparison_table(
            "s",
            {"a": {"x": 1.0, "y": 2.0}, "b": {"x": 3.0}},
        )
        assert "--" in text
