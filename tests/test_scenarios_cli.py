"""CLI smoke tests: list / show / run, in process via cli.main()."""

import json
import subprocess
import sys

import pytest

from repro.scenarios import SCENARIOS
from repro.scenarios.cli import main


class TestList:
    def test_lists_every_builtin(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in SCENARIOS.names():
            assert name in out

    def test_tag_filter(self, capsys):
        assert main(["list", "--tag", "threat-sweep"]) == 0
        out = capsys.readouterr().out
        assert "cooling_duqu" in out
        assert "smart_grid_stuxnet" not in out

    def test_unknown_tag_fails_and_names_known_tags(self, capsys):
        assert main(["list", "--tag", "nope"]) == 1
        out = capsys.readouterr().out
        assert "threat-sweep" in out


class TestShow:
    def test_show_describes(self, capsys):
        assert main(["show", "cooling_stuxnet"]) == 0
        out = capsys.readouterr().out
        assert "cooling_stuxnet" in out
        assert "stuxnet_like" in out

    def test_show_json_round_trips(self, capsys):
        assert main(["show", "smoke", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["name"] == "smoke"
        assert data["design_kind"] == "full"

    def test_show_unknown_is_error(self, capsys):
        assert main(["show", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err


class TestRun:
    def test_run_smoke_serial(self, capsys):
        assert main(["run", "smoke", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "smoke" in out
        assert "psa" in out
        assert "completed in" in out

    def test_run_by_tag(self, capsys):
        assert main(["run", "--tag", "smoke", "--seed", "7"]) == 0
        assert "smoke" in capsys.readouterr().out

    def test_run_nothing_is_usage_error(self, capsys):
        assert main(["run"]) == 2
        assert "nothing to run" in capsys.readouterr().err

    def test_run_unknown_scenario_is_error(self, capsys):
        assert main(["run", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_run_unknown_tag_is_error_and_names_known_tags(self, capsys):
        # A misspelled tag must not silently shrink the suite.
        assert main(["run", "smoke", "--tag", "thret-sweep"]) == 2
        err = capsys.readouterr().err
        assert "thret-sweep" in err and "threat-sweep" in err


class TestRunCacheAndShards:
    """`run --cache-dir` / `--shard` end to end through main(argv)."""

    @staticmethod
    def _comparison_block(output):
        """The deterministic report part (strips the timing lines)."""
        return "\n".join(
            line
            for line in output.splitlines()
            if not line.startswith(("running ", "completed in"))
        )

    def test_cache_warm_run_repeats_cold_output(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        argv = ["run", "smoke", "--seed", "7", "--cache-dir", cache_dir]
        assert main(argv) == 0
        cold = self._comparison_block(capsys.readouterr().out)
        entries = list((tmp_path / "cache").iterdir())
        assert any(p.suffix == ".npz" for p in entries)
        assert any(p.suffix == ".json" for p in entries)
        # Warm re-run: served from disk, identical comparison report.
        assert main(argv) == 0
        warm = self._comparison_block(capsys.readouterr().out)
        assert warm == cold
        assert len(list((tmp_path / "cache").iterdir())) == len(entries)

    def test_shards_partition_the_suite(self, capsys):
        assert main(
            ["run", "smoke", "cooling_stuxnet", "--seed", "3",
             "--shard", "0/2"]
        ) == 0
        first = capsys.readouterr().out
        assert main(
            ["run", "smoke", "cooling_stuxnet", "--seed", "3",
             "--shard", "1/2"]
        ) == 0
        second = capsys.readouterr().out
        assert "smoke" in first and "cooling_stuxnet" not in first
        assert "cooling_stuxnet" in second

    def test_shard_output_matches_full_run_rows(self, capsys):
        # The shard's comparison row equals the full run's row for the
        # same scenario: sharding never changes seeding.
        assert main(
            ["run", "smoke", "cooling_stuxnet", "--seed", "3"]
        ) == 0
        full = capsys.readouterr().out
        assert main(
            ["run", "smoke", "cooling_stuxnet", "--seed", "3",
             "--shard", "1/2"]
        ) == 0
        shard = capsys.readouterr().out
        full_row = next(
            line for line in full.splitlines()
            if line.lstrip().startswith("cooling_stuxnet")
        )
        shard_row = next(
            line for line in shard.splitlines()
            if line.lstrip().startswith("cooling_stuxnet")
        )
        assert full_row == shard_row

    def test_bad_shard_format_is_error(self, capsys):
        assert main(["run", "smoke", "--shard", "nope"]) == 2
        assert "INDEX/COUNT" in capsys.readouterr().err

    def test_out_of_range_shard_is_error(self, capsys):
        assert main(["run", "smoke", "--shard", "5/2"]) == 2
        assert "shard" in capsys.readouterr().err

    def test_cache_dir_with_shards_shares_entries(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        for shard in ("0/2", "1/2"):
            assert main(
                ["run", "smoke", "cooling_stuxnet", "--seed", "5",
                 "--shard", shard, "--cache-dir", cache_dir]
            ) == 0
        capsys.readouterr()
        # The merged cache now answers the full unsharded run warm.
        assert main(
            ["run", "smoke", "cooling_stuxnet", "--seed", "5",
             "--cache-dir", cache_dir]
        ) == 0
        assert "cooling_stuxnet" in capsys.readouterr().out


class TestRunCatalogFlag:
    def test_catalog_dir_scenarios_listed_shown_and_run(
        self, capsys, tmp_path
    ):
        import dataclasses

        spec = dataclasses.replace(
            SCENARIOS.get("smoke"), name="cli_file_scenario"
        )
        (tmp_path / "cli_file_scenario.json").write_text(spec.to_json())
        catalog = str(tmp_path)

        assert main(["list", "--catalog", catalog]) == 0
        assert "cli_file_scenario" in capsys.readouterr().out

        assert main(["show", "cli_file_scenario", "--catalog", catalog]) == 0
        assert "cli_file_scenario" in capsys.readouterr().out

        assert main(["run", "cli_file_scenario", "--seed", "2",
                     "--catalog", catalog]) == 0
        assert "cli_file_scenario" in capsys.readouterr().out
        # The built-in catalog was never mutated.
        assert "cli_file_scenario" not in SCENARIOS

    def test_bad_catalog_dir_is_error(self, capsys):
        assert main(["list", "--catalog", "/nonexistent/dir"]) == 2
        assert "catalog directory" in capsys.readouterr().err


@pytest.mark.scenario
class TestModuleEntryPointAllBackends:
    """`python -m repro.scenarios run smoke` on every backend."""

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_run_smoke(self, backend):
        result = subprocess.run(
            [
                sys.executable, "-m", "repro.scenarios",
                "run", "smoke", "--backend", backend,
                "--n-workers", "2", "--seed", "7",
            ],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert result.returncode == 0, result.stderr
        assert "smoke" in result.stdout
