"""CLI smoke tests: list / show / run, in process via cli.main()."""

import json
import subprocess
import sys

import pytest

from repro.scenarios import SCENARIOS
from repro.scenarios.cli import main


class TestList:
    def test_lists_every_builtin(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in SCENARIOS.names():
            assert name in out

    def test_tag_filter(self, capsys):
        assert main(["list", "--tag", "threat-sweep"]) == 0
        out = capsys.readouterr().out
        assert "cooling_duqu" in out
        assert "smart_grid_stuxnet" not in out

    def test_unknown_tag_fails_and_names_known_tags(self, capsys):
        assert main(["list", "--tag", "nope"]) == 1
        out = capsys.readouterr().out
        assert "threat-sweep" in out


class TestShow:
    def test_show_describes(self, capsys):
        assert main(["show", "cooling_stuxnet"]) == 0
        out = capsys.readouterr().out
        assert "cooling_stuxnet" in out
        assert "stuxnet_like" in out

    def test_show_json_round_trips(self, capsys):
        assert main(["show", "smoke", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["name"] == "smoke"
        assert data["design_kind"] == "full"

    def test_show_unknown_is_error(self, capsys):
        assert main(["show", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err


class TestRun:
    def test_run_smoke_serial(self, capsys):
        assert main(["run", "smoke", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "smoke" in out
        assert "psa" in out
        assert "completed in" in out

    def test_run_by_tag(self, capsys):
        assert main(["run", "--tag", "smoke", "--seed", "7"]) == 0
        assert "smoke" in capsys.readouterr().out

    def test_run_nothing_is_usage_error(self, capsys):
        assert main(["run"]) == 2
        assert "nothing to run" in capsys.readouterr().err

    def test_run_unknown_scenario_is_error(self, capsys):
        assert main(["run", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_run_unknown_tag_is_error_and_names_known_tags(self, capsys):
        # A misspelled tag must not silently shrink the suite.
        assert main(["run", "smoke", "--tag", "thret-sweep"]) == 2
        err = capsys.readouterr().err
        assert "thret-sweep" in err and "threat-sweep" in err


@pytest.mark.scenario
class TestModuleEntryPointAllBackends:
    """`python -m repro.scenarios run smoke` on every backend."""

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_run_smoke(self, backend):
        result = subprocess.run(
            [
                sys.executable, "-m", "repro.scenarios",
                "run", "smoke", "--backend", backend,
                "--n-workers", "2", "--seed", "7",
            ],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert result.returncode == 0, result.stderr
        assert "smoke" in result.stdout
