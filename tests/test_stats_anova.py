"""Tests for the ANOVA engine."""

import numpy as np
import pytest

from repro.stats.anova import anova


def balanced_data(rng, effect_a=3.0, effect_b=0.0, interaction=0.0, reps=6,
                  noise=0.5):
    data = []
    for a in (0, 1):
        for b in (0, 1):
            for _ in range(reps):
                y = (
                    effect_a * a
                    + effect_b * b
                    + interaction * a * b
                    + rng.normal(0, noise)
                )
                data.append({"a": a, "b": b, "y": y})
    return data


class TestDecomposition:
    def test_sums_of_squares_partition_total(self, rng):
        data = balanced_data(rng, effect_a=2.0, effect_b=1.0)
        result = anova(data, "y", ["a", "b"], interactions=[("a", "b")])
        parts = sum(r.ss for r in result.rows) + result.residual_ss
        assert parts == pytest.approx(result.total_ss, rel=1e-9)

    def test_allocations_sum_to_one(self, rng):
        data = balanced_data(rng)
        result = anova(data, "y", ["a", "b"])
        assert sum(result.allocation().values()) == pytest.approx(1.0)

    def test_degrees_of_freedom_add_up(self, rng):
        data = balanced_data(rng)
        result = anova(data, "y", ["a", "b"], interactions=[("a", "b")])
        model_df = sum(r.df for r in result.rows)
        assert model_df + result.residual_df == result.total_df

    def test_dominant_factor_gets_most_allocation(self, rng):
        data = balanced_data(rng, effect_a=5.0, effect_b=0.2)
        result = anova(data, "y", ["a", "b"])
        assert result.row("a").allocation > result.row("b").allocation
        assert result.ranked_sources()[0] == "a"

    def test_large_effect_is_significant(self, rng):
        data = balanced_data(rng, effect_a=5.0)
        result = anova(data, "y", ["a", "b"])
        assert "a" in result.significant()

    def test_null_factor_not_significant(self, rng):
        data = balanced_data(rng, effect_a=5.0, effect_b=0.0)
        result = anova(data, "y", ["a", "b"])
        # b has no true effect: p should usually be large
        assert result.row("b").p > 0.001

    def test_interaction_detected(self, rng):
        data = balanced_data(rng, effect_a=1.0, effect_b=1.0, interaction=4.0,
                             reps=10)
        result = anova(data, "y", ["a", "b"], interactions=[("a", "b")])
        assert result.row("a:b").p < 0.01

    def test_r_squared_reflects_noise(self, rng):
        clean = balanced_data(rng, effect_a=5.0, noise=0.01)
        noisy = balanced_data(rng, effect_a=0.1, noise=5.0)
        r_clean = anova(clean, "y", ["a", "b"]).r_squared
        r_noisy = anova(noisy, "y", ["a", "b"]).r_squared
        assert r_clean > 0.95
        assert r_noisy < 0.5


class TestMultiLevelFactors:
    def test_three_level_factor_has_two_df(self, rng):
        data = []
        for level in ("x", "y", "z"):
            for _ in range(5):
                data.append({"f": level, "resp": rng.normal()})
        result = anova(data, "resp", ["f"])
        assert result.row("f").df == 2

    def test_known_means_recovered_in_ss(self):
        # Deterministic three-group data: SS must match hand computation.
        data = (
            [{"g": "a", "y": 1.0}] * 4
            + [{"g": "b", "y": 2.0}] * 4
            + [{"g": "c", "y": 3.0}] * 4
        )
        result = anova(data, "y", ["g"])
        # Grand mean 2.0; SS_between = 4*((1-2)^2 + 0 + (3-2)^2) = 8.
        assert result.row("g").ss == pytest.approx(8.0)
        assert result.residual_ss == pytest.approx(0.0, abs=1e-9)


class TestValidation:
    def test_empty_data_rejected(self):
        with pytest.raises(ValueError):
            anova([], "y", ["a"])

    def test_no_factors_rejected(self):
        with pytest.raises(ValueError):
            anova([{"y": 1.0}], "y", [])

    def test_single_level_factor_rejected(self):
        data = [{"a": 0, "y": 1.0}, {"a": 0, "y": 2.0}]
        with pytest.raises(ValueError):
            anova(data, "y", ["a"])

    def test_interaction_with_unknown_factor_rejected(self, rng):
        data = balanced_data(rng)
        with pytest.raises(ValueError):
            anova(data, "y", ["a"], interactions=[("a", "c")])

    def test_unknown_row_lookup_raises(self, rng):
        result = anova(balanced_data(rng), "y", ["a", "b"])
        with pytest.raises(KeyError):
            result.row("nonexistent")


class TestFormatting:
    def test_table_contains_all_sources(self, rng):
        result = anova(balanced_data(rng), "y", ["a", "b"],
                       interactions=[("a", "b")])
        text = result.format_table()
        for token in ("a", "b", "a:b", "residual", "total"):
            assert token in text
