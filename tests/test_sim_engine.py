"""Tests for the simulation engine."""

import pytest

from repro.sim.engine import SimulationEngine


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert SimulationEngine().now == 0.0

    def test_events_fire_in_order(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(2.0, lambda ev: fired.append(2.0))
        engine.schedule(1.0, lambda ev: fired.append(1.0))
        engine.run()
        assert fired == [1.0, 2.0]

    def test_clock_advances_to_event_times(self):
        engine = SimulationEngine()
        seen = []
        engine.schedule(1.5, lambda ev: seen.append(engine.now))
        engine.run()
        assert seen == [1.5]

    def test_schedule_in_past_rejected(self):
        engine = SimulationEngine()
        engine.schedule(1.0, lambda ev: None)
        engine.run()
        with pytest.raises(ValueError):
            engine.schedule(0.5)

    def test_schedule_after_uses_relative_delay(self):
        engine = SimulationEngine()
        times = []

        def chain(ev):
            times.append(engine.now)
            if len(times) < 3:
                engine.schedule_after(1.0, chain)

        engine.schedule(1.0, chain)
        engine.run()
        assert times == [1.0, 2.0, 3.0]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            SimulationEngine().schedule_after(-0.1)

    def test_events_scheduled_during_run_fire(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(
            1.0,
            lambda ev: engine.schedule(2.0, lambda e2: fired.append("child")),
        )
        engine.run()
        assert fired == ["child"]


class TestStopConditions:
    def test_empty_reason_when_queue_drains(self):
        engine = SimulationEngine()
        engine.schedule(1.0)
        assert engine.run().reason == "empty"

    def test_horizon_stops_before_late_events(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(5.0, lambda ev: fired.append(5.0))
        stop = engine.run(horizon=2.0)
        assert stop.reason == "horizon"
        assert engine.now == 2.0
        assert fired == []

    def test_horizon_advances_clock_when_queue_empty(self):
        engine = SimulationEngine()
        stop = engine.run(horizon=7.5)
        assert stop.reason == "empty"
        assert engine.now == 7.5

    def test_until_predicate_stops_run(self):
        engine = SimulationEngine()
        count = []
        for t in (1.0, 2.0, 3.0):
            engine.schedule(t, lambda ev: count.append(ev.time))
        stop = engine.run(until=lambda: len(count) >= 2)
        assert stop.reason == "predicate"
        assert count == [1.0, 2.0]

    def test_max_events_caps_run(self):
        engine = SimulationEngine()
        for t in (1.0, 2.0, 3.0):
            engine.schedule(t)
        stop = engine.run(max_events=2)
        assert stop.reason == "max_events"
        assert engine.events_fired == 2

    def test_request_stop_inside_handler(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(1.0, lambda ev: (fired.append(1), engine.request_stop()))
        engine.schedule(2.0, lambda ev: fired.append(2))
        stop = engine.run()
        assert stop.reason == "predicate"
        assert fired == [1]


class TestEngineState:
    def test_cancel_pending_event(self):
        engine = SimulationEngine()
        fired = []
        ev = engine.schedule(1.0, lambda e: fired.append(1))
        engine.cancel(ev)
        engine.run()
        assert fired == []

    def test_reset_clears_state(self):
        engine = SimulationEngine()
        engine.schedule(1.0)
        engine.run()
        engine.reset()
        assert engine.now == 0.0
        assert engine.events_fired == 0
        assert engine.pending == 0

    def test_listener_sees_every_event(self):
        engine = SimulationEngine()
        seen = []
        engine.add_listener(lambda ev: seen.append(ev.time))
        engine.schedule(1.0)
        engine.schedule(2.0)
        engine.run()
        assert seen == [1.0, 2.0]

    def test_pending_counts_live_events(self):
        engine = SimulationEngine()
        engine.schedule(1.0)
        engine.schedule(2.0)
        assert engine.pending == 2

    def test_resume_after_horizon(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(5.0, lambda ev: fired.append(5.0))
        engine.run(horizon=2.0)
        engine.run()
        assert fired == [5.0]


class TestRunEdgeCases:
    def test_listener_invoked_for_request_stop_event(self):
        # The event whose handler requests the stop is still a fired
        # event: listeners must observe it before the loop exits.
        engine = SimulationEngine()
        seen = []
        engine.add_listener(lambda ev: seen.append(ev.time))
        engine.schedule(1.0, lambda ev: engine.request_stop())
        engine.schedule(2.0)
        stop = engine.run()
        assert stop.reason == "predicate"
        assert seen == [1.0]

    def test_until_firing_on_last_event_reports_predicate(self):
        # The predicate and queue exhaustion coincide on the final
        # event; the predicate wins (it is checked first).
        engine = SimulationEngine()
        fired = []
        engine.schedule(1.0, lambda ev: fired.append(ev.time))
        engine.schedule(2.0, lambda ev: fired.append(ev.time))
        stop = engine.run(until=lambda: len(fired) == 2)
        assert stop.reason == "predicate"
        assert stop.time == 2.0
        assert engine.pending == 0

    def test_max_events_wins_when_hit_before_horizon(self):
        engine = SimulationEngine()
        for t in (1.0, 2.0, 3.0, 4.0):
            engine.schedule(t)
        stop = engine.run(horizon=10.0, max_events=2)
        assert stop.reason == "max_events"
        assert engine.now == 2.0
        assert engine.pending == 2

    def test_horizon_wins_when_hit_before_max_events(self):
        engine = SimulationEngine()
        for t in (1.0, 2.0, 30.0):
            engine.schedule(t)
        stop = engine.run(horizon=10.0, max_events=100)
        assert stop.reason == "horizon"
        assert engine.now == 10.0
        assert engine.pending == 1  # the post-horizon event survives

    def test_max_events_is_per_run_not_cumulative(self):
        engine = SimulationEngine()
        for t in (1.0, 2.0, 3.0, 4.0):
            engine.schedule(t)
        assert engine.run(max_events=2).reason == "max_events"
        # A fresh run gets a fresh per-run budget of 2.
        stop = engine.run(max_events=2)
        assert stop.reason == "max_events"
        assert engine.events_fired == 4
        assert engine.run().reason == "empty"

    def test_request_stop_cleared_between_runs(self):
        engine = SimulationEngine()
        engine.schedule(1.0, lambda ev: engine.request_stop())
        engine.schedule(2.0)
        assert engine.run().reason == "predicate"
        # The stale stop request must not abort the next run.
        assert engine.run().reason == "empty"
        assert engine.events_fired == 2
