"""Tests for parametric distributions."""

import numpy as np
import pytest

from repro.stats.distributions import (
    Bernoulli,
    Deterministic,
    Erlang,
    Exponential,
    LogNormal,
    Triangular,
    Uniform,
    Weibull,
)

ALL_DISTRIBUTIONS = [
    Deterministic(2.0),
    Exponential(0.5),
    Uniform(1.0, 3.0),
    Weibull(1.5, 2.0),
    LogNormal(0.0, 0.5),
    Erlang(3, 2.0),
    Triangular(0.0, 1.0, 4.0),
    Bernoulli(0.3),
]


class TestSampleMeansMatchAnalytic:
    @pytest.mark.parametrize("dist", ALL_DISTRIBUTIONS, ids=lambda d: type(d).__name__)
    def test_sample_mean_close_to_analytic(self, dist, rng):
        samples = dist.sample_many(rng, 20000)
        tolerance = 4.0 * np.sqrt(dist.variance() / 20000) + 1e-12
        assert abs(samples.mean() - dist.mean()) < max(tolerance, 0.03)

    @pytest.mark.parametrize("dist", ALL_DISTRIBUTIONS, ids=lambda d: type(d).__name__)
    def test_sample_variance_close_to_analytic(self, dist, rng):
        samples = dist.sample_many(rng, 30000)
        if dist.variance() == 0:
            assert samples.var() == 0
        else:
            assert samples.var() == pytest.approx(dist.variance(), rel=0.15)

    @pytest.mark.parametrize("dist", ALL_DISTRIBUTIONS, ids=lambda d: type(d).__name__)
    def test_scalar_sample_matches_vector_semantics(self, dist, rng):
        value = dist.sample(rng)
        assert isinstance(value, float)


class TestValidation:
    def test_exponential_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            Exponential(0.0)

    def test_uniform_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            Uniform(3.0, 1.0)

    def test_weibull_rejects_nonpositive_shape(self):
        with pytest.raises(ValueError):
            Weibull(0.0, 1.0)

    def test_lognormal_rejects_nonpositive_sigma(self):
        with pytest.raises(ValueError):
            LogNormal(0.0, 0.0)

    def test_erlang_rejects_zero_k(self):
        with pytest.raises(ValueError):
            Erlang(0, 1.0)

    def test_triangular_rejects_mode_outside_range(self):
        with pytest.raises(ValueError):
            Triangular(0.0, 5.0, 4.0)

    def test_bernoulli_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            Bernoulli(1.5)

    def test_deterministic_rejects_negative(self):
        with pytest.raises(ValueError):
            Deterministic(-1.0)


class TestSpecifics:
    def test_deterministic_always_same_value(self, rng):
        d = Deterministic(3.5)
        assert all(d.sample(rng) == 3.5 for _ in range(10))

    def test_only_exponential_flags_memoryless(self):
        assert Exponential(1.0).is_exponential
        assert not Weibull(1.0, 1.0).is_exponential
        assert not Deterministic(1.0).is_exponential

    def test_exponential_mean_is_reciprocal_rate(self):
        assert Exponential(4.0).mean() == 0.25

    def test_weibull_shape_one_equals_exponential_mean(self):
        assert Weibull(1.0, 2.0).mean() == pytest.approx(2.0)

    def test_erlang_is_sum_of_exponentials(self):
        assert Erlang(3, 2.0).mean() == pytest.approx(1.5)

    def test_bernoulli_samples_are_binary(self, rng):
        values = set(Bernoulli(0.5).sample_many(rng, 100))
        assert values <= {0.0, 1.0}

    def test_uniform_samples_within_bounds(self, rng):
        samples = Uniform(2.0, 3.0).sample_many(rng, 1000)
        assert samples.min() >= 2.0
        assert samples.max() <= 3.0

    def test_triangular_samples_within_bounds(self, rng):
        samples = Triangular(1.0, 2.0, 3.0).sample_many(rng, 1000)
        assert samples.min() >= 1.0
        assert samples.max() <= 3.0
