"""Suite-level caching and sharding: determinism and invalidation.

The contract under test: a suite run's per-scenario records are a pure
function of ``(root seed, scenario position, spec)`` — never of backend,
worker count, shard split, or cache state (cold, warm, or shared).
"""

import os

import pytest

from repro.scenarios.registry import SCENARIOS
from repro.scenarios.spec import Scenario
from repro.scenarios.suite import ScenarioSuite, SuiteResult

NAMES = ["smoke", "cooling_duqu"]
SEED = 2013


@pytest.fixture(scope="module", name="reference")
def reference_fixture():
    """The cache-less serial run every variant must reproduce."""
    return ScenarioSuite(NAMES).run(seed=SEED)


class TestCacheDeterminism:
    def test_cold_then_warm_identical(self, tmp_path, reference):
        cache_dir = str(tmp_path)
        cold = ScenarioSuite(NAMES, cache_dir=cache_dir).run(seed=SEED)
        assert cold.records_by_scenario() == reference.records_by_scenario()
        # Every scenario now has a (table, meta) entry pair on disk.
        assert len(os.listdir(cache_dir)) == 2 * len(NAMES)
        warm = ScenarioSuite(NAMES, cache_dir=cache_dir).run(seed=SEED)
        assert warm.records_by_scenario() == reference.records_by_scenario()
        for name in NAMES:
            a, b = cold.by_name(name), warm.by_name(name)
            assert a.table == b.table
            assert a.summary == b.summary
            assert a.top_targets == b.top_targets
            assert (a.design_name, a.n_runs, a.replications) == (
                b.design_name,
                b.n_runs,
                b.replications,
            )

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_warm_cache_identical_across_backends(
        self, tmp_path, reference, backend
    ):
        cache_dir = str(tmp_path)
        ScenarioSuite(NAMES, cache_dir=cache_dir).run(seed=SEED)  # fill
        result = ScenarioSuite(
            NAMES, backend=backend, n_workers=2, cache_dir=cache_dir
        ).run(seed=SEED)
        assert (
            result.records_by_scenario()
            == reference.records_by_scenario()
        )

    def test_different_seed_misses(self, tmp_path, reference):
        cache_dir = str(tmp_path)
        ScenarioSuite(NAMES, cache_dir=cache_dir).run(seed=SEED)
        before = set(os.listdir(cache_dir))
        other = ScenarioSuite(NAMES, cache_dir=cache_dir).run(seed=SEED + 1)
        assert set(os.listdir(cache_dir)) > before  # new entries written
        assert (
            other.records_by_scenario()
            != reference.records_by_scenario()
        )


class TestDigestInvalidation:
    def test_every_spec_field_change_invalidates(self):
        base = SCENARIOS.get("smoke")
        seq = __import__("numpy").random.SeedSequence(1)
        base_key = ScenarioSuite._cache_key(base, seq)
        changed = {
            "replications": base.replications + 1,
            "horizon": base.horizon * 2,
            "tick_interval": base.tick_interval / 2,
            "tick_elision": not base.tick_elision,
            "threat": "duqu_like",
            "design_kind": "pb",
            "two_level": not base.two_level,
            "topology_params": {"n_office_pcs": 3},
            "tags": ("other",),
        }
        for field, value in changed.items():
            spec = Scenario.from_dict({**base.to_dict(), field: value})
            assert ScenarioSuite._cache_key(spec, seq) != base_key, field

    def test_seed_material_changes_key(self):
        import numpy as np

        spec = SCENARIOS.get("smoke")
        a = ScenarioSuite._cache_key(spec, np.random.SeedSequence(1))
        b = ScenarioSuite._cache_key(spec, np.random.SeedSequence(2))
        c = ScenarioSuite._cache_key(
            spec, np.random.SeedSequence(1).spawn(1)[0]
        )
        assert len({a, b, c}) == 3


class TestSharding:
    def test_shards_merge_to_full_run(self, reference):
        parts = [
            ScenarioSuite(NAMES, shard=(index, 2)).run(seed=SEED)
            for index in range(2)
        ]
        merged = SuiteResult.merge(parts)
        assert (
            merged.records_by_scenario()
            == reference.records_by_scenario()
        )

    def test_shard_selects_positions(self):
        suite = ScenarioSuite(NAMES, shard=(1, 2))
        assert suite.run(seed=SEED).names() == [NAMES[1]]

    def test_shards_share_a_cache(self, tmp_path, reference):
        cache_dir = str(tmp_path)
        for index in range(2):
            ScenarioSuite(
                NAMES, cache_dir=cache_dir, shard=(index, 2)
            ).run(seed=SEED)
        # A full warm run over the shard-filled cache executes nothing
        # new and reproduces the reference exactly.
        before = set(os.listdir(cache_dir))
        full = ScenarioSuite(NAMES, cache_dir=cache_dir).run(seed=SEED)
        assert set(os.listdir(cache_dir)) == before
        assert full.records_by_scenario() == reference.records_by_scenario()

    def test_invalid_shard_rejected(self):
        with pytest.raises(ValueError, match="shard"):
            ScenarioSuite(NAMES, shard=(2, 2))
        with pytest.raises(ValueError, match="shard"):
            ScenarioSuite(NAMES, shard=(0, 0))

    def test_merge_rejects_duplicates(self, reference):
        with pytest.raises(ValueError, match="duplicate"):
            SuiteResult.merge([reference, reference])


class TestCacheRobustness:
    def test_readonly_cache_dir_does_not_sink_the_run(self, tmp_path, reference):
        cache_dir = tmp_path / "ro"
        cache_dir.mkdir()
        os.chmod(str(cache_dir), 0o555)
        try:
            result = ScenarioSuite(NAMES, cache_dir=str(cache_dir)).run(
                seed=SEED
            )
        finally:
            os.chmod(str(cache_dir), 0o755)
        assert (
            result.records_by_scenario()
            == reference.records_by_scenario()
        )

    def test_key_includes_library_version(self, monkeypatch):
        import numpy as np

        import repro

        spec = SCENARIOS.get("smoke")
        seq = np.random.SeedSequence(1)
        before = ScenarioSuite._cache_key(spec, seq)
        monkeypatch.setattr(repro, "__version__", "999.0.0")
        assert ScenarioSuite._cache_key(spec, seq) != before


class TestRecordsViewInvalidation:
    def test_table_reassignment_drops_cached_records(self, reference):
        from repro.results import RecordTable

        result = reference.by_name("smoke")
        first = result.records  # materialize + cache
        assert first == result.table.to_dicts()
        result.table = RecordTable.from_dicts([{"success": 1.0}])
        assert result.records == [{"success": 1.0}]

    def test_measurement_table_reassignment_drops_cached_records(self):
        from repro.core.measurement import MeasurementResult
        from repro.doe.design import Design
        from repro.results import RecordTable

        result = MeasurementResult(
            table=RecordTable.from_dicts([{"x": 1.0}]),
            run_indicators=[],
            design=Design(factors=[], runs=[], name="d"),
            replications=1,
        )
        assert result.records == [{"x": 1.0}]
        result.table = RecordTable.from_dicts([{"x": 2.0}])
        assert result.records == [{"x": 2.0}]


class TestUnserializableTables:
    def test_store_skips_instead_of_crashing(self, tmp_path, reference):
        import numpy as np

        from repro.results import RecordTable
        from repro.scenarios.suite import ScenarioRunResult

        suite = ScenarioSuite(NAMES, cache_dir=str(tmp_path))
        tuples = np.empty(1, dtype=object)
        tuples[:] = [(1, 2)]  # not npz-serializable
        bad = ScenarioRunResult(
            scenario=SCENARIOS.get("smoke"),
            table=RecordTable({"level": tuples}),
            summary={},
            top_targets={},
            design_name="d",
            n_runs=1,
            replications=1,
        )
        suite._store_in_cache("0" * 64, bad)  # must not raise
        assert not suite.cache.contains("0" * 64)
        assert not [
            name
            for name in os.listdir(str(tmp_path))
            if name.startswith(".tmp-")
        ]
