"""Tests for the ExperimentRunner and its execution backends."""

import time

import numpy as np
import pytest

from repro.exec import (
    ExperimentRunner,
    WorkUnit,
    available_backends,
    get_backend,
)
from repro.exec.backends import default_chunk_size, make_chunks

BACKENDS = ["serial", "thread", "process"]


# Module-level work functions so the process backend can pickle them.
def _square(x):
    return x * x


def _sleep_inverse(index):
    # Later units finish first: exercises result re-ordering.
    time.sleep(0.002 * (5 - index))
    return index


def _draw_digest(rng):
    return (float(rng.random()), float(rng.standard_normal()))


def _boom(x):
    raise RuntimeError(f"unit {x} failed")


class TestBackendRegistry:
    def test_available_backends(self):
        assert available_backends() == ["serial", "thread", "process"]

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            ExperimentRunner("greenlet")

    def test_unknown_backend_error_names_valid_choices(self):
        # The rejection happens at construction (not first use) and the
        # message lists every valid choice.
        with pytest.raises(ValueError) as exc_info:
            ExperimentRunner("greenlet")
        message = str(exc_info.value)
        for name in ("serial", "thread", "process"):
            assert name in message

    def test_non_string_backend_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown backend"):
            ExperimentRunner(backend=42)

    def test_backend_instance_passthrough(self):
        backend = get_backend("thread")
        assert ExperimentRunner(backend).backend is backend

    def test_pickling_flag(self):
        assert get_backend("process").requires_pickling
        assert not get_backend("serial").requires_pickling
        assert not get_backend("thread").requires_pickling


class TestChunking:
    def test_make_chunks_partitions_in_order(self):
        units = [WorkUnit(i, _square, (i,)) for i in range(7)]
        chunks = make_chunks(units, 3)
        assert [len(c) for c in chunks] == [3, 3, 1]
        assert [u.index for c in chunks for u in c] == list(range(7))

    def test_make_chunks_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            make_chunks([], 0)

    def test_default_chunk_size_targets_four_chunks_per_worker(self):
        assert default_chunk_size(160, 4) == 10
        assert default_chunk_size(3, 8) == 1
        assert default_chunk_size(0, 4) == 1


class TestRunnerValidation:
    def test_bad_worker_count(self):
        with pytest.raises(ValueError):
            ExperimentRunner("thread", n_workers=0)

    def test_bad_chunk_size(self):
        with pytest.raises(ValueError):
            ExperimentRunner("thread", chunk_size=0)

    def test_zero_replications_rejected(self):
        with pytest.raises(ValueError):
            ExperimentRunner().run_replications(_draw_digest, 0, seed=1)

    def test_default_backend_is_serial(self):
        assert ExperimentRunner().backend_name == "serial"


class TestMap:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_map_computes_and_orders(self, backend):
        runner = ExperimentRunner(backend, n_workers=3)
        assert runner.map(_square, [(i,) for i in range(20)]) == [
            i * i for i in range(20)
        ]

    def test_results_ordered_despite_completion_order(self):
        runner = ExperimentRunner("thread", n_workers=5, chunk_size=1)
        assert runner.map(_sleep_inverse, [(i,) for i in range(5)]) == (
            list(range(5))
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_empty_map(self, backend):
        assert ExperimentRunner(backend).map(_square, []) == []

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_worker_exception_propagates(self, backend):
        runner = ExperimentRunner(backend, n_workers=2)
        with pytest.raises(RuntimeError, match="failed"):
            runner.map(_boom, [(1,), (2,)])


class TestReplicationDeterminism:
    REFERENCE = ExperimentRunner("serial").run_replications(
        _draw_digest, 30, seed=424242
    )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_same_seed_same_records_across_backends(self, backend):
        runner = ExperimentRunner(backend, n_workers=4)
        result = runner.run_replications(_draw_digest, 30, seed=424242)
        assert result == self.REFERENCE

    @pytest.mark.parametrize("n_workers", [1, 2, 3, 8])
    def test_same_seed_same_records_across_worker_counts(self, n_workers):
        runner = ExperimentRunner("process", n_workers=n_workers)
        result = runner.run_replications(_draw_digest, 30, seed=424242)
        assert result == self.REFERENCE

    def test_different_seeds_differ(self):
        other = ExperimentRunner().run_replications(
            _draw_digest, 30, seed=424243
        )
        assert other != self.REFERENCE

    def test_generator_seed_is_deterministic(self):
        a = ExperimentRunner().run_replications(
            _draw_digest, 5, seed=np.random.default_rng(9)
        )
        b = ExperimentRunner("thread", n_workers=2).run_replications(
            _draw_digest, 5, seed=np.random.default_rng(9)
        )
        assert a == b

    def test_common_args_are_forwarded(self):
        def _scaled(scale, rng):
            return scale * rng.random()

        tens = ExperimentRunner().run_replications(
            _scaled, 4, seed=3, common_args=(10.0,)
        )
        ones = ExperimentRunner().run_replications(
            _scaled, 4, seed=3, common_args=(1.0,)
        )
        assert tens == [10.0 * x for x in ones]
