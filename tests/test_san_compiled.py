"""Equivalence suite: compiled SAN fast path vs legacy interpreter.

The compiled path consumes the random stream identically to the legacy
interpreter (``rng.choice(n, p=...)`` is a single-uniform inverse-CDF
draw), so from the same seed the two must produce **bit-identical**
completion sequences, markings, times — and leave the generator in the
same state.
"""

import numpy as np
import pytest

from repro.san.builder import SANBuilder
from repro.san.compiled import CompiledSAN, case_cdf
from repro.san.model import (
    Case,
    InputGate,
    OutputGate,
    SANModel,
    simple_case,
)
from repro.san.simulator import SANSimulator
from repro.scenarios.registry import SCENARIOS
from repro.stats.distributions import (
    Deterministic,
    Exponential,
    Weibull,
)


def assert_equivalent(model, horizon, stop=None, seeds=range(15),
                      max_completions=1_000_000):
    """Compiled and legacy runs must match bit-for-bit on every seed."""
    fast = SANSimulator(model, compiled=True)
    slow = SANSimulator(model, compiled=False)
    for seed in seeds:
        rng_fast = np.random.default_rng(seed)
        rng_slow = np.random.default_rng(seed)
        a = fast.simulate(horizon, rng_fast, stop=stop,
                          max_completions=max_completions)
        b = slow.simulate(horizon, rng_slow, stop=stop,
                          max_completions=max_completions)
        assert a.completions == b.completions
        assert a.final_marking == b.final_marking
        assert a.end_time == b.end_time
        assert a.stop_time == b.stop_time or (
            np.isnan(a.stop_time) and np.isnan(b.stop_time)
        )
        # Identical residual generator state: the paths consumed exactly
        # the same draws.
        assert rng_fast.random() == rng_slow.random()


def stage_chain(n=5, p=0.7):
    builder = SANBuilder()
    builder.place("s0", 1)
    for i in range(n):
        builder.place(f"s{i + 1}", 0)
        builder.stage(f"a{i}", f"s{i}", f"s{i + 1}", rate=1.0,
                      success_probability=p)
    return builder.build()


class TestBasicEquivalence:
    def test_stage_chain(self):
        assert_equivalent(stage_chain(), 1000.0,
                          stop=lambda m: m["s5"] > 0)

    def test_stage_chain_no_stop(self):
        assert_equivalent(stage_chain(), 50.0)

    def test_racing_activities_abort(self):
        model = SANModel()
        model.set_initial("shared", 1)
        model.add_timed_activity(
            "fast", Exponential(100.0), input_places={"shared": 1},
            output_places={"a": 1},
        )
        model.add_timed_activity(
            "slow", Exponential(0.01), input_places={"shared": 1},
            output_places={"b": 1},
        )
        assert_equivalent(model, 10_000.0)

    def test_deterministic_distributions(self):
        model = SANModel()
        model.set_initial("x", 1)
        model.add_timed_activity(
            "tick", Deterministic(2.0), input_places={"x": 1},
            output_places={"x": 1},
        )
        model.add_timed_activity(
            "tock", Deterministic(3.0), input_places={"x": 1},
            output_places={"y": 1},
        )
        assert_equivalent(model, 25.0)

    def test_non_memoryless_distribution(self):
        model = SANModel()
        model.set_initial("w", 0)
        model.add_timed_activity(
            "src", Weibull(1.5, 2.0), output_places={"w": 1}
        )
        model.add_timed_activity(
            "sink", Exponential(1.0), input_places={"w": 2},
        )
        assert_equivalent(model, 40.0)


class TestInstantaneousEquivalence:
    def test_priorities_and_weights(self):
        model = SANModel()
        model.set_initial("p", 1)
        model.set_initial("q", 1)
        model.add_timed_activity(
            "t1", Exponential(2.0), input_places={"q": 1},
            output_places={"p": 1},
        )
        model.add_timed_activity(
            "t2", Exponential(1.0), input_places={"p": 2},
            output_places={"q": 1},
        )
        model.add_instantaneous_activity(
            "i1", input_places={"p": 3}, output_places={"q": 2},
            weight=3.0, priority=2,
        )
        model.add_instantaneous_activity(
            "i2", input_places={"p": 3}, output_places={"q": 1},
            weight=1.0, priority=2,
        )
        model.add_instantaneous_activity(
            "i3", input_places={"q": 4}, output_places={"p": 1},
            priority=1,
        )
        assert_equivalent(model, 60.0)

    def test_invalid_case_probabilities_raise_identically(self):
        """Both paths validate [0, 1] range before any draw."""
        for probs in ([1.5, -0.5], [lambda m: 1.5, lambda m: -0.5]):
            model = SANModel()
            model.set_initial("a", 1)
            model.add_timed_activity(
                "bad", Exponential(1.0), input_places={"a": 1},
                cases=(
                    Case(probability=probs[0], output_places=(("b", 1),)),
                    Case(probability=probs[1], output_places=(("c", 1),)),
                ),
            )
            for compiled in (True, False):
                sim = SANSimulator(model, compiled=compiled)
                with pytest.raises(ValueError, match="outside"):
                    sim.simulate(10.0, np.random.default_rng(0))

    def test_instantaneous_loop_raises_in_both(self):
        model = SANModel()
        model.set_initial("a", 1)
        model.add_instantaneous_activity(
            "ping", input_places={"a": 1}, output_places={"b": 1}
        )
        model.add_instantaneous_activity(
            "pong", input_places={"b": 1}, output_places={"a": 1}
        )
        for compiled in (True, False):
            sim = SANSimulator(model, compiled=compiled)
            with pytest.raises(RuntimeError):
                sim.simulate(1.0, np.random.default_rng(0),
                             max_completions=50)


class TestGatesAndMarkingDependence:
    def _gated_model(self):
        model = SANModel()
        model.set_initial("a", 3)
        model.set_initial("b", 0)
        gate = InputGate(
            "g",
            predicate=lambda m: m["a"] >= 1 and m["b"] < 5,
            function=lambda m: m.add("b", 0),
        )

        def drain(m):
            m["b"] = max(0, m["b"] - 1)

        og = OutputGate("og", function=drain)
        model.add_timed_activity(
            "mv",
            lambda m: Exponential(1.0 + m["a"]),
            input_places={"a": 1},
            input_gates=(gate,),
            cases=(
                Case(
                    probability=lambda m: 0.5 if m["a"] > 1 else 1.0,
                    output_places=(("b", 2),),
                    output_gates=(og,),
                    label="x",
                ),
                Case(
                    probability=lambda m: 0.5 if m["a"] > 1 else 0.0,
                    output_places=(("a", 1),),
                    label="y",
                ),
            ),
        )
        model.add_timed_activity(
            "re", Exponential(0.5), input_places={"b": 1},
            output_places={"a": 1},
        )
        return model

    def test_undeclared_gates_and_dynamic_probabilities(self):
        assert_equivalent(self._gated_model(), 200.0)

    def test_declared_guard_reads(self):
        builder = SANBuilder()
        builder.place("src", 2).place("dst", 0).place("fuel", 3)
        gate = builder.predicate_gate(
            lambda m: m["fuel"] > 0, reads=("fuel",)
        )
        builder._model.add_timed_activity(
            "move", Exponential(1.0), input_places={"src": 1},
            input_gates=(gate,), output_places={"dst": 1},
        )
        builder.timed("burn", Exponential(0.8), inputs={"fuel": 1})
        builder.timed("refill", Exponential(0.3), inputs={"dst": 1},
                      outputs={"src": 1, "fuel": 1})
        assert_equivalent(builder.build(), 100.0)

    def test_guard_via_stage(self):
        builder = SANBuilder()
        builder.place("s0", 1).place("s1", 0).place("key", 1)
        builder.stage("a", "s0", "s1", rate=2.0, success_probability=0.6,
                      guard=lambda m: m["key"] > 0)
        builder.timed("drop", Exponential(0.5), inputs={"key": 1})
        assert_equivalent(builder.build(), 80.0)


class TestScenarioCatalogEquivalence:
    """Bit-equivalence across the SAN models of every built-in scenario."""

    @pytest.mark.parametrize("name", SCENARIOS.names())
    def test_builtin_scenario_model(self, name):
        scenario = SCENARIOS.get(name)
        model = scenario.build_san_model(give_up=True)
        assert_equivalent(
            model, 200.0, stop=lambda m: m["impaired"] > 0,
            seeds=range(5),
        )

    def test_retry_variant_on_one_scenario(self):
        model = SCENARIOS.get("smoke").build_san_model(give_up=False)
        assert_equivalent(
            model, 100.0, stop=lambda m: m["impaired"] > 0,
            seeds=range(5),
        )


class TestCompiledStructures:
    def test_compile_is_cached_and_invalidated(self):
        model = stage_chain()
        first = model.compile()
        assert model.compile() is first
        model.set_initial("s0", 2)
        assert model.compile() is not first
        second = model.compile()
        model.add_timed_activity("extra", Exponential(1.0),
                                 input_places={"s0": 1})
        assert model.compile() is not second

    def test_compiled_survives_pickle_roundtrip(self):
        import pickle

        model = stage_chain()
        model.compile()
        clone = pickle.loads(pickle.dumps(model))
        assert clone._compiled is None  # rebuilt lazily on the far side
        assert_equivalent(clone, 100.0, seeds=range(3))

    def test_case_cdf_matches_numpy_choice(self):
        from bisect import bisect_right

        probs = [0.15, 0.25, 0.6]
        cdf = case_cdf(probs)
        for seed in range(50):
            r1 = np.random.default_rng(seed)
            r2 = np.random.default_rng(seed)
            assert int(r1.choice(3, p=probs)) == bisect_right(
                cdf, r2.random()
            )

    def test_dependency_index_covers_reads(self):
        compiled = CompiledSAN(stage_chain())
        # a3 reads s3, which a2 writes: a3 must be indexed under s3.
        readers = compiled.timed_readers["s3"]
        names = {compiled.timed[i].name for i in readers}
        assert "a3" in names

    def test_batch_runner_records_identical_across_paths(self):
        model = stage_chain()
        fast = SANSimulator(model, compiled=True)
        slow = SANSimulator(model, compiled=False)
        runs_fast = fast.batch(100.0, 16, rng=7)
        runs_slow = slow.batch(100.0, 16, rng=7)
        assert [r.completions for r in runs_fast] == [
            r.completions for r in runs_slow
        ]
        assert [r.stop_time for r in runs_fast] == pytest.approx(
            [r.stop_time for r in runs_slow], nan_ok=True
        )
