"""Tests for the attack-campaign simulator."""

import math

import numpy as np
import pytest

from repro.attacks.campaign import AttackCampaign, CampaignConfig
from repro.attacks.profiles import duqu_like, flame_like, stuxnet_like
from repro.attacks.stages import AttackStage
from repro.scada.components import ComponentKind
from repro.scada.topologies import scope_cooling_topology

FAST = CampaignConfig(horizon=150.0, tick_interval=0.5)


@pytest.fixture
def baseline_outcomes(catalog):
    network = scope_cooling_topology()
    campaign = AttackCampaign(network, catalog, stuxnet_like(), FAST)
    return campaign.run_batch(40, np.random.default_rng(1))


class TestOutcomeStructure:
    def test_success_time_nan_iff_unsuccessful(self, baseline_outcomes):
        for outcome in baseline_outcomes:
            assert outcome.success == (outcome.success_time == outcome.success_time)

    def test_stage_times_respect_causal_order(self, baseline_outcomes):
        # INITIAL precedes ACTIVATED precedes ROOT_ACCESS/PROPAGATION;
        # DEVICE_IMPAIRMENT comes last.  (ROOT_ACCESS and PROPAGATION are
        # mutually unordered: a worm may spread before escalating.)
        for outcome in baseline_outcomes:
            st = outcome.stage_times
            if AttackStage.ACTIVATED in st:
                assert st[AttackStage.INITIAL] <= st[AttackStage.ACTIVATED]
            for stage in (AttackStage.ROOT_ACCESS, AttackStage.PROPAGATION):
                if stage in st:
                    assert st[AttackStage.ACTIVATED] <= st[stage]
            if AttackStage.DEVICE_IMPAIRMENT in st:
                assert st[AttackStage.DEVICE_IMPAIRMENT] == max(st.values())

    def test_compromise_before_root(self, baseline_outcomes):
        for outcome in baseline_outcomes:
            for host, t_root in outcome.root_times.items():
                assert outcome.compromise_times[host] <= t_root

    def test_sabotage_requires_root_somewhere(self, baseline_outcomes):
        for outcome in baseline_outcomes:
            if not math.isnan(outcome.sabotage_start):
                assert outcome.root_times
                assert min(outcome.root_times.values()) <= outcome.sabotage_start

    def test_compromised_ratio_monotone(self, baseline_outcomes):
        for outcome in baseline_outcomes[:10]:
            grid = np.linspace(0, outcome.horizon, 20)
            ratios = [outcome.compromised_ratio_at(t) for t in grid]
            assert all(b >= a - 1e-12 for a, b in zip(ratios, ratios[1:]))
            assert all(0.0 <= r <= 1.0 for r in ratios)

    def test_impairment_stage_iff_success(self, baseline_outcomes):
        for outcome in baseline_outcomes:
            has_stage = AttackStage.DEVICE_IMPAIRMENT in outcome.stage_times
            assert has_stage == outcome.success

    def test_trace_contains_compromises(self, baseline_outcomes):
        successful = [o for o in baseline_outcomes if o.success]
        assert successful
        for outcome in successful[:5]:
            assert outcome.trace.of_kind("compromise")


class TestDiversityEffects:
    def test_hardened_system_slows_attack(self, catalog):
        rng = np.random.default_rng(3)
        soft = AttackCampaign(
            scope_cooling_topology(), catalog, stuxnet_like(), FAST
        ).run_batch(40, rng)
        hard = AttackCampaign(
            scope_cooling_topology(
                default_os="linux_hardened",
                default_firmware="firmware_signed",
                default_stack="modbus_variant_b",
            ),
            catalog,
            stuxnet_like(),
            FAST,
        ).run_batch(40, rng)
        soft_times = [o.success_time for o in soft if o.success]
        hard_times = [o.success_time for o in hard if o.success]
        psa_soft = len(soft_times) / len(soft)
        psa_hard = len(hard_times) / len(hard)
        assert psa_hard <= psa_soft
        if soft_times and hard_times:
            assert np.mean(hard_times) > np.mean(soft_times)

    def test_resilient_hosts_reduce_success(self, catalog):
        # Success probability must be compared within an operational
        # window: with unbounded retries any system falls eventually.
        short = CampaignConfig(horizon=30.0, tick_interval=0.5)
        rng = np.random.default_rng(4)
        plain = scope_cooling_topology()
        hardened = scope_cooling_topology()
        hardened.host("eng_ws").resilient = True
        for name in ("plc_0", "plc_1"):
            hardened.host(name).resilient = True
        psa_plain = sum(
            o.success
            for o in AttackCampaign(
                plain, catalog, stuxnet_like(), short
            ).run_batch(40, rng)
        )
        psa_hard = sum(
            o.success
            for o in AttackCampaign(
                hardened, catalog, stuxnet_like(), short
            ).run_batch(40, rng)
        )
        assert psa_hard < psa_plain

    def test_authenticated_sensors_speed_detection(self, catalog):
        rng = np.random.default_rng(5)

        def build(sensor_variant):
            net = scope_cooling_topology()
            for host in net.hosts:
                if host.variant_of(ComponentKind.SENSOR_MODEL) is not None:
                    host.install(ComponentKind.SENSOR_MODEL, sensor_variant)
            return net

        basic = AttackCampaign(
            build("sensor_basic"), catalog, stuxnet_like(), FAST
        ).run_batch(50, rng)
        authed = AttackCampaign(
            build("sensor_authenticated"), catalog, stuxnet_like(), FAST
        ).run_batch(50, rng)

        def detected_fraction(outcomes):
            return np.mean(
                [not math.isnan(o.detection_time) for o in outcomes]
            )

        # Authenticated sensors make spoofing fail, so alarms fire:
        # detection should not get worse.
        assert detected_fraction(authed) >= detected_fraction(basic) - 0.1


class TestGoals:
    def test_duqu_success_without_sabotage(self, catalog):
        rng = np.random.default_rng(6)
        outcomes = AttackCampaign(
            scope_cooling_topology(), catalog, duqu_like(), FAST
        ).run_batch(25, rng)
        successful = [o for o in outcomes if o.success]
        assert successful
        for outcome in successful:
            assert math.isnan(outcome.sabotage_start)

    def test_flame_requires_fractional_compromise(self, catalog):
        rng = np.random.default_rng(7)
        threat = flame_like()
        outcomes = AttackCampaign(
            scope_cooling_topology(), catalog, threat, FAST
        ).run_batch(25, rng)
        for outcome in outcomes:
            if outcome.success:
                ratio = outcome.compromised_ratio_at(outcome.success_time)
                assert ratio >= threat.recon_fraction - 1e-9

    def test_response_enabled_stops_attack_at_detection(self, catalog):
        rng = np.random.default_rng(8)
        config = CampaignConfig(
            horizon=150.0, tick_interval=0.5, response_enabled=True
        )
        outcomes = AttackCampaign(
            scope_cooling_topology(), catalog, stuxnet_like(), config
        ).run_batch(30, rng)
        for outcome in outcomes:
            if not math.isnan(outcome.detection_time) and outcome.success:
                # Success can only precede detection under response.
                assert outcome.success_time <= outcome.detection_time


class TestBatch:
    def test_batch_reproducible_with_same_seed(self, catalog):
        def run(seed):
            return AttackCampaign(
                scope_cooling_topology(), catalog, stuxnet_like(), FAST
            ).run_batch(10, np.random.default_rng(seed))

        a = [(o.success, o.success_time) for o in run(9)]
        b = [(o.success, o.success_time) for o in run(9)]
        assert a == b

    def test_zero_replications_rejected(self, catalog, network, threat):
        campaign = AttackCampaign(network, catalog, threat, FAST)
        with pytest.raises(ValueError):
            campaign.run_batch(0, np.random.default_rng(1))
