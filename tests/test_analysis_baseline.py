"""Baseline mechanics: fingerprints, round-trips, age-out.

The baseline contract is what lets the lint gate ship on a codebase
with legacy findings: matching is by content fingerprint (rule id +
path + offending line text + occurrence), so line-number drift from
unrelated edits never invalidates it, while fixing a finding makes the
entry stale and ``--update-baseline`` ages it out.
"""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.analysis import Baseline, analyze_source

DEFECT = """
import numpy as np
rng = np.random.default_rng()
"""


def findings_for(source: str):
    return analyze_source(textwrap.dedent(source), path="mod.py").findings


class TestFingerprints:
    def test_fingerprints_are_stamped_and_stable(self):
        first = findings_for(DEFECT)
        second = findings_for(DEFECT)
        assert first[0].fingerprint
        assert first[0].fingerprint == second[0].fingerprint

    def test_fingerprint_survives_line_shift(self):
        shifted = "x = 1\ny = 2\n# a comment\n" + textwrap.dedent(DEFECT)
        original = findings_for(DEFECT)
        moved = analyze_source(shifted, path="mod.py").findings
        assert original[0].line != moved[0].line
        assert original[0].fingerprint == moved[0].fingerprint

    def test_fingerprint_depends_on_rule_path_and_text(self):
        base = findings_for(DEFECT)[0]
        other_path = analyze_source(
            textwrap.dedent(DEFECT), path="other.py"
        ).findings[0]
        other_text = findings_for(
            DEFECT.replace("rng =", "generator =")
        )[0]
        assert base.fingerprint != other_path.fingerprint
        assert base.fingerprint != other_text.fingerprint

    def test_identical_lines_get_distinct_occurrences(self):
        twice = findings_for(
            """
            import numpy as np
            def build():
                rng = np.random.default_rng()
                rng = np.random.default_rng()
                return rng
            """
        )
        assert len(twice) == 2
        assert twice[0].fingerprint != twice[1].fingerprint


class TestBaselineRoundTrip:
    def test_save_load_round_trip(self, tmp_path):
        findings = findings_for(DEFECT)
        path = str(tmp_path / "baseline.json")
        Baseline.from_findings(findings).save(path)
        loaded = Baseline.load(path)
        assert len(loaded) == 1
        assert findings[0].fingerprint in loaded.entries

    def test_saved_file_is_stable_json(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        Baseline.from_findings(findings_for(DEFECT)).save(path)
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["tool"] == "repro.analysis"
        assert payload["version"] == 1
        assert len(payload["findings"]) == 1

    def test_malformed_baseline_raises_value_error(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("not json at all")
        with pytest.raises(ValueError, match="cannot read baseline"):
            Baseline.load(str(path))
        missing = tmp_path / "wrong.json"
        missing.write_text('{"some": "other format"}')
        with pytest.raises(ValueError, match="missing 'findings'"):
            Baseline.load(str(missing))


class TestApply:
    def test_partition_new_baselined_stale(self):
        old = findings_for(DEFECT)
        baseline = Baseline.from_findings(old)

        # Same defect (baselined) plus a fresh one (new).
        current = findings_for(DEFECT + "import time\nt = time.time()\n")
        new, baselined, stale = baseline.apply(current)
        assert [f.rule for f in new] == ["DET004"]
        assert [f.rule for f in baselined] == ["DET001"]
        assert stale == []

    def test_fixed_finding_becomes_stale(self):
        baseline = Baseline.from_findings(findings_for(DEFECT))
        new, baselined, stale = baseline.apply([])
        assert new == [] and baselined == []
        assert [f.rule for f in stale] == ["DET001"]

    def test_update_ages_out_stale_entries(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        Baseline.from_findings(findings_for(DEFECT)).save(path)
        # The defect is fixed: a rewrite from current findings drops it.
        Baseline.from_findings([]).save(path)
        assert len(Baseline.load(path)) == 0

    def test_line_shift_keeps_finding_baselined(self):
        baseline = Baseline.from_findings(findings_for(DEFECT))
        shifted = analyze_source(
            "# new header comment\n" + textwrap.dedent(DEFECT),
            path="mod.py",
        ).findings
        new, baselined, stale = baseline.apply(shifted)
        assert new == [] and stale == []
        assert len(baselined) == 1
