"""Property tests for the vectorized inverse-CDF selector.

``choice_batch`` is the primitive every mega-batch engine uses to
resolve case/transition selection for a whole block of lanes at once;
these tests pin it element-wise to the scalar ``bisect_right`` the
compiled simulators perform, so batched selections are bit-identical
to scalar ones given the same uniforms.
"""

import bisect

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.stats.choice import choice_batch, choice_cdf, weighted_choice_cdf

probs = st.lists(
    st.floats(min_value=1e-6, max_value=1.0), min_size=1, max_size=12
)
uniform_lists = st.lists(
    st.floats(min_value=0.0, max_value=1.0), min_size=0, max_size=32
)


@given(probs, uniform_lists)
def test_choice_batch_matches_scalar_bisect(p, uniforms):
    cdf = choice_cdf(p)
    got = choice_batch(cdf, uniforms)
    expected = [bisect.bisect_right(cdf, u) for u in uniforms]
    assert got.tolist() == expected
    assert got.dtype == np.int64


@given(probs, uniform_lists)
def test_choice_batch_matches_weighted_cdf(p, uniforms):
    cdf = weighted_choice_cdf(p)
    got = choice_batch(cdf, uniforms)
    expected = [bisect.bisect_right(cdf, u) for u in uniforms]
    assert got.tolist() == expected


@given(probs, st.data())
def test_choice_batch_boundary_uniforms(p, data):
    """Uniforms exactly equal to a CDF entry select the *next* case —
    the right-sided search convention both implementations share."""
    cdf = choice_cdf(p)
    index = data.draw(st.integers(min_value=0, max_value=len(cdf) - 1))
    u = cdf[index]
    got = choice_batch(cdf, [u])
    assert got[0] == bisect.bisect_right(cdf, u)


def test_choice_batch_preserves_shape():
    cdf = choice_cdf([0.25, 0.25, 0.5])
    block = np.linspace(0.0, 0.999, 12).reshape(3, 4)
    got = choice_batch(cdf, block)
    assert got.shape == (3, 4)
    flat = [bisect.bisect_right(cdf, u) for u in block.ravel()]
    assert got.ravel().tolist() == flat


def test_choice_batch_empty_block():
    got = choice_batch(choice_cdf([1.0]), [])
    assert got.shape == (0,)


def test_choice_batch_matches_generator_choice():
    """End to end: pre-drawn uniforms + choice_batch reproduce
    Generator.choice selections from the same generator state."""
    p = np.array([0.1, 0.2, 0.3, 0.4])
    cdf = choice_cdf(p)
    seed = 20260808
    reference = [
        np.random.default_rng(seed + i).choice(4, p=p) for i in range(64)
    ]
    uniforms = [
        np.random.default_rng(seed + i).random() for i in range(64)
    ]
    assert choice_batch(cdf, uniforms).tolist() == reference


def test_choice_cdf_ends_at_one():
    cdf = choice_cdf([3.0, 1.0, 4.0])
    assert cdf[-1] == pytest.approx(1.0)
    assert all(a <= b for a, b in zip(cdf, cdf[1:]))
