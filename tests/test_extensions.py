"""Tests for the extension features: rotation (moving target) and
cost-constrained diversification portfolios."""

import numpy as np
import pytest

from repro.attacks.profiles import stuxnet_like
from repro.core.portfolio import PortfolioOptimizer
from repro.diversity.catalog import default_catalog
from repro.diversity.psa import (
    AttackerProfile,
    chain_attack,
    rotating_chain,
)
from repro.scada.components import ComponentKind
from repro.scada.topologies import scope_cooling_topology

K = ComponentKind


def psa_of(fn, n=2500):
    return sum(fn()[0] for _ in range(n)) / n


class TestRotation:
    def test_single_variant_behaves_like_identical(self):
        rng = np.random.default_rng(1)
        profile = AttackerProfile()
        rotating = psa_of(
            lambda: rotating_chain(0.5, 3, 1, 1e9, rng, profile)
        )
        identical = psa_of(
            lambda: chain_attack([0.5] * 3, True, rng, profile)
        )
        assert rotating == pytest.approx(identical, abs=0.05)

    def test_rotation_sits_between_identical_and_diverse(self):
        rng = np.random.default_rng(2)
        profile = AttackerProfile()
        identical = psa_of(lambda: chain_attack([0.5] * 4, True, rng, profile))
        diverse = psa_of(lambda: chain_attack([0.5] * 4, False, rng, profile))
        rotating = psa_of(
            lambda: rotating_chain(0.5, 4, 3, 5.0, rng, profile)
        )
        assert diverse - 0.05 <= rotating <= identical + 0.05

    def test_bigger_pool_lowers_psa(self):
        rng = np.random.default_rng(3)
        profile = AttackerProfile()
        small = psa_of(lambda: rotating_chain(0.5, 4, 2, 5.0, rng, profile))
        large = psa_of(lambda: rotating_chain(0.5, 4, 6, 5.0, rng, profile))
        assert large < small + 0.03

    def test_validation(self):
        rng = np.random.default_rng(4)
        with pytest.raises(ValueError):
            rotating_chain(0.5, 2, 0, 1.0, rng)
        with pytest.raises(ValueError):
            rotating_chain(0.5, 2, 2, 0.0, rng)
        with pytest.raises(ValueError):
            rotating_chain(1.5, 2, 2, 1.0, rng)


class TestPortfolio:
    @pytest.fixture(scope="class")
    def optimizer(self):
        return PortfolioOptimizer(
            scope_cooling_topology,
            default_catalog(),
            stuxnet_like(),
            kinds=[K.OPERATING_SYSTEM, K.PLC_FIRMWARE, K.PROTOCOL_STACK],
        )

    def test_cheapest_assignment_feasible(self, optimizer):
        choice = optimizer.evaluate(optimizer.cheapest_assignment())
        assert choice.cost > 0
        assert 0.0 <= choice.success_probability <= 1.0

    def test_exhaustive_beats_or_matches_greedy(self, optimizer):
        base = optimizer.evaluate(optimizer.cheapest_assignment())
        budget = base.cost * 1.4
        exhaustive = optimizer.exhaustive(budget)
        greedy = optimizer.greedy(budget)
        assert exhaustive is not None and greedy is not None
        assert exhaustive.success_probability <= (
            greedy.success_probability + 1e-12
        )

    def test_budget_constraint_respected(self, optimizer):
        base = optimizer.evaluate(optimizer.cheapest_assignment())
        budget = base.cost * 1.25
        choice = optimizer.exhaustive(budget)
        assert choice is not None
        assert choice.cost <= budget

    def test_infeasible_budget_returns_none(self, optimizer):
        assert optimizer.exhaustive(0.0) is None
        assert optimizer.greedy(0.0) is None

    def test_frontier_monotone(self, optimizer):
        base = optimizer.evaluate(optimizer.cheapest_assignment())
        budgets = [base.cost * m for m in (1.0, 1.3, 1.8)]
        frontier = optimizer.efficient_frontier(budgets)
        psas = [c.success_probability for __, c in frontier if c]
        assert psas == sorted(psas, reverse=True)

    def test_more_budget_buys_stronger_variants(self, optimizer):
        base = optimizer.evaluate(optimizer.cheapest_assignment())
        rich = optimizer.exhaustive(base.cost * 2.0)
        assert rich is not None
        assert rich.success_probability < base.success_probability / 10

    def test_empty_kinds_rejected(self):
        with pytest.raises(ValueError):
            PortfolioOptimizer(
                scope_cooling_topology,
                default_catalog(),
                stuxnet_like(),
                kinds=[],
            )


class TestGSPNvsSANCrossValidation:
    """The same stochastic model in both engines must agree."""

    def test_two_stage_chain_agreement(self):
        from repro.petri.gspn import GSPN
        from repro.petri.net import PetriNet
        from repro.san.builder import SANBuilder
        from repro.san.simulator import SANSimulator

        # GSPN: s0 -t1-> s1 -t2-> s2 with rates 2.0, 0.5.
        net = PetriNet()
        net.add_place("s0", 1)
        net.add_place("s1", 0)
        net.add_place("s2", 0)
        net.add_transition("t1", {"s0": 1}, {"s1": 1})
        net.add_transition("t2", {"s1": 1}, {"s2": 1})
        gspn = GSPN(net)
        gspn.add_timed("t1", 2.0)
        gspn.add_timed("t2", 0.5)

        builder = SANBuilder()
        builder.place("s0", 1).place("s1", 0).place("s2", 0)
        builder.stage("t1", "s0", "s1", rate=2.0)
        builder.stage("t2", "s1", "s2", rate=0.5)
        san = SANSimulator(builder.build())

        rng1 = np.random.default_rng(10)
        rng2 = np.random.default_rng(11)
        gspn_result = gspn.transient_analysis(
            1000.0, 800, rng1, stop=lambda m: m["s2"] > 0
        )
        gspn_mean = gspn_result.mean_completion_time().estimate

        san_runs = san.batch(1000.0, 800, rng2, stop=lambda m: m["s2"] > 0)
        san_mean = float(
            np.mean([r.stop_time for r in san_runs if r.stopped])
        )
        expected = 1 / 2.0 + 1 / 0.5
        assert gspn_mean == pytest.approx(expected, rel=0.1)
        assert san_mean == pytest.approx(expected, rel=0.1)
        assert gspn_mean == pytest.approx(san_mean, rel=0.15)
