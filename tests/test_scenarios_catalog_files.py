"""File-based scenario catalogs: load_dir/load_file and registry copy."""

import dataclasses
import json

import pytest

from repro.scenarios import SCENARIOS, Scenario, ScenarioRegistry
from repro.scenarios.registry import get_scenario


def write_spec(path, **overrides):
    spec = dataclasses.replace(SCENARIOS.get("smoke"), **overrides)
    (path).write_text(spec.to_json())
    return spec


class TestCopy:
    def test_copy_is_independent(self):
        original = ScenarioRegistry()
        original.add(Scenario(name="a"))
        duplicate = original.copy()
        duplicate.add(Scenario(name="b"))
        assert "b" in duplicate
        assert "b" not in original
        assert "a" in duplicate

    def test_copy_of_builtins_preserves_contents(self):
        assert SCENARIOS.copy().names() == SCENARIOS.names()


class TestLoadFile:
    def test_round_trips_a_spec(self, tmp_path):
        spec = write_spec(tmp_path / "x.json", name="file_x")
        registry = ScenarioRegistry()
        loaded = registry.load_file(str(tmp_path / "x.json"))
        assert loaded == spec
        assert registry.get("file_x") == spec

    def test_missing_file_is_value_error(self, tmp_path):
        with pytest.raises(ValueError, match="cannot read"):
            ScenarioRegistry().load_file(str(tmp_path / "nope.json"))

    def test_invalid_json_names_the_file(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ValueError, match="bad.json"):
            ScenarioRegistry().load_file(str(bad))

    def test_non_object_json_rejected(self, tmp_path):
        bad = tmp_path / "list.json"
        bad.write_text("[1, 2, 3]")
        with pytest.raises(ValueError, match="JSON object"):
            ScenarioRegistry().load_file(str(bad))

    def test_bad_spec_names_the_file(self, tmp_path):
        bad = tmp_path / "spec.json"
        bad.write_text(json.dumps({"name": "x", "design_kind": "magic"}))
        with pytest.raises(ValueError, match="spec.json"):
            ScenarioRegistry().load_file(str(bad))

    def test_duplicate_name_names_the_file(self, tmp_path):
        write_spec(tmp_path / "dup.json", name="dup")
        registry = ScenarioRegistry()
        registry.load_file(str(tmp_path / "dup.json"))
        with pytest.raises(ValueError, match="redefines"):
            registry.load_file(str(tmp_path / "dup.json"))


class TestLoadDir:
    def test_loads_sorted_and_returns_added(self, tmp_path):
        write_spec(tmp_path / "b.json", name="bbb")
        write_spec(tmp_path / "a.json", name="aaa")
        registry = ScenarioRegistry()
        added = registry.load_dir(str(tmp_path))
        assert [s.name for s in added] == ["aaa", "bbb"]
        assert registry.names() == ["aaa", "bbb"]

    def test_missing_dir_is_value_error(self, tmp_path):
        with pytest.raises(ValueError, match="catalog directory"):
            ScenarioRegistry().load_dir(str(tmp_path / "nope"))

    def test_non_json_files_ignored(self, tmp_path):
        write_spec(tmp_path / "ok.json", name="ok")
        (tmp_path / "notes.txt").write_text("not a spec")
        registry = ScenarioRegistry()
        assert len(registry.load_dir(str(tmp_path))) == 1

    def test_bad_file_makes_whole_load_atomic(self, tmp_path):
        write_spec(tmp_path / "a.json", name="good_a")
        (tmp_path / "z.json").write_text("{broken")
        registry = ScenarioRegistry()
        with pytest.raises(ValueError, match="z.json"):
            registry.load_dir(str(tmp_path))
        # Nothing was half-applied.
        assert len(registry) == 0

    def test_duplicate_against_builtins_rejected(self, tmp_path):
        write_spec(tmp_path / "smoke.json", name="smoke")
        registry = SCENARIOS.copy()
        with pytest.raises(ValueError, match="redefines"):
            registry.load_dir(str(tmp_path))

    def test_loaded_scenarios_execute(self, tmp_path):
        from repro.api import Session

        write_spec(
            tmp_path / "tiny.json", name="tiny_file", replications=1
        )
        session = Session(catalog_dirs=[str(tmp_path)])
        result = session.run("tiny_file", seed=3)
        assert len(result.table) > 0


class TestResponseKnobs:
    """Scenario-level response/recovery knobs (spec + JSON round-trip)."""

    def test_round_trip(self):
        spec = dataclasses.replace(
            SCENARIOS.get("smoke"),
            name="resp",
            response_enabled=True,
            response_delay_rate=0.5,
        )
        again = Scenario.from_json(spec.to_json())
        assert again.response_enabled is True
        assert again.response_delay_rate == 0.5

    def test_build_campaign_config_carries_knobs(self):
        config = SCENARIOS.get("cooling_stuxnet_response")
        campaign_config = config.build_campaign_config()
        assert campaign_config.response_enabled is True
        assert campaign_config.response_delay_rate == 0.5

    def test_delay_without_response_rejected(self):
        with pytest.raises(ValueError, match="response_delay_rate"):
            Scenario(name="x", response_delay_rate=0.5)

    def test_nonpositive_delay_rejected(self):
        with pytest.raises(ValueError, match="response_delay_rate"):
            Scenario(
                name="x", response_enabled=True, response_delay_rate=0.0
            )

    def test_default_specs_keep_response_disabled(self):
        config = get_scenario("cooling_stuxnet").build_campaign_config()
        assert config.response_enabled is False
        assert config.response_delay_rate is None

    def test_describe_mentions_response(self):
        text = SCENARIOS.get("cooling_stuxnet_response").describe()
        assert "response" in text
        assert "0.5" in text
