"""Tests for P/T nets."""

import pytest

from repro.petri.net import Marking, PetriNet


@pytest.fixture
def producer_consumer():
    net = PetriNet("pc")
    net.add_place("free", 2)
    net.add_place("full", 0)
    net.add_transition("produce", {"free": 1}, {"full": 1})
    net.add_transition("consume", {"full": 1}, {"free": 1})
    return net


class TestMarking:
    def test_unknown_place_reads_zero(self):
        assert Marking({})["anything"] == 0

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            Marking({"p": -1})

    def test_equality_ignores_zero_entries(self):
        assert Marking({"p": 0, "q": 1}) == Marking({"q": 1})

    def test_hashable(self):
        assert len({Marking({"p": 1}), Marking({"p": 1})}) == 1

    def test_with_delta(self):
        m = Marking({"p": 2}).with_delta({"p": -1, "q": 3})
        assert m["p"] == 1 and m["q"] == 3

    def test_with_delta_cannot_go_negative(self):
        with pytest.raises(ValueError):
            Marking({"p": 1}).with_delta({"p": -2})

    def test_total(self):
        assert Marking({"a": 2, "b": 3}).total() == 5


class TestStructure:
    def test_duplicate_place_rejected(self):
        net = PetriNet()
        net.add_place("p")
        with pytest.raises(ValueError):
            net.add_place("p")

    def test_duplicate_transition_rejected(self, producer_consumer):
        with pytest.raises(ValueError):
            producer_consumer.add_transition("produce")

    def test_unknown_place_in_transition_rejected(self):
        net = PetriNet()
        net.add_place("p")
        with pytest.raises(ValueError):
            net.add_transition("t", {"ghost": 1})

    def test_zero_weight_arc_rejected(self):
        net = PetriNet()
        net.add_place("p")
        with pytest.raises(ValueError):
            net.add_transition("t", {"p": 0})

    def test_negative_initial_tokens_rejected(self):
        with pytest.raises(ValueError):
            PetriNet().add_place("p", tokens=-1)

    def test_incidence_matrix(self, producer_consumer):
        places, transitions, matrix = producer_consumer.incidence_matrix()
        p_idx = {p: i for i, p in enumerate(places)}
        t_idx = {t: j for j, t in enumerate(transitions)}
        assert matrix[p_idx["free"]][t_idx["produce"]] == -1
        assert matrix[p_idx["full"]][t_idx["produce"]] == 1


class TestFiring:
    def test_enabled_when_inputs_marked(self, producer_consumer):
        m = producer_consumer.initial_marking()
        t = producer_consumer.transition("produce")
        assert producer_consumer.is_enabled(t, m)

    def test_disabled_when_inputs_empty(self, producer_consumer):
        m = producer_consumer.initial_marking()
        t = producer_consumer.transition("consume")
        assert not producer_consumer.is_enabled(t, m)

    def test_fire_moves_tokens(self, producer_consumer):
        m = producer_consumer.initial_marking()
        t = producer_consumer.transition("produce")
        m2 = producer_consumer.fire(t, m)
        assert m2["free"] == 1 and m2["full"] == 1

    def test_fire_disabled_raises(self, producer_consumer):
        m = producer_consumer.initial_marking()
        with pytest.raises(ValueError):
            producer_consumer.fire(producer_consumer.transition("consume"), m)

    def test_arc_weights_respected(self):
        net = PetriNet()
        net.add_place("p", 3)
        net.add_place("q", 0)
        net.add_transition("t", {"p": 2}, {"q": 5})
        m = net.fire(net.transition("t"), net.initial_marking())
        assert m["p"] == 1 and m["q"] == 5

    def test_inhibitor_arc_disables(self):
        net = PetriNet()
        net.add_place("p", 1)
        net.add_place("blocker", 1)
        net.add_transition("t", {"p": 1}, inhibitors={"blocker": 1})
        assert not net.is_enabled(net.transition("t"), net.initial_marking())

    def test_inhibitor_threshold(self):
        net = PetriNet()
        net.add_place("p", 1)
        net.add_place("blocker", 1)
        net.add_transition("t", {"p": 1}, inhibitors={"blocker": 2})
        assert net.is_enabled(net.transition("t"), net.initial_marking())

    def test_enabled_transitions_listing(self, producer_consumer):
        enabled = producer_consumer.enabled_transitions(
            producer_consumer.initial_marking()
        )
        assert [t.name for t in enabled] == ["produce"]
