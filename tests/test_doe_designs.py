"""Tests for the concrete design generators."""

import numpy as np
import pytest

from repro.doe.ccd import central_composite
from repro.doe.design import Factor
from repro.doe.factorial import full_factorial, two_level_full_factorial
from repro.doe.fractional import fractional_factorial
from repro.doe.lhs import latin_hypercube, latin_hypercube_matrix
from repro.doe.plackett_burman import plackett_burman, smallest_pb_runs


class TestFullFactorial:
    def test_run_count_is_product_of_levels(self):
        factors = [Factor("a", (0, 1)), Factor("b", ("x", "y", "z"))]
        assert full_factorial(factors).n_runs == 6

    def test_all_combinations_distinct(self):
        design = two_level_full_factorial(["a", "b", "c"])
        combos = {tuple(sorted(r.as_dict().items())) for r in design.runs}
        assert len(combos) == 8

    def test_balanced_and_orthogonal(self):
        design = two_level_full_factorial(["a", "b", "c", "d"])
        assert design.is_balanced()
        assert design.is_orthogonal()

    def test_empty_factors_rejected(self):
        with pytest.raises(ValueError):
            full_factorial([])


class TestFractionalFactorial:
    def test_half_fraction_run_count(self):
        design, __ = fractional_factorial(
            ["a", "b", "c", "d", "e"], ["E=ABCD"]
        )
        assert design.n_runs == 16

    def test_resolution_v_for_single_four_letter_generator(self):
        __, info = fractional_factorial(["a", "b", "c", "d", "e"], ["E=ABCD"])
        assert info.resolution == 5

    def test_resolution_iii_design(self):
        __, info = fractional_factorial(["a", "b", "c"], ["C=AB"])
        assert info.resolution == 3

    def test_quarter_fraction(self):
        design, info = fractional_factorial(
            ["a", "b", "c", "d", "e", "f"], ["E=ABC", "F=BCD"]
        )
        assert design.n_runs == 16
        assert len(info.defining_relation) == 3

    def test_design_is_orthogonal_and_balanced(self):
        design, __ = fractional_factorial(
            ["a", "b", "c", "d"], ["D=ABC"]
        )
        assert design.is_orthogonal()
        assert design.is_balanced()

    def test_generator_column_equals_product(self):
        design, __ = fractional_factorial(["a", "b", "c", "d"], ["D=ABC"])
        m = design.coded_matrix()
        assert np.allclose(m[:, 3], m[:, 0] * m[:, 1] * m[:, 2])

    def test_aliases_include_generator_word(self):
        __, info = fractional_factorial(["a", "b", "c"], ["C=AB"])
        assert "AB" in info.aliases["C"]

    def test_concrete_levels_applied(self):
        design, __ = fractional_factorial(
            ["os", "fw"], levels=("weak", "strong"), generators=[]
        ) if False else (None, None)
        # levels path exercised through the valid 3-factor call:
        design3, __ = fractional_factorial(
            ["os", "fw", "stack"], ["C=AB"], levels=("weak", "strong")
        )
        seen = {level for run in design3.runs for __, level in run}
        assert seen == {"weak", "strong"}

    def test_malformed_generator_rejected(self):
        with pytest.raises(ValueError):
            fractional_factorial(["a", "b", "c"], ["C:AB"])

    def test_generator_with_unknown_letter_rejected(self):
        with pytest.raises(ValueError):
            fractional_factorial(["a", "b", "c"], ["C=AZ"])

    def test_missing_generator_rejected(self):
        with pytest.raises(ValueError):
            fractional_factorial(["a", "b", "c", "d"], ["C=AB"])

    def test_no_generators_rejected(self):
        with pytest.raises(ValueError):
            fractional_factorial(["a", "b"], [])


class TestPlackettBurman:
    def test_smallest_runs_selection(self):
        assert smallest_pb_runs(7) == 8
        assert smallest_pb_runs(8) == 12
        assert smallest_pb_runs(11) == 12
        assert smallest_pb_runs(19) == 20

    @pytest.mark.parametrize("n_factors", [4, 7, 9, 11, 15, 19])
    def test_pb_designs_orthogonal_and_balanced(self, n_factors):
        factors = [Factor(f"f{i}", (0, 1)) for i in range(n_factors)]
        design = plackett_burman(factors)
        assert design.is_orthogonal()
        assert design.is_balanced()

    def test_run_count_at_most_factors_plus_pad(self):
        factors = [Factor(f"f{i}", (0, 1)) for i in range(9)]
        assert plackett_burman(factors).n_runs == 12

    def test_non_two_level_factor_rejected(self):
        with pytest.raises(ValueError):
            plackett_burman([Factor("bad", (0, 1, 2))])

    def test_too_many_factors_rejected(self):
        factors = [Factor(f"f{i}", (0, 1)) for i in range(30)]
        with pytest.raises(ValueError):
            plackett_burman(factors)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            plackett_burman([])


class TestLatinHypercube:
    def test_stratification_one_point_per_stratum(self, rng):
        n = 16
        m = latin_hypercube_matrix(n, 3, rng)
        for d in range(3):
            strata = np.floor(m[:, d] * n).astype(int)
            assert sorted(strata) == list(range(n))

    def test_values_in_unit_interval(self, rng):
        m = latin_hypercube_matrix(20, 4, rng)
        assert m.min() >= 0.0
        assert m.max() < 1.0

    def test_maximin_improves_or_matches_min_distance(self):
        def min_dist(m):
            diff = m[:, None, :] - m[None, :, :]
            d2 = (diff**2).sum(axis=2)
            np.fill_diagonal(d2, np.inf)
            return np.sqrt(d2.min())

        rng1 = np.random.default_rng(5)
        plain = latin_hypercube_matrix(15, 2, rng1, maximin_restarts=0)
        rng2 = np.random.default_rng(5)
        optimized = latin_hypercube_matrix(15, 2, rng2, maximin_restarts=30)
        assert min_dist(optimized) >= min_dist(plain) - 1e-12

    def test_bounds_scaling(self, rng):
        design, matrix = latin_hypercube(
            ["p", "q"], [(0.1, 0.9), (10.0, 20.0)], 12, rng=rng
        )
        assert matrix.shape == (12, 2)
        assert matrix[:, 0].min() >= 0.1 and matrix[:, 0].max() <= 0.9
        assert matrix[:, 1].min() >= 10.0 and matrix[:, 1].max() <= 20.0

    def test_mismatched_names_bounds_rejected(self, rng):
        with pytest.raises(ValueError):
            latin_hypercube(["a"], [(0, 1), (0, 1)], 5, rng=rng)

    def test_empty_range_rejected(self, rng):
        with pytest.raises(ValueError):
            latin_hypercube(["a"], [(1.0, 1.0)], 5, rng=rng)

    def test_invalid_sizes_rejected(self, rng):
        with pytest.raises(ValueError):
            latin_hypercube_matrix(0, 2, rng)


class TestCentralComposite:
    def test_block_structure(self):
        matrix, info = central_composite(3, center_points=4)
        assert info["n_core"] == 8
        assert info["n_axial"] == 6
        assert info["n_center"] == 4
        assert matrix.shape == (18, 3)

    def test_rotatable_alpha(self):
        __, info = central_composite(2, alpha="rotatable")
        assert info["alpha"] == pytest.approx(2**0.5)
        assert info["rotatable"]

    def test_faced_alpha(self):
        __, info = central_composite(3, alpha="faced")
        assert info["alpha"] == 1.0

    def test_numeric_alpha(self):
        __, info = central_composite(2, alpha="1.5")
        assert info["alpha"] == 1.5

    def test_bad_alpha_rejected(self):
        with pytest.raises(ValueError):
            central_composite(2, alpha="banana")

    def test_single_factor_rejected(self):
        with pytest.raises(ValueError):
            central_composite(1)

    def test_axial_points_on_axes(self):
        matrix, info = central_composite(3, center_points=0)
        axial = matrix[8:14]
        for row in axial:
            assert np.sum(row != 0) == 1
