"""Equivalence suite: compiled GSPN fast path vs legacy interpreter."""

import numpy as np
import pytest

from repro.petri.gspn import GSPN
from repro.petri.net import Marking, PetriNet


def assert_equivalent(build, horizon, stop=None, seeds=range(20)):
    """Both interpreters must match bit-for-bit on every seed.

    Args:
        build: ``build(compiled) -> GSPN`` factory (fresh net per call,
            since rate callables may close over state).
    """
    for seed in seeds:
        rng_fast = np.random.default_rng(seed)
        rng_slow = np.random.default_rng(seed)
        final_a, stop_a, log_a = build(True).simulate(
            horizon, rng_fast, stop=stop
        )
        final_b, stop_b, log_b = build(False).simulate(
            horizon, rng_slow, stop=stop
        )
        assert final_a == final_b
        assert stop_a == stop_b or (
            np.isnan(stop_a) and np.isnan(stop_b)
        )
        assert log_a == log_b
        assert rng_fast.random() == rng_slow.random()


def birth_death(compiled):
    net = PetriNet("bd")
    net.add_place("idle", 1)
    net.add_place("busy", 0)
    net.add_transition("arrive", {"idle": 1}, {"busy": 1})
    net.add_transition("finish", {"busy": 1}, {"idle": 1})
    gspn = GSPN(net, compiled=compiled)
    gspn.add_timed("arrive", 2.0)
    gspn.add_timed("finish", 1.0)
    return gspn


def mixed_net(compiled):
    """Timed + immediate + inhibitors + marking-dependent rates."""
    net = PetriNet()
    net.add_place("idle", 5)
    net.add_place("busy", 0)
    net.add_place("done", 0)
    net.add_place("gatep", 1)
    net.add_transition("arrive", {"idle": 1}, {"busy": 1})
    net.add_transition("finish", {"busy": 1}, {"idle": 1})
    net.add_transition(
        "leak", {"busy": 2}, {"done": 1}, inhibitors={"gatep": 1}
    )
    net.add_transition("open", {"gatep": 1}, {})
    net.add_transition("imm_a", {"done": 1}, {"idle": 1})
    net.add_transition("imm_b", {"done": 1}, {"gatep": 1})
    gspn = GSPN(net, compiled=compiled)
    gspn.add_timed("arrive", lambda m: 1.0 * max(m["idle"], 1))
    gspn.add_timed("finish", lambda m: 2.0 * max(m["busy"], 1))
    gspn.add_timed("leak", 0.5)
    gspn.add_timed("open", 0.2)
    gspn.add_immediate("imm_a", weight=3.0, priority=2)
    gspn.add_immediate("imm_b", weight=1.0, priority=2)
    return gspn


class TestEquivalence:
    def test_static_rate_birth_death(self):
        assert_equivalent(birth_death, 200.0)

    def test_mixed_immediate_inhibitor_dynamic_rates(self):
        assert_equivalent(mixed_net, 40.0)

    def test_stop_predicate(self):
        assert_equivalent(
            mixed_net, 40.0, stop=lambda m: m["done"] > 0
        )

    def test_immediate_priority_split(self):
        def build(compiled):
            net = PetriNet()
            net.add_place("p", 3)
            net.add_place("low", 0)
            net.add_place("high", 0)
            net.add_place("pump", 0)
            net.add_transition("feed", {"pump": 1}, {"p": 1})
            net.add_transition("to_low", {"p": 1}, {"low": 1})
            net.add_transition("to_high", {"p": 1}, {"high": 1})
            gspn = GSPN(net, compiled=compiled)
            gspn.add_timed("feed", 1.0)
            gspn.add_immediate("to_low", weight=1.0, priority=1)
            gspn.add_immediate("to_high", weight=4.0, priority=1)
            return gspn

        assert_equivalent(build, 30.0)

    def test_transient_analysis_matches(self):
        rng_fast = np.random.default_rng(3)
        rng_slow = np.random.default_rng(3)
        fast = birth_death(True).transient_analysis(
            50.0, 40, rng_fast, stop=lambda m: m["busy"] > 0
        )
        slow = birth_death(False).transient_analysis(
            50.0, 40, rng_slow, stop=lambda m: m["busy"] > 0
        )
        assert fast.final_markings == slow.final_markings
        assert fast.completion_times == pytest.approx(
            slow.completion_times, nan_ok=True
        )


class TestCompiledBehaviour:
    def test_undeclared_transition_still_rejected(self):
        net = PetriNet()
        net.add_place("a", 1)
        net.add_transition("t", {"a": 1}, {})
        gspn = GSPN(net)  # compiled default
        with pytest.raises(ValueError):
            gspn.simulate(1.0, np.random.default_rng(0))

    def test_nonpositive_static_rate_raises_at_use(self):
        net = PetriNet()
        net.add_place("a", 1)
        net.add_place("b", 0)
        net.add_transition("bad", {"a": 1}, {"b": 1})
        net.add_transition("ok", {"b": 1}, {"a": 1})
        gspn = GSPN(net)
        gspn.add_timed("bad", 0.0)
        gspn.add_timed("ok", 1.0)
        with pytest.raises(ValueError):
            gspn.simulate(1.0, np.random.default_rng(0))

    def test_compile_invalidated_by_new_declaration(self):
        net = PetriNet()
        net.add_place("a", 1)
        net.add_place("b", 0)
        net.add_transition("t1", {"a": 1}, {"b": 1})
        gspn = GSPN(net)
        gspn.add_timed("t1", 1.0)
        gspn.simulate(1.0, np.random.default_rng(0))
        net.add_transition("t2", {"b": 1}, {"a": 1})
        gspn.add_timed("t2", 1.0)  # must not raise / go stale
        final, _, _ = gspn.simulate(5.0, np.random.default_rng(1))
        assert isinstance(final, Marking)

    def test_fast_marking_constructor_invariants(self):
        marking = Marking._from_nonzero_sorted((("a", 2), ("b", 1)))
        assert marking["a"] == 2
        assert marking == Marking({"b": 1, "a": 2})
        assert hash(marking) == hash(Marking({"a": 2, "b": 1}))
