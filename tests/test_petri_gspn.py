"""Tests for the GSPN simulator."""

import numpy as np
import pytest

from repro.petri.gspn import GSPN
from repro.petri.net import PetriNet


def make_birth_death():
    net = PetriNet("bd")
    net.add_place("idle", 1)
    net.add_place("busy", 0)
    net.add_transition("arrive", {"idle": 1}, {"busy": 1})
    net.add_transition("finish", {"busy": 1}, {"idle": 1})
    return net


class TestDeclarations:
    def test_unknown_transition_rejected(self):
        gspn = GSPN(make_birth_death())
        with pytest.raises(KeyError):
            gspn.add_timed("ghost", 1.0)

    def test_double_declaration_rejected(self):
        gspn = GSPN(make_birth_death())
        gspn.add_timed("arrive", 1.0)
        with pytest.raises(ValueError):
            gspn.add_immediate("arrive")

    def test_undeclared_transition_blocks_simulation(self, rng):
        gspn = GSPN(make_birth_death())
        gspn.add_timed("arrive", 1.0)
        with pytest.raises(ValueError):
            gspn.simulate(10.0, rng)

    def test_nonpositive_weight_rejected(self):
        gspn = GSPN(make_birth_death())
        with pytest.raises(ValueError):
            gspn.add_immediate("arrive", weight=0.0)

    def test_nonpositive_rate_rejected_at_use(self, rng):
        gspn = GSPN(make_birth_death())
        gspn.add_timed("arrive", 0.0)
        gspn.add_timed("finish", 1.0)
        with pytest.raises(ValueError):
            gspn.simulate(1.0, rng)


class TestSimulation:
    def test_stop_predicate_records_time(self, rng):
        gspn = GSPN(make_birth_death())
        gspn.add_timed("arrive", 2.0)
        gspn.add_timed("finish", 1.0)
        final, stop_time, log = gspn.simulate(
            100.0, rng, stop=lambda m: m["busy"] > 0
        )
        assert stop_time == stop_time  # not NaN
        assert final["busy"] == 1

    def test_stop_at_time_zero_when_already_satisfied(self, rng):
        gspn = GSPN(make_birth_death())
        gspn.add_timed("arrive", 2.0)
        gspn.add_timed("finish", 1.0)
        __, stop_time, __log = gspn.simulate(
            10.0, rng, stop=lambda m: m["idle"] > 0
        )
        assert stop_time == 0.0

    def test_log_is_time_ordered(self, rng):
        gspn = GSPN(make_birth_death())
        gspn.add_timed("arrive", 5.0)
        gspn.add_timed("finish", 5.0)
        __, __st, log = gspn.simulate(20.0, rng)
        times = [t for t, _, _ in log]
        assert times == sorted(times)

    def test_immediate_fires_before_timed(self, rng):
        net = PetriNet()
        net.add_place("start", 1)
        net.add_place("mid", 0)
        net.add_place("end", 0)
        net.add_transition("timed", {"start": 1}, {"end": 1})
        net.add_transition("instant", {"start": 1}, {"mid": 1})
        gspn = GSPN(net)
        gspn.add_timed("timed", 1000.0)
        gspn.add_immediate("instant")
        final, __, log = gspn.simulate(10.0, rng)
        assert final["mid"] == 1
        assert log[0][0] == 0.0  # fired at time zero

    def test_immediate_priority_ordering(self, rng):
        net = PetriNet()
        net.add_place("p", 1)
        net.add_place("low", 0)
        net.add_place("high", 0)
        net.add_transition("to_low", {"p": 1}, {"low": 1})
        net.add_transition("to_high", {"p": 1}, {"high": 1})
        gspn = GSPN(net)
        gspn.add_immediate("to_low", priority=1)
        gspn.add_immediate("to_high", priority=9)
        final, __, __log = gspn.simulate(1.0, rng)
        assert final["high"] == 1

    def test_immediate_weight_split(self):
        net = PetriNet()
        net.add_place("p", 1)
        net.add_place("a", 0)
        net.add_place("b", 0)
        net.add_transition("to_a", {"p": 1}, {"a": 1})
        net.add_transition("to_b", {"p": 1}, {"b": 1})
        gspn = GSPN(net)
        gspn.add_immediate("to_a", weight=3.0)
        gspn.add_immediate("to_b", weight=1.0)
        rng = np.random.default_rng(0)
        a_count = 0
        for _ in range(2000):
            final, __, __log = gspn.simulate(1.0, rng)
            a_count += final["a"]
        assert a_count / 2000 == pytest.approx(0.75, abs=0.04)

    def test_marking_dependent_rate(self, rng):
        net = PetriNet()
        net.add_place("jobs", 3)
        net.add_place("done", 0)
        net.add_transition("serve", {"jobs": 1}, {"done": 1})
        gspn = GSPN(net)
        gspn.add_timed("serve", lambda m: 2.0 * m["jobs"])  # load-dependent
        final, __, __log = gspn.simulate(1000.0, rng)
        assert final["done"] == 3

    def test_race_winner_distribution(self):
        # Two competing exponentials with rates 3 and 1: the fast one
        # wins 75% of the time.
        net = PetriNet()
        net.add_place("p", 1)
        net.add_place("fast", 0)
        net.add_place("slow", 0)
        net.add_transition("t_fast", {"p": 1}, {"fast": 1})
        net.add_transition("t_slow", {"p": 1}, {"slow": 1})
        gspn = GSPN(net)
        gspn.add_timed("t_fast", 3.0)
        gspn.add_timed("t_slow", 1.0)
        rng = np.random.default_rng(11)
        wins = 0
        for _ in range(3000):
            final, __, __log = gspn.simulate(1000.0, rng)
            wins += final["fast"]
        assert wins / 3000 == pytest.approx(0.75, abs=0.03)


class TestTransientAnalysis:
    def test_completion_probability_ci(self, rng):
        gspn = GSPN(make_birth_death())
        gspn.add_timed("arrive", 1.0)
        gspn.add_timed("finish", 1.0)
        result = gspn.transient_analysis(
            5.0, 200, rng, stop=lambda m: m["busy"] > 0
        )
        ci = result.completion_probability()
        # P(arrival by t=5) = 1 - e^-5 ≈ 0.993
        assert ci.low <= 0.995
        assert ci.estimate > 0.9

    def test_mean_completion_time(self, rng):
        gspn = GSPN(make_birth_death())
        gspn.add_timed("arrive", 2.0)
        gspn.add_timed("finish", 1.0)
        result = gspn.transient_analysis(
            100.0, 300, rng, stop=lambda m: m["busy"] > 0
        )
        ci = result.mean_completion_time()
        assert ci is not None
        assert ci.contains(0.5) or abs(ci.estimate - 0.5) < 0.1

    def test_zero_replications_rejected(self, rng):
        gspn = GSPN(make_birth_death())
        gspn.add_timed("arrive", 1.0)
        gspn.add_timed("finish", 1.0)
        with pytest.raises(ValueError):
            gspn.transient_analysis(1.0, 0, rng)
