"""Tests for trace recording."""

import pytest

from repro.sim.trace import TraceRecorder


class TestRecording:
    def test_records_accumulate_in_order(self):
        trace = TraceRecorder()
        trace.record(1.0, "compromise", "host_a")
        trace.record(2.0, "compromise", "host_b")
        assert len(trace) == 2
        assert [r.subject for r in trace] == ["host_a", "host_b"]

    def test_decreasing_time_rejected(self):
        trace = TraceRecorder()
        trace.record(2.0, "x", "a")
        with pytest.raises(ValueError):
            trace.record(1.0, "x", "b")

    def test_equal_times_allowed(self):
        trace = TraceRecorder()
        trace.record(1.0, "x", "a")
        trace.record(1.0, "x", "b")
        assert len(trace) == 2

    def test_data_kwargs_stored(self):
        trace = TraceRecorder()
        rec = trace.record(1.0, "compromise", "h", vector="usb")
        assert rec.data == {"vector": "usb"}


class TestQueries:
    @pytest.fixture
    def trace(self):
        t = TraceRecorder()
        t.record(1.0, "compromise", "a")
        t.record(2.0, "alarm", "master")
        t.record(3.0, "compromise", "b")
        t.record(4.0, "compromise", "a")
        return t

    def test_of_kind_filters(self, trace):
        assert len(trace.of_kind("compromise")) == 3

    def test_first_by_kind(self, trace):
        assert trace.first("compromise").subject == "a"

    def test_first_by_kind_and_subject(self, trace):
        assert trace.first("compromise", "b").time == 3.0

    def test_first_missing_returns_none(self, trace):
        assert trace.first("nonexistent") is None

    def test_last_by_kind(self, trace):
        assert trace.last("compromise").time == 4.0

    def test_subjects_deduplicated_in_first_seen_order(self, trace):
        assert trace.subjects("compromise") == ["a", "b"]

    def test_step_function_is_cumulative(self, trace):
        steps = trace.step_function("compromise")
        assert steps == [(1.0, 1), (3.0, 2), (4.0, 3)]

    def test_step_function_empty_kind(self, trace):
        assert trace.step_function("nope") == []
