"""Tests for attack trees."""

import numpy as np
import pytest

from repro.attacktree.analysis import evaluate, monte_carlo
from repro.attacktree.cutsets import minimal_cut_sets
from repro.attacktree.nodes import (
    AndNode,
    KofNNode,
    LeafAttack,
    OrNode,
    SandNode,
)
from repro.attacktree.tree import AttackTree
from repro.stats.distributions import Deterministic, Exponential


def leaf(name, p, cost=1.0, t=0.0):
    return LeafAttack(name, probability=p, cost=cost, time=Deterministic(t))


class TestStructure:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            AttackTree(AndNode("root", [leaf("x", 0.5), leaf("x", 0.6)]))

    def test_shared_subtree_allowed(self):
        shared = leaf("shared", 0.5)
        tree = AttackTree(OrNode("root", [shared, AndNode("mid", [shared])]))
        assert len(tree.leaves()) == 1

    def test_empty_gate_rejected(self):
        with pytest.raises(ValueError):
            AndNode("root", [])

    def test_kofn_bounds_validated(self):
        children = [leaf("a", 0.5), leaf("b", 0.5)]
        with pytest.raises(ValueError):
            KofNNode("root", children, k=3)
        with pytest.raises(ValueError):
            KofNNode("root", children, k=0)

    def test_leaf_probability_validated(self):
        with pytest.raises(ValueError):
            LeafAttack("bad", probability=1.2)

    def test_leaf_cost_validated(self):
        with pytest.raises(ValueError):
            LeafAttack("bad", probability=0.5, cost=-1.0)

    def test_node_lookup(self):
        tree = AttackTree(AndNode("root", [leaf("a", 0.5)]))
        assert tree.node("a").name == "a"
        with pytest.raises(KeyError):
            tree.node("ghost")

    def test_format_tree_renders_all_nodes(self):
        tree = AttackTree(AndNode("root", [leaf("a", 0.5), leaf("b", 0.7)]))
        text = tree.format_tree()
        assert "root" in text and "a" in text and "b" in text


class TestPropagation:
    def test_and_multiplies_probabilities(self):
        tree = AttackTree(AndNode("root", [leaf("a", 0.5), leaf("b", 0.4)]))
        assert evaluate(tree).probability == pytest.approx(0.2)

    def test_or_is_one_minus_product_of_complements(self):
        tree = AttackTree(OrNode("root", [leaf("a", 0.5), leaf("b", 0.4)]))
        assert evaluate(tree).probability == pytest.approx(0.7)

    def test_sand_multiplies_probabilities_and_adds_times(self):
        tree = AttackTree(
            SandNode("root", [leaf("a", 0.5, t=2.0), leaf("b", 0.4, t=3.0)])
        )
        metrics = evaluate(tree)
        assert metrics.probability == pytest.approx(0.2)
        assert metrics.expected_time == pytest.approx(5.0)

    def test_and_takes_max_time(self):
        tree = AttackTree(
            AndNode("root", [leaf("a", 1.0, t=2.0), leaf("b", 1.0, t=7.0)])
        )
        assert evaluate(tree).expected_time == pytest.approx(7.0)

    def test_and_adds_costs(self):
        tree = AttackTree(
            AndNode("root", [leaf("a", 1.0, cost=3.0), leaf("b", 1.0, cost=4.0)])
        )
        assert evaluate(tree).cost == pytest.approx(7.0)

    def test_or_picks_cheapest_viable_branch(self):
        tree = AttackTree(
            OrNode("root", [leaf("pricey", 0.9, cost=100.0),
                            leaf("cheap", 0.2, cost=1.0)])
        )
        assert evaluate(tree).cost == pytest.approx(1.0)

    def test_or_ignores_zero_probability_branch_for_cost(self):
        tree = AttackTree(
            OrNode("root", [leaf("dead", 0.0, cost=0.5),
                            leaf("live", 0.5, cost=9.0)])
        )
        assert evaluate(tree).cost == pytest.approx(9.0)

    def test_kofn_probability_matches_binomial(self):
        children = [leaf(f"l{i}", 0.5) for i in range(4)]
        tree = AttackTree(KofNNode("root", children, k=2))
        # P(X>=2), X~Bin(4, 0.5) = 11/16
        assert evaluate(tree).probability == pytest.approx(11 / 16)

    def test_kofn_cost_is_k_cheapest(self):
        children = [
            leaf("a", 0.5, cost=1.0),
            leaf("b", 0.5, cost=2.0),
            leaf("c", 0.5, cost=9.0),
        ]
        tree = AttackTree(KofNNode("root", children, k=2))
        assert evaluate(tree).cost == pytest.approx(3.0)

    def test_diversity_intuition_and_beats_or(self):
        # The paper's core claim in tree form: forcing the attacker
        # through two diverse steps (AND) yields lower success than
        # letting one of two identical exploits suffice (OR).
        p = 0.5
        and_tree = AttackTree(AndNode("root", [leaf("m1", p), leaf("m2", p)]))
        or_tree = AttackTree(OrNode("root2", [leaf("n1", p), leaf("n2", p)]))
        assert evaluate(and_tree).probability < evaluate(or_tree).probability


class TestMonteCarlo:
    def test_mc_agrees_with_closed_form(self):
        tree = AttackTree(
            OrNode(
                "root",
                [
                    AndNode("left", [leaf("a", 0.6), leaf("b", 0.7)]),
                    leaf("c", 0.2),
                ],
            )
        )
        analytic = evaluate(tree).probability
        ci, __ = monte_carlo(tree, 4000, np.random.default_rng(4))
        assert ci.low <= analytic <= ci.high

    def test_sand_times_add_in_samples(self):
        tree = AttackTree(
            SandNode("root", [leaf("a", 1.0, t=1.0), leaf("b", 1.0, t=2.0)])
        )
        __, times = monte_carlo(tree, 50, np.random.default_rng(1))
        assert all(t == pytest.approx(3.0) for t in times)

    def test_zero_replications_rejected(self):
        tree = AttackTree(leaf("a", 0.5))
        with pytest.raises(ValueError):
            monte_carlo(tree, 0, np.random.default_rng(1))

    def test_kofn_sampling(self):
        children = [leaf(f"l{i}", 0.5) for i in range(4)]
        tree = AttackTree(KofNNode("root", children, k=2))
        ci, __ = monte_carlo(tree, 4000, np.random.default_rng(9))
        assert abs(ci.estimate - 11 / 16) < 0.05


class TestCutSets:
    def test_single_and(self):
        tree = AttackTree(AndNode("root", [leaf("a", 0.5), leaf("b", 0.5)]))
        assert minimal_cut_sets(tree) == [{"a", "b"}]

    def test_single_or(self):
        tree = AttackTree(OrNode("root", [leaf("a", 0.5), leaf("b", 0.5)]))
        assert minimal_cut_sets(tree) == [{"a"}, {"b"}]

    def test_nested_and_or(self):
        tree = AttackTree(
            SandNode(
                "root",
                [OrNode("entry", [leaf("usb", 0.3), leaf("smb", 0.5)]),
                 leaf("payload", 0.8)],
            )
        )
        cut_sets = minimal_cut_sets(tree)
        assert {"usb", "payload"} in cut_sets
        assert {"smb", "payload"} in cut_sets
        assert len(cut_sets) == 2

    def test_absorption_removes_supersets(self):
        shared = leaf("a", 0.5)
        tree = AttackTree(
            OrNode("root", [shared, AndNode("redundant", [shared, leaf("b", 0.5)])])
        )
        assert minimal_cut_sets(tree) == [{"a"}]

    def test_kofn_cut_sets(self):
        children = [leaf("a", 0.5), leaf("b", 0.5), leaf("c", 0.5)]
        tree = AttackTree(KofNNode("root", children, k=2))
        cut_sets = minimal_cut_sets(tree)
        assert len(cut_sets) == 3
        assert all(len(cs) == 2 for cs in cut_sets)

    def test_cut_sets_sorted_smallest_first(self):
        tree = AttackTree(
            OrNode(
                "root",
                [AndNode("pair", [leaf("x", 0.5), leaf("y", 0.5)]),
                 leaf("solo", 0.5)],
            )
        )
        cut_sets = minimal_cut_sets(tree)
        assert cut_sets[0] == {"solo"}
