"""Tests for the Modbus-like protocol and dialect diversity."""

import pytest

from repro.scada.protocol import (
    CRC_VARIANTS,
    FunctionCode,
    ModbusDialect,
    ModbusFrame,
    ProtocolError,
    STANDARD_DIALECT,
    crc16_modbus,
    decode_frame,
    encode_frame,
    frames_compatible,
    remapped_dialect,
)


def sample_frame(**overrides):
    params = dict(
        unit=5,
        function=FunctionCode.WRITE_MULTIPLE_REGISTERS,
        address=100,
        values=(10, 20, 30),
        count=3,
    )
    params.update(overrides)
    return ModbusFrame(**params)


class TestChecksums:
    def test_crc16_known_vector(self):
        # Standard Modbus test vector: 01 03 00 00 00 01 -> CRC 0x0A84
        # (low byte 0x84, high byte 0x0A on the wire).
        data = bytes([0x01, 0x03, 0x00, 0x00, 0x00, 0x01])
        assert crc16_modbus(data) == 0x0A84

    def test_all_variants_deterministic(self):
        data = b"hello scada"
        for name, fn in CRC_VARIANTS.items():
            assert fn(data) == fn(data)

    def test_variants_disagree(self):
        data = b"payload"
        values = {fn(data) for fn in CRC_VARIANTS.values()}
        assert len(values) == len(CRC_VARIANTS)


class TestRoundTrip:
    def test_standard_roundtrip(self):
        frame = sample_frame()
        assert decode_frame(encode_frame(frame, STANDARD_DIALECT),
                            STANDARD_DIALECT) == frame

    def test_roundtrip_under_remapped_dialect(self):
        dialect = remapped_dialect("variant_b")
        frame = sample_frame()
        assert decode_frame(encode_frame(frame, dialect), dialect) == frame

    def test_roundtrip_all_functions(self):
        for function in FunctionCode:
            frame = sample_frame(function=function, values=(), count=1)
            assert decode_frame(
                encode_frame(frame, STANDARD_DIALECT), STANDARD_DIALECT
            ) == frame

    def test_empty_values_roundtrip(self):
        frame = sample_frame(values=(), count=2)
        decoded = decode_frame(encode_frame(frame, STANDARD_DIALECT),
                               STANDARD_DIALECT)
        assert decoded.count == 2
        assert decoded.values == ()

    def test_little_endian_dialect_roundtrip(self):
        dialect = ModbusDialect(name="le", big_endian=False)
        frame = sample_frame(address=0xABCD & 0x7FFF)
        assert decode_frame(encode_frame(frame, dialect), dialect) == frame


class TestDialectMismatch:
    def test_cross_dialect_decode_fails(self):
        frame = sample_frame()
        raw = encode_frame(frame, STANDARD_DIALECT)
        with pytest.raises(ProtocolError):
            decode_frame(raw, remapped_dialect("variant_b"))

    def test_frames_compatible_same_dialect(self):
        assert frames_compatible(
            STANDARD_DIALECT, STANDARD_DIALECT, sample_frame()
        )

    def test_frames_incompatible_across_dialects(self):
        assert not frames_compatible(
            STANDARD_DIALECT, remapped_dialect("variant_b"), sample_frame()
        )

    def test_checksum_only_difference_detected(self):
        a = ModbusDialect(name="a", checksum="crc16")
        b = ModbusDialect(name="b", checksum="fletcher16")
        assert not frames_compatible(a, b, sample_frame())

    def test_unit_offset_only_difference_detected(self):
        a = ModbusDialect(name="a", unit_offset=0)
        b = ModbusDialect(name="b", unit_offset=50)
        frame = sample_frame(unit=5)
        # Checksums match (same algorithm), but the unit id shifts.
        raw = encode_frame(frame, a)
        try:
            decoded = decode_frame(raw, b)
            assert decoded.unit != frame.unit
        except ProtocolError:
            pass  # also acceptable: offset pushes unit out of range


class TestValidation:
    def test_truncated_frame_rejected(self):
        raw = encode_frame(sample_frame(), STANDARD_DIALECT)
        with pytest.raises(ProtocolError):
            decode_frame(raw[:5], STANDARD_DIALECT)

    def test_corrupted_byte_rejected(self):
        raw = bytearray(encode_frame(sample_frame(), STANDARD_DIALECT))
        raw[3] ^= 0xFF
        with pytest.raises(ProtocolError):
            decode_frame(bytes(raw), STANDARD_DIALECT)

    def test_unknown_wire_code_rejected(self):
        dialect = STANDARD_DIALECT
        raw = bytearray(encode_frame(sample_frame(), dialect))
        raw[1] = 0x7E  # not a standard code
        # Fix the checksum so only the function code is wrong.
        body = bytes(raw[:-2])
        crc = CRC_VARIANTS[dialect.checksum](body)
        import struct

        raw[-2:] = struct.pack(">H", crc)
        with pytest.raises(ProtocolError):
            decode_frame(bytes(raw), dialect)

    def test_frame_field_validation(self):
        with pytest.raises(ValueError):
            ModbusFrame(unit=999, function=FunctionCode.READ_COILS, address=0)
        with pytest.raises(ValueError):
            ModbusFrame(unit=1, function=FunctionCode.READ_COILS,
                        address=0x1_0000)
        with pytest.raises(ValueError):
            ModbusFrame(unit=1, function=FunctionCode.READ_COILS, address=0,
                        values=(70000,))

    def test_dialect_duplicate_codes_rejected(self):
        codes = {fn: 1 for fn in FunctionCode}
        with pytest.raises(ValueError):
            ModbusDialect(name="bad", function_codes=codes)

    def test_dialect_unknown_checksum_rejected(self):
        with pytest.raises(ValueError):
            ModbusDialect(name="bad", checksum="md5")

    def test_unsupported_function_lookup_raises(self):
        dialect = ModbusDialect(
            name="partial",
            function_codes={FunctionCode.READ_COILS: 1},
        )
        with pytest.raises(ProtocolError):
            dialect.wire_code(FunctionCode.REPROGRAM)
