"""Tests for incident response (eviction) and the Kaplan-Meier estimator."""

import math

import numpy as np
import pytest

from repro.attacks.campaign import AttackCampaign, CampaignConfig
from repro.attacks.profiles import stuxnet_like
from repro.core.indicators import TimeToAttack
from repro.scada.topologies import scope_cooling_topology
from tests.test_core_indicators import outcome


class TestIncidentResponse:
    def test_instant_response_blocks_post_detection_success(self, catalog):
        config = CampaignConfig(
            horizon=100.0, tick_interval=0.5, response_enabled=True
        )
        outcomes = AttackCampaign(
            scope_cooling_topology(), catalog, stuxnet_like(), config
        ).run_batch(30, np.random.default_rng(1))
        for o in outcomes:
            if o.evicted:
                # Success, if any, must precede the (instant) eviction.
                if o.success:
                    assert o.success_time <= o.detection_time
            if not math.isnan(o.detection_time) and not o.success:
                assert o.evicted or o.detection_time > o.horizon - 1e9

    def test_slow_response_lets_more_attacks_through(self, catalog):
        rng = np.random.default_rng(2)
        fast = CampaignConfig(
            horizon=60.0, tick_interval=0.5, response_enabled=True
        )
        slow = CampaignConfig(
            horizon=60.0, tick_interval=0.5, response_enabled=True,
            response_delay_rate=0.05,  # mean 20 h to evict
        )
        n = 40
        fast_wins = sum(
            o.success
            for o in AttackCampaign(
                scope_cooling_topology(), catalog, stuxnet_like(), fast
            ).run_batch(n, rng)
        )
        slow_wins = sum(
            o.success
            for o in AttackCampaign(
                scope_cooling_topology(), catalog, stuxnet_like(), slow
            ).run_batch(n, rng)
        )
        assert slow_wins >= fast_wins

    def test_eviction_recorded_in_trace(self, catalog):
        config = CampaignConfig(
            horizon=100.0, tick_interval=0.5, response_enabled=True
        )
        outcomes = AttackCampaign(
            scope_cooling_topology(), catalog, stuxnet_like(), config
        ).run_batch(20, np.random.default_rng(3))
        evicted = [o for o in outcomes if o.evicted]
        assert evicted
        for o in evicted:
            assert o.trace.first("eviction") is not None

    def test_no_response_never_evicts(self, catalog):
        config = CampaignConfig(horizon=60.0, tick_interval=0.5)
        outcomes = AttackCampaign(
            scope_cooling_topology(), catalog, stuxnet_like(), config
        ).run_batch(10, np.random.default_rng(4))
        assert all(not o.evicted for o in outcomes)


class TestKaplanMeier:
    def test_no_censoring_matches_empirical(self):
        sample = TimeToAttack.from_outcomes(
            [outcome(10.0), outcome(20.0), outcome(30.0), outcome(40.0)]
        )
        curve = dict(sample.survival_curve())
        assert curve[10.0] == pytest.approx(0.75)
        assert curve[20.0] == pytest.approx(0.50)
        assert curve[40.0] == pytest.approx(0.0)

    def test_censoring_floors_survival(self):
        sample = TimeToAttack.from_outcomes(
            [outcome(10.0), outcome(), outcome()]
        )
        curve = dict(sample.survival_curve())
        # One event among three at risk: S = 2/3 and stays there.
        assert curve[10.0] == pytest.approx(2 / 3)

    def test_survival_monotone_nonincreasing(self):
        sample = TimeToAttack.from_outcomes(
            [outcome(float(t)) for t in (5, 5, 8, 12, 30)] + [outcome()]
        )
        values = [s for __, s in sample.survival_curve()]
        assert values == sorted(values, reverse=True)

    def test_tied_event_times_handled(self):
        sample = TimeToAttack.from_outcomes(
            [outcome(10.0), outcome(10.0), outcome(20.0), outcome(20.0)]
        )
        curve = dict(sample.survival_curve())
        assert curve[10.0] == pytest.approx(0.5)
        assert curve[20.0] == pytest.approx(0.0)

    def test_survival_at_interpolates_step(self):
        sample = TimeToAttack.from_outcomes(
            [outcome(10.0), outcome(30.0)]
        )
        assert sample.survival_at(5.0) == 1.0
        assert sample.survival_at(15.0) == pytest.approx(0.5)
        assert sample.survival_at(50.0) == pytest.approx(0.0)

    def test_all_censored_curve_empty(self):
        sample = TimeToAttack.from_outcomes([outcome(), outcome()])
        assert sample.survival_curve() == []
        assert sample.survival_at(1000.0) == 1.0

    def test_consistent_with_event_probability(self):
        outcomes = [outcome(float(t)) for t in (10, 20, 30)] + [outcome()] * 2
        sample = TimeToAttack.from_outcomes(outcomes)
        # Survival at the horizon equals 1 - event probability under
        # type-I censoring.
        assert sample.survival_at(sample.horizon) == pytest.approx(
            1.0 - sample.event_probability
        )
