"""Tests for SAN CTMC conversion and reward estimation."""

import numpy as np
import pytest

from repro.san.builder import SANBuilder
from repro.san.ctmc import san_to_ctmc
from repro.san.model import SANModel
from repro.san.rewards import ImpulseReward, RateReward, RewardEstimator
from repro.san.simulator import SANSimulator
from repro.stats.distributions import Deterministic, Exponential


def two_stage_model(p1=0.8, p2=0.6, r1=1.0, r2=0.5):
    builder = SANBuilder("chain")
    builder.place("s0", 1).place("s1", 0).place("s2", 0)
    builder.stage("a1", "s0", "s1", rate=r1, success_probability=p1)
    builder.stage("a2", "s1", "s2", rate=r2, success_probability=p2)
    return builder.build()


class TestCTMCConversion:
    def test_state_count(self):
        ctmc = san_to_ctmc(two_stage_model())
        assert ctmc.n_states == 3

    def test_generator_rows_sum_to_zero(self):
        ctmc = san_to_ctmc(two_stage_model())
        assert np.allclose(ctmc.generator.sum(axis=1), 0.0)

    def test_initial_distribution_sums_to_one(self):
        ctmc = san_to_ctmc(two_stage_model())
        assert ctmc.initial.sum() == pytest.approx(1.0)

    def test_transient_distribution_is_probability_vector(self):
        ctmc = san_to_ctmc(two_stage_model())
        dist = ctmc.transient_distribution(2.5)
        assert dist.sum() == pytest.approx(1.0)
        assert (dist >= -1e-12).all()

    def test_retry_chain_hits_goal_almost_surely(self):
        ctmc = san_to_ctmc(two_stage_model())
        targets = [
            i for i, s in enumerate(ctmc.states) if dict(s).get("s2", 0) > 0
        ]
        probs = ctmc.hitting_probability(targets)
        start = int(np.argmax(ctmc.initial))
        assert probs[start] == pytest.approx(1.0)

    def test_mean_hitting_time_matches_closed_form(self):
        # Retry-on-failure: stage i takes Exp(rate_i * p_i) overall.
        ctmc = san_to_ctmc(two_stage_model(p1=0.8, p2=0.6, r1=1.0, r2=0.5))
        targets = [
            i for i, s in enumerate(ctmc.states) if dict(s).get("s2", 0) > 0
        ]
        times = ctmc.mean_hitting_time(targets)
        start = int(np.argmax(ctmc.initial))
        expected = 1.0 / (1.0 * 0.8) + 1.0 / (0.5 * 0.6)
        assert times[start] == pytest.approx(expected, rel=1e-9)

    def test_simulator_agrees_with_ctmc(self):
        model = two_stage_model()
        ctmc = san_to_ctmc(model)
        targets = [
            i for i, s in enumerate(ctmc.states) if dict(s).get("s2", 0) > 0
        ]
        analytic = ctmc.mean_hitting_time(targets)[int(np.argmax(ctmc.initial))]
        sim = SANSimulator(model)
        rng = np.random.default_rng(3)
        runs = sim.batch(10000.0, 2000, rng, stop=lambda m: m["s2"] > 0)
        sampled = np.mean([r.stop_time for r in runs if r.stopped])
        assert sampled == pytest.approx(analytic, rel=0.1)

    def test_give_up_chain_success_probability(self):
        # With give-up semantics, P(success) = p1 * p2 exactly.
        builder = SANBuilder()
        builder.place("s0", 1).place("s1", 0).place("s2", 0)
        builder.place("dead", 0)
        builder.stage("a1", "s0", "s1", rate=1.0, success_probability=0.7,
                      failure_place="dead")
        builder.stage("a2", "s1", "s2", rate=1.0, success_probability=0.4,
                      failure_place="dead")
        ctmc = san_to_ctmc(builder.build())
        targets = [
            i for i, s in enumerate(ctmc.states) if dict(s).get("s2", 0) > 0
        ]
        start = int(np.argmax(ctmc.initial))
        assert ctmc.hitting_probability(targets)[start] == pytest.approx(0.28)

    def test_non_exponential_rejected(self):
        model = SANModel()
        model.set_initial("a", 1)
        model.add_timed_activity(
            "det", Deterministic(1.0), input_places={"a": 1},
            output_places={"b": 1},
        )
        with pytest.raises(ValueError):
            san_to_ctmc(model)

    def test_instantaneous_activities_eliminated(self):
        model = SANModel()
        model.set_initial("a", 1)
        model.add_timed_activity(
            "t", Exponential(1.0), input_places={"a": 1},
            output_places={"vanish": 1},
        )
        model.add_instantaneous_activity(
            "jump", input_places={"vanish": 1}, output_places={"b": 1}
        )
        ctmc = san_to_ctmc(model)
        # 'vanish' must not appear in any tangible state.
        for state in ctmc.states:
            assert dict(state).get("vanish", 0) == 0

    def test_state_cap_enforced(self):
        builder = SANBuilder()
        builder.place("p", 1)
        builder.timed("grow", Exponential(1.0), inputs={"p": 1},
                      outputs={"p": 2})
        with pytest.raises(ValueError):
            san_to_ctmc(builder.build(), max_states=5)

    def test_state_index_lookup(self):
        ctmc = san_to_ctmc(two_stage_model())
        assert ctmc.state_index(ctmc.states[0]) == 0
        with pytest.raises(KeyError):
            ctmc.state_index((("nope", 1),))


class TestRewards:
    def test_impulse_reward_counts_completions(self, rng):
        model = two_stage_model(p1=1.0, p2=1.0)
        estimator = RewardEstimator(
            model,
            impulse_rewards=[ImpulseReward("steps", activity="a1")],
        )
        estimates = estimator.estimate(1000.0, 50, rng)
        assert np.mean(estimates["steps"].samples) == pytest.approx(1.0)

    def test_rate_reward_integrates_occupancy(self, rng):
        # Time spent in s0 before a1 completes: mean 1.0 at rate 1.0.
        model = two_stage_model(p1=1.0, p2=1.0, r1=1.0, r2=1.0)
        estimator = RewardEstimator(
            model,
            rate_rewards=[RateReward("in_s0", rate=lambda m: float(m["s0"]))],
        )
        estimates = estimator.estimate(10000.0, 800, rng)
        ci = estimates["in_s0"].mean()
        assert abs(ci.estimate - 1.0) < 0.15

    def test_time_averaged_rate_reward_bounded(self, rng):
        model = two_stage_model()
        estimator = RewardEstimator(
            model,
            rate_rewards=[RateReward("frac_s0",
                                     rate=lambda m: float(m["s0"] > 0))],
        )
        estimates = estimator.estimate(50.0, 60, rng, time_averaged=True)
        values = estimates["frac_s0"].samples
        assert all(0.0 <= v <= 1.0 + 1e-9 for v in values)

    def test_probability_positive(self, rng):
        model = two_stage_model()
        estimator = RewardEstimator(
            model,
            impulse_rewards=[ImpulseReward("impair", activity="a2")],
        )
        estimates = estimator.estimate(10.0, 100, rng)
        ci = estimates["impair"].probability_positive()
        assert 0.0 <= ci.low <= ci.high <= 1.0

    def test_zero_replications_rejected(self, rng):
        estimator = RewardEstimator(two_stage_model())
        with pytest.raises(ValueError):
            estimator.estimate(1.0, 0, rng)
