"""Facade ⇔ legacy equivalence: bit-identical records AND seeds.

The :mod:`repro.api` facade lowers onto the legacy entry points, so for
the same root seed every run must reproduce the legacy results exactly
— records and the spawned seed material both.  Fast tier-1 coverage
pins the smoke scenario across all three backends plus the non-suite
entry points; the full built-in catalog across every backend carries
the ``scenario`` marker (run with ``-m scenario``), mirroring the
pre-existing suite determinism tests.
"""

import warnings

import numpy as np
import pytest

from repro.api import Session
from repro.attacks.campaign import AttackCampaign
from repro.core.study import DiversityStudy
from repro.exec.runner import ExperimentRunner
from repro.exec.seeding import spawn_sequences
from repro.scenarios import SCENARIOS, ScenarioSuite

BACKENDS = ["serial", "thread", "process"]


def legacy_suite(names, backend, seed):
    """The pre-facade calling convention (deprecated but pinned)."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return ScenarioSuite(names, backend=backend, n_workers=2).run(
            seed=seed
        )


class TestSuiteEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_smoke_records_and_seeds_identical(self, backend):
        names = ["smoke"]
        legacy = legacy_suite(names, backend, seed=42)
        session = Session(backend=backend, n_workers=2)
        facade = session.run(names, seed=42)
        assert (
            facade.records_by_scenario() == legacy.records_by_scenario()
        )
        # Seeds: the facade spawns the identical child sequences.
        expected = spawn_sequences(42, len(names))
        for result, seq in zip(facade.results, expected):
            assert result.provenance.entropy == str(seq.entropy)
            assert result.provenance.spawn_key == tuple(seq.spawn_key)

    def test_submit_equals_legacy_run(self):
        legacy = legacy_suite(["smoke", "cooling_stuxnet"], "serial", 7)
        with Session() as session:
            job = session.submit(["smoke", "cooling_stuxnet"], seed=7)
            assert (
                job.result().records_by_scenario()
                == legacy.records_by_scenario()
            )

    def test_builder_override_equals_legacy_replaced_spec(self):
        import dataclasses

        replaced = dataclasses.replace(
            SCENARIOS.get("smoke"), replications=4, horizon=15.0
        )
        legacy = ScenarioSuite([replaced]).run(seed=5)
        facade = (
            Session()
            .study("smoke")
            .replications(4)
            .horizon(15.0)
            .run(seed=5)
        )
        assert facade.records == legacy.results[0].records


class TestStudyEquivalence:
    def test_full_study_equals_legacy_from_scenario(self):
        scenario = SCENARIOS.get("smoke")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = DiversityStudy.from_scenario(
                scenario, backend="serial"
            ).execute(21)
        facade = Session().full_study("smoke", seed=21)
        assert facade.measurement.records == legacy.measurement.records
        assert facade.design.n_runs == legacy.design.n_runs


class TestCampaignEquivalence:
    def test_campaign_equals_legacy_run_batch_table(self):
        scenario = SCENARIOS.get("smoke")
        campaign = AttackCampaign(
            scenario.build_network(),
            scenario.build_catalog(),
            scenario.build_threat(),
            scenario.build_campaign_config(),
        )
        legacy = campaign.run_batch_table(
            8, rng=13, runner=ExperimentRunner()
        )
        facade = Session().campaign("smoke", 8, seed=13)
        assert facade.table == legacy

    def test_submit_campaign_equals_sync(self):
        with Session(backend="thread", n_workers=2) as session:
            sync = session.campaign("smoke", 8, seed=13)
            job = session.submit_campaign("smoke", 8, seed=13)
            assert job.result().table == sync.table


@pytest.mark.scenario
class TestAllBuiltinsAllBackends:
    """The acceptance sweep: every built-in, every backend."""

    @pytest.fixture(scope="class")
    def legacy_serial(self):
        return legacy_suite(SCENARIOS.names(), "serial", seed=2013)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_catalog_bit_identical(self, backend, legacy_serial):
        names = SCENARIOS.names()
        facade = Session(backend=backend, n_workers=4).run(
            names, seed=2013
        )
        assert (
            facade.records_by_scenario()
            == legacy_serial.records_by_scenario()
        )
        expected = spawn_sequences(2013, len(names))
        for result, seq in zip(facade.results, expected):
            assert result.provenance.entropy == str(seq.entropy)
            assert result.provenance.spawn_key == tuple(seq.spawn_key)
