"""Tests for the diversity package: catalog, configs, metrics, PSA model."""

import numpy as np
import pytest

from repro.diversity.catalog import Variant, VariantCatalog, default_catalog
from repro.diversity.config import (
    SystemConfiguration,
    configuration_factors,
    configuration_from_run,
    random_configuration,
)
from repro.diversity.metrics import (
    distinct_variants,
    network_diversity_profile,
    shannon_entropy,
    simpson_index,
    variant_counts,
)
from repro.diversity.psa import (
    AttackerProfile,
    chain_attack,
    diverse_chain,
    identical_chain,
)
from repro.scada.components import ComponentKind
from repro.scada.topologies import scope_cooling_topology

K = ComponentKind


class TestCatalog:
    def test_default_catalog_has_os_variants(self, catalog):
        names = catalog.names_for(K.OPERATING_SYSTEM)
        assert len(names) >= 3

    def test_duplicate_variant_rejected(self):
        cat = VariantCatalog()
        cat.register(Variant("v", K.OPERATING_SYSTEM, {"usb_autorun": 0.5}))
        with pytest.raises(ValueError):
            cat.register(Variant("v", K.OPERATING_SYSTEM, {}))

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError):
            Variant("v", K.OPERATING_SYSTEM, {"teleport": 0.5})

    def test_out_of_range_probability_rejected(self):
        with pytest.raises(ValueError):
            Variant("v", K.OPERATING_SYSTEM, {"usb_autorun": 1.5})

    def test_unlisted_action_reads_zero(self):
        v = Variant("v", K.OPERATING_SYSTEM, {"usb_autorun": 0.5})
        assert v.success_probability("print_spooler") == 0.0

    def test_none_variant_reads_zero(self, catalog):
        assert catalog.success_probability(
            K.OPERATING_SYSTEM, None, "usb_autorun"
        ) == 0.0

    def test_hardened_variants_are_harder(self, catalog):
        legacy = catalog.get(K.OPERATING_SYSTEM, "win_legacy")
        hardened = catalog.get(K.OPERATING_SYSTEM, "linux_hardened")
        assert hardened.mean_exploitability < legacy.mean_exploitability

    def test_kind_listing(self, catalog):
        assert K.PLC_FIRMWARE in catalog.kinds()

    def test_lookup_missing_raises(self, catalog):
        with pytest.raises(KeyError):
            catalog.get(K.OPERATING_SYSTEM, "beos")


class TestConfiguration:
    def test_apply_installs_variants(self, network):
        config = SystemConfiguration()
        config.assign("office_0", K.OPERATING_SYSTEM, "rtos_minimal")
        config.apply(network)
        assert network.host("office_0").variant_of(
            K.OPERATING_SYSTEM
        ) == "rtos_minimal"

    def test_distinct_variants_counted(self):
        config = SystemConfiguration()
        config.assign("a", K.OPERATING_SYSTEM, "x")
        config.assign("b", K.OPERATING_SYSTEM, "y")
        config.assign("c", K.OPERATING_SYSTEM, "x")
        assert set(config.distinct_variants(K.OPERATING_SYSTEM)) == {"x", "y"}

    def test_diversity_degree(self):
        config = SystemConfiguration()
        config.assign("a", K.OPERATING_SYSTEM, "x")
        config.assign("b", K.PLC_FIRMWARE, "f")
        config.assign("c", K.OPERATING_SYSTEM, "x")
        assert config.diversity_degree() == 2

    def test_configuration_factors_cover_present_kinds(self, network, catalog):
        factors = configuration_factors(network, catalog)
        names = {f.name for f in factors}
        assert "operating_system" in names
        assert "plc_firmware" in names

    def test_configuration_from_run_homogeneous_per_kind(self, network):
        run = {"operating_system": "rtos_minimal"}
        config = configuration_from_run(network, run)
        config.apply(network)
        for host in network.hosts:
            if host.variant_of(K.OPERATING_SYSTEM) is not None:
                assert host.variant_of(K.OPERATING_SYSTEM) == "rtos_minimal"

    def test_random_configuration_with_bounded_diversity(
        self, network, catalog, rng
    ):
        config = random_configuration(network, catalog, rng, max_distinct=1)
        assert len(config.distinct_variants(K.OPERATING_SYSTEM)) == 1

    def test_random_configuration_full_pool(self, network, catalog, rng):
        config = random_configuration(network, catalog, rng)
        config.apply(network)  # must not raise


class TestMetrics:
    def test_shannon_zero_for_homogeneous(self):
        assert shannon_entropy({"a": 10}) == 0.0

    def test_shannon_max_for_uniform(self):
        e2 = shannon_entropy({"a": 5, "b": 5})
        e4 = shannon_entropy({"a": 5, "b": 5, "c": 5, "d": 5})
        assert e2 == pytest.approx(np.log(2))
        assert e4 == pytest.approx(np.log(4))

    def test_simpson_bounds(self):
        assert simpson_index({"a": 10}) == 0.0
        assert simpson_index({"a": 1, "b": 1}) == pytest.approx(0.5)

    def test_distinct_ignores_zero_counts(self):
        assert distinct_variants({"a": 2, "b": 0}) == 1

    def test_empty_counts(self):
        assert shannon_entropy({}) == 0.0
        assert simpson_index({}) == 0.0

    def test_variant_counts_over_network(self, network):
        counts = variant_counts(network, K.OPERATING_SYSTEM)
        assert counts == {"win_legacy": sum(counts.values())}

    def test_network_profile_structure(self, network):
        profile = network_diversity_profile(network)
        assert "operating_system" in profile
        assert profile["operating_system"]["distinct"] == 1.0


class TestPSAModel:
    def test_identical_psa_is_single_machine_probability(self):
        psa, __ = identical_chain(0.4, 5)
        assert psa == pytest.approx(0.4)

    def test_diverse_psa_is_product(self):
        psa, __ = diverse_chain([0.4, 0.5, 0.5])
        assert psa == pytest.approx(0.1)

    def test_paper_two_machine_claim(self):
        pm = 0.5
        psa_identical, t_identical = identical_chain(pm, 2)
        psa_diverse, t_diverse = diverse_chain([pm, pm])
        assert psa_identical == pytest.approx(pm)
        assert psa_diverse == pytest.approx(pm * pm)
        assert psa_diverse < psa_identical
        assert t_diverse > t_identical  # "harder and time-consuming"

    def test_gap_grows_with_chain_length(self):
        pm = 0.5
        gaps = []
        for n in (2, 4, 6):
            psa_i, __ = identical_chain(pm, n)
            psa_d, __ = diverse_chain([pm] * n)
            gaps.append(psa_i / psa_d)
        assert gaps[0] < gaps[1] < gaps[2]

    def test_multiple_attempts_raise_per_machine_probability(self):
        one = identical_chain(0.3, 1, AttackerProfile(exploit_attempts=1))[0]
        three = identical_chain(0.3, 1, AttackerProfile(exploit_attempts=3))[0]
        assert three > one
        assert three == pytest.approx(1 - 0.7**3)

    def test_imperfect_reuse_decays_identical_psa(self):
        profile = AttackerProfile(reuse_reliability=0.9)
        psa2, __ = identical_chain(0.5, 2, profile)
        psa5, __ = identical_chain(0.5, 5, profile)
        assert psa5 < psa2

    def test_simulation_matches_closed_form_identical(self):
        rng = np.random.default_rng(6)
        pm, n = 0.4, 3
        hits = sum(
            chain_attack([pm] * n, identical=True, rng=rng)[0]
            for _ in range(4000)
        )
        psa, __ = identical_chain(pm, n)
        assert hits / 4000 == pytest.approx(psa, abs=0.03)

    def test_simulation_matches_closed_form_diverse(self):
        rng = np.random.default_rng(6)
        pms = [0.5, 0.6, 0.7]
        hits = sum(
            chain_attack(pms, identical=False, rng=rng)[0]
            for _ in range(4000)
        )
        psa, __ = diverse_chain(pms)
        assert hits / 4000 == pytest.approx(psa, abs=0.03)

    def test_validation(self):
        with pytest.raises(ValueError):
            identical_chain(1.5, 2)
        with pytest.raises(ValueError):
            identical_chain(0.5, 0)
        with pytest.raises(ValueError):
            AttackerProfile(exploit_attempts=0)
        with pytest.raises(ValueError):
            AttackerProfile(reuse_reliability=2.0)
