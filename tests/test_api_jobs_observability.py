"""JobHandle observability: lifecycle events, heartbeats, logging.

The event contract: every job emits exactly one :class:`JobEvent` per
state it enters, in transition order, ending in exactly one terminal
state (DONE / FAILED / CANCELLED) no matter how submitter-side
``cancel()`` races the executor-side ``_run``.  Progress is monotonic
under concurrent ``_advance`` calls, and heartbeat telemetry is
rate-limited but always fires for the first and final unit.
"""

from __future__ import annotations

import dataclasses
import logging
import threading

import pytest

from repro.api import JobCancelled, JobEvent, JobState, Session
from repro.api.jobs import JobHandle, _TERMINAL_STATES
from repro.scenarios import SCENARIOS
from repro.telemetry import Telemetry

FAILING = dataclasses.replace(
    SCENARIOS.get("smoke"), name="failing", topology_params={"bogus_kw": 1}
)


def states_of(job: JobHandle):
    return [event.state for event in job.events]


class TestEventSequences:
    def test_done_path_emits_pending_running_done(self):
        with Session() as session:
            job = session.submit("smoke", seed=7)
            job.result()
        assert states_of(job) == [
            JobState.PENDING, JobState.RUNNING, JobState.DONE,
        ]
        times = [event.time_unix for event in job.events]
        assert times == sorted(times)
        assert all(isinstance(event, JobEvent) for event in job.events)
        assert all(event.job_id == job.job_id for event in job.events)

    def test_failed_path_carries_the_error_detail(self):
        with Session() as session:
            job = session.submit(FAILING)
            with pytest.raises(TypeError):
                job.result()
        assert states_of(job) == [
            JobState.PENDING, JobState.RUNNING, JobState.FAILED,
        ]
        assert "bogus_kw" in job.events[-1].detail

    def test_cancelled_before_start_emits_terminal_cancelled(self):
        blocker = threading.Event()
        release = threading.Event()

        def body(job):
            blocker.set()
            release.wait(timeout=30)
            return None

        with Session() as session:
            first = session._submit_job("blocker", 1, body)
            blocker.wait(timeout=30)
            queued = session.submit("smoke", seed=1)
            assert queued.cancel()
            release.set()
            first.wait()
        assert states_of(queued) == [JobState.PENDING, JobState.CANCELLED]
        assert queued.events[-1].detail == "cancelled before start"
        with pytest.raises(JobCancelled):
            queued.result()

    def test_cooperative_cancel_ends_in_single_cancelled_event(self):
        with Session(chunk_size=1) as session:
            job = session.submit_campaign("smoke", 200, seed=3)
            # Let it start, then cancel mid-flight.
            assert job.wait(timeout=0) in (JobState.PENDING, JobState.RUNNING)
            job.cancel()
            with pytest.raises(JobCancelled):
                job.result()
        terminal = [
            event for event in job.events if event.state in _TERMINAL_STATES
        ]
        assert len(terminal) == 1
        assert terminal[0].state is JobState.CANCELLED

    def test_events_exactly_once_under_racing_emits(self):
        job = JobHandle("race", 1)
        threads = [
            threading.Thread(target=job._emit, args=(state,))
            for state in (
                [JobState.RUNNING] * 4
                + [JobState.DONE] * 4
                + [JobState.CANCELLED] * 4
            )
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        states = states_of(job)
        assert states[0] is JobState.PENDING
        assert states.count(JobState.RUNNING) == 1
        assert len([s for s in states if s in _TERMINAL_STATES]) == 1

    def test_events_property_returns_a_copy(self):
        job = JobHandle("copy", 1)
        events = job.events
        events.append("garbage")
        assert all(isinstance(event, JobEvent) for event in job.events)

    def test_event_ordering_clock_is_monotonic_and_nonzero(self):
        # Ordering runs on time.monotonic (immune to system-clock
        # steps); time_unix stays on the event for display only.
        with Session() as session:
            job = session.submit("smoke", seed=7)
            job.result()
        monotonics = [event.time_monotonic for event in job.events]
        assert all(value > 0.0 for value in monotonics)
        assert monotonics == sorted(monotonics)
        assert all(
            a.time_monotonic <= b.time_monotonic
            for a, b in zip(job.events, job.events[1:])
        )


class TestProgressAndHeartbeats:
    def test_concurrent_advance_is_monotonic_and_complete(self):
        total = 64
        job = JobHandle("progress", total)
        seen = []

        def advance_many(count):
            for _ in range(count):
                job._advance()
                seen.append(job.progress.completed)

        threads = [
            threading.Thread(target=advance_many, args=(total // 4,))
            for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert job.progress.completed == total
        assert job.progress.fraction == 1.0
        # Each sampled value is a plausible running count — never above
        # the final total, never below 1.
        assert all(1 <= value <= total for value in seen)

    def test_heartbeats_fire_first_and_final_unit(self):
        telemetry = Telemetry()
        job = JobHandle("beat", 5)
        job._attach_telemetry(telemetry)
        for _ in range(5):
            job._advance()
        beats = [
            event for event in telemetry.events
            if event["kind"] == "job.heartbeat"
        ]
        # Rate limiting collapses the middle beats (interval 1s), but
        # the first and the final unit always report.
        completed = [beat["completed"] for beat in beats]
        assert completed[0] == 1
        assert completed[-1] == 5
        assert all(beat["total"] == 5 for beat in beats)

    def test_pending_event_replayed_into_attached_telemetry(self):
        telemetry = Telemetry()
        job = JobHandle("replay", 1)
        job._attach_telemetry(telemetry)
        job._emit(JobState.RUNNING)
        states = [
            event["state"] for event in telemetry.events
            if event["kind"] == "job.state"
        ]
        assert states == ["pending", "running"]


class TestLogging:
    def test_job_transitions_logged_at_debug(self, caplog):
        with caplog.at_level(logging.DEBUG, logger="repro.api.jobs"):
            with Session() as session:
                session.submit("smoke", seed=1).result()
        transitions = [
            record.message
            for record in caplog.records
            if record.message.startswith("job ")
        ]
        assert any("pending" in message for message in transitions)
        assert any("running" in message for message in transitions)
        assert any("done" in message for message in transitions)
