"""Tests for the power feeder plant, the smart-grid topology and the
pluggable physical-process interface."""

import math

import numpy as np
import pytest

from repro.attacks.campaign import AttackCampaign, CampaignConfig
from repro.attacks.profiles import stuxnet_like
from repro.scada.components import ComponentKind, HostRole
from repro.scada.plant.cooling import CoolingPlant
from repro.scada.plant.feeder import (
    PowerFeeder,
    PowerFeederConfig,
    REG_LOADING,
    REG_SECTIONS_ON,
    REG_SHED_ENABLE,
    REG_TIE_CLOSED,
)
from repro.scada.plant.process import PhysicalProcess
from repro.scada.topologies import smart_grid_feeder

K = ComponentKind


class TestPowerFeeder:
    def test_healthy_feeder_stays_under_rating(self):
        feeder = PowerFeeder()
        registers = feeder.default_registers()
        for _ in range(24 * 60):
            feeder.step(registers, 60.0)
        assert feeder.stress_level() < 100.0

    def test_sabotage_overloads(self):
        feeder = PowerFeeder()
        registers = feeder.default_registers()
        feeder.sabotage(registers)
        for _ in range(60):
            feeder.step(registers, 60.0)
        assert feeder.stress_level() > 140.0

    def test_tie_alone_raises_loading(self):
        base = PowerFeeder()
        tied = PowerFeeder()
        r_base = base.default_registers()
        r_tied = tied.default_registers()
        r_tied[REG_TIE_CLOSED] = 1
        r_tied[REG_SHED_ENABLE] = 0
        for _ in range(30):
            base.step(r_base, 60.0)
            tied.step(r_tied, 60.0)
        assert tied.loading > base.loading

    def test_load_shedding_protects(self):
        armed = PowerFeeder()
        disarmed = PowerFeeder()
        r_armed = armed.default_registers()
        r_disarmed = disarmed.default_registers()
        for regs in (r_armed, r_disarmed):
            regs[REG_TIE_CLOSED] = 1
        r_disarmed[REG_SHED_ENABLE] = 0
        for _ in range(120):
            armed.step(r_armed, 60.0)
            disarmed.step(r_disarmed, 60.0)
        assert armed.loading < disarmed.loading

    def test_zero_sections_zero_loading(self):
        feeder = PowerFeeder()
        registers = feeder.default_registers()
        registers[REG_SECTIONS_ON] = 0
        feeder.step(registers, 60.0)
        assert feeder.loading == 0.0

    def test_measurement_registers_updated(self):
        feeder = PowerFeeder()
        registers = feeder.default_registers()
        feeder.step(registers, 60.0)
        assert registers[REG_LOADING] == int(feeder.loading * 1000)

    def test_demand_cycles_with_time(self):
        feeder = PowerFeeder(PowerFeederConfig(demand_period=3600.0))
        registers = feeder.default_registers()
        loadings = []
        for _ in range(120):
            feeder.step(registers, 60.0)
            loadings.append(feeder.loading)
        assert max(loadings) - min(loadings) > 0.05


class TestProcessInterface:
    @pytest.mark.parametrize("plant_cls", [CoolingPlant, PowerFeeder])
    def test_contract(self, plant_cls):
        plant = plant_cls()
        assert isinstance(plant, PhysicalProcess)
        registers = plant.default_registers()
        assert plant.monitored_register in registers
        plant.step(registers, 30.0)
        assert plant.stress_level() >= 0.0
        damage = plant.make_damage_model()
        assert not damage.impaired
        assert plant.alarm_scale > 0
        assert plant.alarm_threshold > 0

    @pytest.mark.parametrize("plant_cls", [CoolingPlant, PowerFeeder])
    def test_sabotage_raises_stress(self, plant_cls):
        sab = plant_cls()
        healthy = plant_cls()
        r_sab = sab.default_registers()
        r_ok = healthy.default_registers()
        sab.sabotage(r_sab)
        for _ in range(120):
            sab.step(r_sab, 60.0)
            healthy.step(r_ok, 60.0)
        assert sab.stress_level() > healthy.stress_level()


class TestSmartGridTopology:
    def test_no_validation_warnings(self):
        assert smart_grid_feeder().validate() == []

    def test_population(self):
        net = smart_grid_feeder()
        assert len(net.hosts_with_role(HostRole.PLC)) == 2
        assert len(net.hosts_with_role(HostRole.RTU)) == 3
        assert len(net.hosts_with_role(HostRole.SENSOR)) == 3
        assert len(net.hosts_with_role(HostRole.ACTUATOR)) == 4

    def test_engineering_reaches_controllers(self):
        net = smart_grid_feeder()
        assert net.flow_allowed("feeder_eng_ws", "feeder_ctrl_0", "modbus")

    def test_office_isolated_from_control(self):
        net = smart_grid_feeder()
        assert not net.flow_allowed("utility_pc_0", "feeder_ctrl_0", "modbus")

    def test_campaign_against_feeder(self, catalog):
        config = CampaignConfig(
            horizon=100.0, tick_interval=0.5, plant_factory=PowerFeeder
        )
        outcomes = AttackCampaign(
            smart_grid_feeder(), catalog, stuxnet_like(), config
        ).run_batch(15, np.random.default_rng(8))
        assert any(o.success for o in outcomes)
        for outcome in outcomes:
            if outcome.success:
                assert not math.isnan(outcome.sabotage_start)
                assert outcome.sabotage_start <= outcome.success_time

    def test_hardened_grid_slower(self, catalog):
        config = CampaignConfig(
            horizon=40.0, tick_interval=0.5, plant_factory=PowerFeeder
        )
        rng = np.random.default_rng(9)
        soft = AttackCampaign(
            smart_grid_feeder(), catalog, stuxnet_like(), config
        ).run_batch(25, rng)
        hard = AttackCampaign(
            smart_grid_feeder(
                default_os="linux_hardened",
                default_firmware="firmware_signed",
                default_stack="modbus_variant_b",
            ),
            catalog,
            stuxnet_like(),
            config,
        ).run_batch(25, rng)
        assert sum(o.success for o in hard) < sum(o.success for o in soft)
