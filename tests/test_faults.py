"""The seeded fault-injection harness: plans, gates, env wiring.

Fast tests pin the :class:`FaultPlan` contract — normalization,
validation, attempt gating, scheduling-independent rate draws,
round-tripping, the ``REPRO_FAULT_PLAN`` environment hook and the
guarantee that plans live *outside* the spec digest.  The
``chaos``-marked tests push a plan through :class:`repro.api.Session`
end to end, including worker kills and corrupted chunk payloads on the
process backend, and pin bit-identity against a fault-free run.
"""

import json
import time

import pytest

from repro.exec import ExperimentRunner, RetryPolicy, TransientWorkerError
from repro.exec.resilience import CorruptChunkPayload
from repro.faults import (
    FAULT_PLAN_ENV,
    KILL_EXIT_CODE,
    FaultInjectionError,
    FaultPlan,
    in_worker_process,
    plan_from_env,
)


def _draw_digest(rng):
    return (float(rng.random()), float(rng.standard_normal()))


class TestPlanConstruction:
    def test_iterables_normalize_to_count_one(self):
        plan = FaultPlan(crash_units=[3, 7], hang_units=(1,))
        assert plan.crash_units == {3: 1, 7: 1}
        assert plan.hang_units == {1: 1}
        assert plan.kill_units == {}

    def test_mappings_keep_counts(self):
        plan = FaultPlan(kill_units={2: 3, 9: 1})
        assert plan.kill_units == {2: 3, 9: 1}

    def test_validation(self):
        with pytest.raises(ValueError, match="crash_units"):
            FaultPlan(crash_units=[-1])
        with pytest.raises(ValueError, match="kill_units"):
            FaultPlan(kill_units={2: 0})
        with pytest.raises(ValueError, match="crash_rate"):
            FaultPlan(crash_rate=1.5)
        with pytest.raises(ValueError, match="hang_rate"):
            FaultPlan(hang_rate=-0.1)
        with pytest.raises(ValueError, match="hang_s"):
            FaultPlan(hang_s=-1.0)

    def test_default_plan_is_inert(self):
        plan = FaultPlan()
        assert not any(
            plan.fires(kind, index, 0)
            for kind in ("crash", "hang", "kill", "corrupt")
            for index in range(50)
        )


class TestAttemptGating:
    def test_explicit_units_fire_until_count_exhausted(self):
        plan = FaultPlan(crash_units={4: 2})
        assert plan.fires("crash", 4, 0)
        assert plan.fires("crash", 4, 1)
        assert not plan.fires("crash", 4, 2)
        assert not plan.fires("crash", 5, 0)

    def test_rate_faults_fire_on_first_attempt_only(self):
        plan = FaultPlan(crash_rate=1.0)
        assert plan.fires("crash", 0, 0)
        assert not plan.fires("crash", 0, 1)

    def test_rate_draw_is_seeded_and_unit_stable(self):
        plan = FaultPlan(crash_rate=0.3, seed=11)
        same = FaultPlan(crash_rate=0.3, seed=11)
        other = FaultPlan(crash_rate=0.3, seed=12)
        hits = [plan.fires("crash", i, 0) for i in range(200)]
        assert hits == [same.fires("crash", i, 0) for i in range(200)]
        assert hits != [other.fires("crash", i, 0) for i in range(200)]
        # Roughly rate-proportional, exactly reproducible.
        assert 0.15 < sum(hits) / 200 < 0.45

    def test_kind_streams_are_independent(self):
        plan = FaultPlan(crash_rate=0.5, hang_rate=0.5, seed=3)
        crash = [plan.fires("crash", i, 0) for i in range(100)]
        hang = [plan.fires("hang", i, 0) for i in range(100)]
        assert crash != hang


class TestInjectionGates:
    def test_crash_raises_transient_error(self):
        plan = FaultPlan(crash_units=[1])
        with pytest.raises(FaultInjectionError):
            plan.apply_unit_faults(1, attempt=0)
        assert issubclass(FaultInjectionError, TransientWorkerError)
        plan.apply_unit_faults(1, attempt=1)  # exhausted: no-op

    def test_kill_demoted_to_transient_crash_in_process(self):
        # In the coordinating interpreter a kill must never os._exit.
        assert not in_worker_process()
        plan = FaultPlan(kill_units=[0])
        with pytest.raises(FaultInjectionError, match="kill"):
            plan.apply_unit_faults(0, attempt=0)

    def test_hang_sleeps_for_hang_s(self):
        plan = FaultPlan(hang_units=[2], hang_s=0.05)
        start = time.monotonic()
        plan.apply_unit_faults(2, attempt=0)
        assert time.monotonic() - start >= 0.05

    def test_corrupt_chunk_returns_sentinel_while_budgeted(self):
        plan = FaultPlan(corrupt_units={5: 1})
        sentinel = plan.corrupt_chunk([4, 5, 6], attempt=0)
        assert isinstance(sentinel, CorruptChunkPayload)
        assert sentinel.unit_indices == (4, 5, 6)
        assert plan.corrupt_chunk([4, 5, 6], attempt=1) is None
        assert plan.corrupt_chunk([0, 1], attempt=0) is None


class TestRoundTrip:
    def test_to_dict_from_dict_roundtrip(self):
        plan = FaultPlan(
            crash_units={1: 2}, hang_units=[3], kill_units={5: 1},
            corrupt_units=[7], crash_rate=0.1, hang_rate=0.2,
            hang_s=0.5, seed=42,
        )
        rebuilt = FaultPlan.from_dict(
            json.loads(json.dumps(plan.to_dict()))
        )
        assert rebuilt == plan

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown FaultPlan"):
            FaultPlan.from_dict({"crash_units": [1], "typo_field": 2})


class TestEnvPlan:
    def test_unset_or_empty_means_no_injection(self):
        assert plan_from_env({}) is None
        assert plan_from_env({FAULT_PLAN_ENV: "  "}) is None

    def test_inline_json(self):
        plan = plan_from_env(
            {FAULT_PLAN_ENV: '{"crash_units": {"2": 1}, "seed": 9}'}
        )
        assert plan == FaultPlan(crash_units={2: 1}, seed=9)

    def test_at_path_reads_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps({"hang_units": [4], "hang_s": 0.2}))
        plan = plan_from_env({FAULT_PLAN_ENV: f"@{path}"})
        assert plan == FaultPlan(hang_units=[4], hang_s=0.2)

    def test_invalid_json_rejected(self):
        with pytest.raises(ValueError, match="invalid JSON"):
            plan_from_env({FAULT_PLAN_ENV: "{not json"})
        with pytest.raises(ValueError, match="JSON object"):
            plan_from_env({FAULT_PLAN_ENV: "[1, 2]"})

    def test_session_picks_up_env_plan(self, monkeypatch):
        from repro.api import Session

        monkeypatch.setenv(FAULT_PLAN_ENV, '{"crash_units": {"0": 1}}')
        with Session() as session:
            assert session.fault_plan == FaultPlan(crash_units={0: 1})

    def test_explicit_plan_beats_env(self, monkeypatch):
        from repro.api import Session

        monkeypatch.setenv(FAULT_PLAN_ENV, '{"crash_units": {"0": 1}}')
        explicit = FaultPlan(hang_units=[1], hang_s=0.01)
        with Session(fault_plan=explicit) as session:
            assert session.fault_plan == explicit


class TestProvenanceVisibility:
    def test_plan_recorded_outside_spec_digest(self):
        import numpy as np

        from repro.results.provenance import provenance_for

        seq = np.random.SeedSequence(7)
        payload = {"scenario": "smoke"}
        plain = provenance_for(
            payload, seq, ExperimentRunner("serial"), source="test"
        )
        chaotic_runner = ExperimentRunner(
            "serial",
            retry=RetryPolicy(max_attempts=2),
            fault_plan=FaultPlan(crash_units=[0]),
        )
        chaotic = provenance_for(payload, seq, chaotic_runner, source="test")
        # Same experiment identity ...
        assert chaotic.spec_digest == plain.spec_digest
        assert chaotic.seed_material() == plain.seed_material()
        # ... but the drill is visible in the execution record.
        assert chaotic.execution["fault_plan"] == (
            FaultPlan(crash_units=[0]).to_dict()
        )
        assert chaotic.execution["retry"]["max_attempts"] == 2
        assert plain.execution is None

    def test_kill_exit_code_is_distinctive(self):
        assert KILL_EXIT_CODE == 47


@pytest.mark.chaos
class TestChaosEndToEnd:
    REFERENCE = ExperimentRunner("serial").run_replications(
        _draw_digest, 24, seed=2013
    )

    def test_kill_and_corruption_bit_identical_on_process_pool(self):
        plan = FaultPlan(kill_units={6: 1}, corrupt_units={0: 1})
        policy = RetryPolicy(max_attempts=4, base_delay_s=0.01)
        runner = ExperimentRunner(
            "process", n_workers=2, chunk_size=2,
            retry=policy, fault_plan=plan,
        )
        result = runner.run_replications(_draw_digest, 24, seed=2013)
        assert result == self.REFERENCE

    def test_session_run_with_fault_plan_matches_fault_free(self):
        from repro.api import Session

        with Session() as session:
            reference = session.run("smoke", seed=5)
        plan = FaultPlan(crash_units={0: 1})
        with Session(
            retry=RetryPolicy(max_attempts=3, base_delay_s=0.01),
            fault_plan=plan,
        ) as session:
            chaotic = session.run("smoke", seed=5)
        assert chaotic.table == reference.table
        execution = chaotic.provenance.execution
        assert execution["fault_plan"] == plan.to_dict()
        assert (
            chaotic.provenance.spec_digest
            == reference.provenance.spec_digest
        )

    def test_suite_crash_and_hang_bit_identical_across_backends(self):
        # The acceptance pin: with >= 1 transient crash + 1 hang per
        # run, suite records, spec digests and seed material are all
        # bit-identical to the fault-free run on every backend.
        from repro.api import Session

        names = ["smoke", "cooling_duqu"]
        with Session() as session:
            reference = session.run(names, seed=11)
        plan = FaultPlan(crash_units={0: 1}, hang_units={1: 1}, hang_s=0.2)
        policy = RetryPolicy(
            max_attempts=3, base_delay_s=0.01, timeout_s=60.0
        )
        for backend in ("serial", "thread", "process"):
            with Session(
                backend=backend, n_workers=2,
                retry=policy, fault_plan=plan,
            ) as session:
                chaotic = session.run(names, seed=11)
            assert chaotic.records_by_scenario() == (
                reference.records_by_scenario()
            ), backend
            for plain, injected in zip(
                reference.results, chaotic.results
            ):
                assert injected.provenance.spec_digest == (
                    plain.provenance.spec_digest
                )
                assert injected.provenance.seed_material() == (
                    plain.provenance.seed_material()
                )

    def test_rate_faults_converge_across_backends(self):
        policy = RetryPolicy(max_attempts=5, base_delay_s=0.01)
        plan = FaultPlan(crash_rate=0.25, seed=8)
        for backend in ("serial", "thread", "process"):
            runner = ExperimentRunner(
                backend, n_workers=3, chunk_size=2,
                retry=policy, fault_plan=plan,
            )
            assert runner.run_replications(
                _draw_digest, 24, seed=2013
            ) == self.REFERENCE
