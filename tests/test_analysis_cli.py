"""CLI-level tests: the lint gate catches each seeded defect class.

The acceptance contract: seeding a defect into a scratch file makes
``python -m repro.analysis`` exit non-zero naming the expected rule,
``--update-baseline`` then accepts it, and the committed repository
baseline keeps the real tree green (the repo-clean meta-test).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis.cli import main as analysis_main
from repro.scenarios.cli import main as scenarios_main

REPO_ROOT = Path(__file__).resolve().parent.parent


def write(tmp_path: Path, name: str, source: str) -> str:
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return str(path)


class TestDefectClasses:
    def test_unseeded_default_rng_fails_with_det001(self, tmp_path, capsys):
        path = write(
            tmp_path,
            "defect.py",
            """
            import numpy as np
            rng = np.random.default_rng()
            """,
        )
        assert analysis_main([path]) == 1
        assert "DET001" in capsys.readouterr().out

    def test_wall_clock_in_exec_path_fails_with_det004(
        self, tmp_path, capsys
    ):
        path = write(
            tmp_path,
            "defect.py",
            """
            import time
            def simulate(rng):
                start = time.time()
                return start
            """,
        )
        assert analysis_main([path]) == 1
        assert "DET004" in capsys.readouterr().out

    def test_lambda_to_process_backend_fails_with_pickle001(
        self, tmp_path, capsys
    ):
        path = write(
            tmp_path,
            "defect.py",
            """
            def launch(runner, items):
                return runner.map(lambda x: x + 1, items)
            """,
        )
        assert analysis_main([path]) == 1
        assert "PICKLE001" in capsys.readouterr().out

    def test_bad_catalog_key_fails_with_spec002(self, tmp_path, capsys):
        path = write(
            tmp_path,
            "catalogs/bad.json",
            '{"name": "x", "topology": "scope_cooling", "bogus": 1}',
        )
        assert analysis_main([path]) == 1
        assert "SPEC002" in capsys.readouterr().out

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        path = write(
            tmp_path,
            "clean.py",
            """
            import numpy as np
            def simulate(seed):
                rng = np.random.default_rng(seed)
                return rng.random()
            """,
        )
        assert analysis_main([path]) == 0
        assert "0 finding(s)" in capsys.readouterr().out


class TestBaselineWorkflow:
    def test_update_baseline_then_green(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        write(
            tmp_path,
            "defect.py",
            """
            import numpy as np
            rng = np.random.default_rng()
            """,
        )
        baseline = str(tmp_path / "baseline.json")
        assert analysis_main(
            ["--update-baseline", "--baseline", baseline, "defect.py"]
        ) == 0
        capsys.readouterr()
        assert analysis_main(
            ["--baseline", baseline, "defect.py"]
        ) == 0
        out = capsys.readouterr().out
        assert "1 baselined" in out

    def test_stale_entries_reported(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        write(
            tmp_path,
            "defect.py",
            "import numpy as np\nrng = np.random.default_rng()\n",
        )
        baseline = str(tmp_path / "baseline.json")
        analysis_main(
            ["--update-baseline", "--baseline", baseline, "defect.py"]
        )
        write(
            tmp_path,
            "defect.py",
            "import numpy as np\nrng = np.random.default_rng(7)\n",
        )
        capsys.readouterr()
        assert analysis_main(["--baseline", baseline, "defect.py"]) == 0
        assert "stale" in capsys.readouterr().out

    def test_unreadable_baseline_is_usage_error(self, tmp_path, capsys):
        path = write(tmp_path, "clean.py", "x = 1\n")
        bad = write(tmp_path, "baseline.json", "not json")
        assert analysis_main(["--baseline", bad, path]) == 2


class TestOutputFormats:
    def test_json_format(self, tmp_path, capsys):
        path = write(
            tmp_path,
            "defect.py",
            "import numpy as np\nrng = np.random.default_rng()\n",
        )
        assert analysis_main(["--format", "json", path]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["files_scanned"] == 1
        assert [f["rule"] for f in payload["findings"]] == ["DET001"]
        assert payload["findings"][0]["fingerprint"]

    def test_list_rules(self, capsys):
        assert analysis_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("DET001", "SEED002", "RACE001", "PICKLE001",
                        "SPEC004", "PARSE001"):
            assert rule_id in out

    def test_no_paths_is_usage_error(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)  # no src/ or examples/ here
        assert analysis_main([]) == 2


class TestScenariosLint:
    def test_broken_catalog_fails(self, tmp_path, capsys):
        path = write(
            tmp_path,
            "broken.json",
            '{"name": "x", "topology": "nope", "replications": 0}',
        )
        assert scenarios_main(["lint", path]) == 1
        out = capsys.readouterr().out
        assert "SPEC003" in out and "SPEC004" in out

    def test_catalog_dir_flag(self, tmp_path, capsys):
        write(tmp_path, "ok.json", '{"name": "x"}')
        assert scenarios_main(["lint", "--catalog", str(tmp_path)]) == 0

    def test_nothing_to_lint_is_usage_error(self, capsys):
        assert scenarios_main(["lint"]) == 2

    def test_shipped_example_catalogs_are_clean(self, capsys):
        catalog_dir = REPO_ROOT / "examples" / "catalogs"
        assert scenarios_main(["lint", "--catalog", str(catalog_dir)]) == 0


class TestRepoClean:
    def test_repository_is_clean_against_committed_baseline(self):
        """The acceptance meta-test: the real tree lints green."""
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        result = subprocess.run(
            [
                sys.executable, "-m", "repro.analysis",
                "--baseline", "analysis-baseline.json",
                "src", "examples",
            ],
            cwd=REPO_ROOT,
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert result.returncode == 0, result.stdout + result.stderr
