"""Tests for the ``repro.bench`` baseline writer (pure parts only —
the subprocess pytest run is exercised by the bench tier itself)."""

import json

import pytest

from repro.bench import (
    compare_benchmarks,
    derive_speedups,
    load_baseline_benchmarks,
    parse_benchmark_json,
)


def _report(names_means):
    return {
        "benchmarks": [
            {
                "name": name,
                "stats": {
                    "mean": mean,
                    "median": mean,
                    "stddev": 0.1 * mean,
                    "rounds": 10,
                },
            }
            for name, mean in names_means.items()
        ],
        "machine_info": {"python_version": "3.x"},
    }


class TestParse:
    def test_strips_test_prefix_and_flattens(self):
        parsed = parse_benchmark_json(
            _report({"test_perf_san_simulation": 0.002})
        )
        assert parsed == {
            "perf_san_simulation": {
                "mean_s": 0.002,
                "median_s": 0.002,
                "stddev_s": 0.0002,
                "rounds": 10,
            }
        }

    def test_empty_report(self):
        assert parse_benchmark_json({}) == {}


class TestSpeedups:
    def test_legacy_pairing(self):
        results = parse_benchmark_json(
            _report(
                {
                    "test_perf_san_simulation": 0.001,
                    "test_perf_san_simulation_legacy": 0.004,
                }
            )
        )
        assert derive_speedups(results) == {"perf_san_simulation": 4.0}

    def test_dense_expm_pairing(self):
        results = parse_benchmark_json(
            _report(
                {
                    "test_perf_ctmc_transient_1k_uniformized": 0.001,
                    "test_perf_ctmc_transient_1k_dense_expm": 0.75,
                }
            )
        )
        speedups = derive_speedups(results)
        assert speedups["perf_ctmc_transient_1k_uniformized"] == 750.0

    def test_unpaired_benchmarks_have_no_speedup(self):
        results = parse_benchmark_json(
            _report({"test_perf_doe_generation": 0.005})
        )
        assert derive_speedups(results) == {}

    def test_round_trips_as_json(self):
        results = parse_benchmark_json(
            _report({"test_perf_x": 0.5, "test_perf_x_legacy": 1.0})
        )
        payload = {"benchmarks": results, "speedups": derive_speedups(results)}
        assert json.loads(json.dumps(payload)) == payload

    def test_mega_batch_explicit_pairing(self):
        results = parse_benchmark_json(
            _report(
                {
                    "test_perf_san_batch_scalar": 0.2,
                    "test_perf_san_batch_vectorized": 0.02,
                    "test_perf_campaign_batch_scalar": 1.0,
                    "test_perf_campaign_batch_vectorized": 0.01,
                }
            )
        )
        speedups = derive_speedups(results)
        assert speedups["perf_san_batch_vectorized"] == pytest.approx(10.0)
        assert speedups["perf_campaign_batch_vectorized"] == pytest.approx(
            100.0
        )
        assert "perf_san_batch_scalar" not in speedups

    def test_speedups_use_medians_not_means(self):
        """A noisy-round-inflated mean must not drag the ratio down."""
        results = parse_benchmark_json(
            _report(
                {
                    "test_perf_x": 0.001,
                    "test_perf_x_legacy": 0.012,
                }
            )
        )
        results["perf_x"]["mean_s"] = 0.006  # outlier-inflated
        assert derive_speedups(results)["perf_x"] == pytest.approx(12.0)

    def test_warm_cache_pairing(self):
        results = parse_benchmark_json(
            _report(
                {
                    "test_perf_suite_run": 1.0,
                    "test_perf_suite_run_warm_cache": 0.01,
                }
            )
        )
        speedups = derive_speedups(results)
        assert speedups["perf_suite_run_warm_cache"] == pytest.approx(100.0)
        assert "perf_suite_run" not in speedups


def _stats(names_medians):
    return parse_benchmark_json(_report(names_medians))


class TestCompare:
    def test_no_regressions_within_tolerance(self):
        diff = compare_benchmarks(
            _stats({"test_perf_a": 0.0012}),
            _stats({"test_perf_a": 0.001}),
            tolerance=0.35,
        )
        assert diff["regressions"] == []
        assert diff["ratios"]["perf_a"] == pytest.approx(1.2)

    def test_regression_beyond_tolerance_flagged(self):
        diff = compare_benchmarks(
            _stats({"test_perf_a": 0.002, "test_perf_b": 0.001}),
            _stats({"test_perf_a": 0.001, "test_perf_b": 0.001}),
            tolerance=0.35,
        )
        assert diff["regressions"] == ["perf_a"]

    def test_uses_median_not_mean(self):
        current = _stats({"test_perf_a": 0.001})
        current["perf_a"]["mean_s"] = 1e9  # outlier-inflated mean
        diff = compare_benchmarks(
            current, _stats({"test_perf_a": 0.001}), tolerance=0.35
        )
        assert diff["regressions"] == []

    def test_one_sided_benchmarks_never_fail(self):
        diff = compare_benchmarks(
            _stats({"test_perf_new": 5.0}),
            _stats({"test_perf_gone": 0.001}),
            tolerance=0.0,
        )
        assert diff["regressions"] == []
        assert diff["only_current"] == ["perf_new"]
        assert diff["only_baseline"] == ["perf_gone"]


class TestLoadBaseline:
    def _write(self, tmp_path, document):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(document))
        return str(path)

    def test_prefers_current_then_post_pr(self, tmp_path):
        path = self._write(
            tmp_path,
            {
                "post_pr": {"benchmarks": {"perf_a": {"mean_s": 1.0}}},
                "current": {"benchmarks": {"perf_a": {"mean_s": 2.0}}},
            },
        )
        assert load_baseline_benchmarks(path)["perf_a"]["mean_s"] == 2.0

    def test_explicit_section(self, tmp_path):
        path = self._write(
            tmp_path,
            {"post_pr": {"benchmarks": {"perf_a": {"mean_s": 1.0}}}},
        )
        section = load_baseline_benchmarks(path, "post_pr")
        assert section["perf_a"]["mean_s"] == 1.0

    def test_missing_section_raises(self, tmp_path):
        path = self._write(tmp_path, {"notes": "nothing here"})
        with pytest.raises(ValueError, match="no benchmark section"):
            load_baseline_benchmarks(path)


class TestMainCompare:
    """CLI wiring of the regression gate (run_bench stubbed out)."""

    def _run_main(self, tmp_path, monkeypatch, baseline_doc, fresh, argv):
        import repro.bench as bench

        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(json.dumps(baseline_doc))

        def fake_run_bench(targets=None, keyword=None, output="BENCH.json",
                           section="current", pytest_args=None):
            document = {}
            try:
                document = json.loads(open(output).read())
            except OSError:
                pass
            document[section] = {
                "benchmarks": fresh,
                "speedups": {},
            }
            with open(output, "w") as handle:
                json.dump(document, handle)
            return document[section]

        monkeypatch.setattr(bench, "run_bench", fake_run_bench)
        return bench.main(argv + ["--compare", str(baseline_path)])

    def test_regression_exits_nonzero(self, tmp_path, monkeypatch, capsys):
        rc = self._run_main(
            tmp_path,
            monkeypatch,
            {"current": {"benchmarks": _stats({"test_perf_a": 0.001})}},
            _stats({"test_perf_a": 0.002}),
            ["-o", str(tmp_path / "out.json")],
        )
        assert rc == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_clean_run_exits_zero(self, tmp_path, monkeypatch, capsys):
        rc = self._run_main(
            tmp_path,
            monkeypatch,
            {"current": {"benchmarks": _stats({"test_perf_a": 0.001})}},
            _stats({"test_perf_a": 0.001}),
            ["-o", str(tmp_path / "out.json")],
        )
        assert rc == 0
        assert "no regressions" in capsys.readouterr().out

    def test_rolling_baseline_compares_previous_contents(
        self, tmp_path, monkeypatch, capsys
    ):
        # --compare file == --output file: the gate must diff against
        # the baseline as it was BEFORE this run rewrote it.
        import repro.bench as bench

        rolling = tmp_path / "rolling.json"
        rolling.write_text(
            json.dumps(
                {"current": {"benchmarks": _stats({"test_perf_a": 0.001})}}
            )
        )

        def fake_run_bench(targets=None, keyword=None, output="BENCH.json",
                           section="current", pytest_args=None):
            document = json.loads(open(output).read())
            document[section] = {
                "benchmarks": _stats({"test_perf_a": 0.002}),
                "speedups": {},
            }
            with open(output, "w") as handle:
                json.dump(document, handle)
            return document[section]

        monkeypatch.setattr(bench, "run_bench", fake_run_bench)
        rc = bench.main(
            ["-o", str(rolling), "--compare", str(rolling)]
        )
        assert rc == 1  # 2x regression vs the pre-run contents
