"""Tests for the ``repro.bench`` baseline writer (pure parts only —
the subprocess pytest run is exercised by the bench tier itself)."""

import json

from repro.bench import derive_speedups, parse_benchmark_json


def _report(names_means):
    return {
        "benchmarks": [
            {
                "name": name,
                "stats": {
                    "mean": mean,
                    "median": mean,
                    "stddev": 0.1 * mean,
                    "rounds": 10,
                },
            }
            for name, mean in names_means.items()
        ],
        "machine_info": {"python_version": "3.x"},
    }


class TestParse:
    def test_strips_test_prefix_and_flattens(self):
        parsed = parse_benchmark_json(
            _report({"test_perf_san_simulation": 0.002})
        )
        assert parsed == {
            "perf_san_simulation": {
                "mean_s": 0.002,
                "median_s": 0.002,
                "stddev_s": 0.0002,
                "rounds": 10,
            }
        }

    def test_empty_report(self):
        assert parse_benchmark_json({}) == {}


class TestSpeedups:
    def test_legacy_pairing(self):
        results = parse_benchmark_json(
            _report(
                {
                    "test_perf_san_simulation": 0.001,
                    "test_perf_san_simulation_legacy": 0.004,
                }
            )
        )
        assert derive_speedups(results) == {"perf_san_simulation": 4.0}

    def test_dense_expm_pairing(self):
        results = parse_benchmark_json(
            _report(
                {
                    "test_perf_ctmc_transient_1k_uniformized": 0.001,
                    "test_perf_ctmc_transient_1k_dense_expm": 0.75,
                }
            )
        )
        speedups = derive_speedups(results)
        assert speedups["perf_ctmc_transient_1k_uniformized"] == 750.0

    def test_unpaired_benchmarks_have_no_speedup(self):
        results = parse_benchmark_json(
            _report({"test_perf_doe_generation": 0.005})
        )
        assert derive_speedups(results) == {}

    def test_round_trips_as_json(self):
        results = parse_benchmark_json(
            _report({"test_perf_x": 0.5, "test_perf_x_legacy": 1.0})
        )
        payload = {"benchmarks": results, "speedups": derive_speedups(results)}
        assert json.loads(json.dumps(payload)) == payload
