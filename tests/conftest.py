"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks.profiles import stuxnet_like
from repro.diversity.catalog import default_catalog
from repro.scada.topologies import scope_cooling_topology


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def catalog():
    """The default variant catalog."""
    return default_catalog()


@pytest.fixture
def network():
    """A fresh reference cooling-SCADA topology."""
    return scope_cooling_topology()


@pytest.fixture
def threat():
    """A Stuxnet-like threat profile."""
    return stuxnet_like()
