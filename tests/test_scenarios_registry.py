"""Scenario registry: built-in catalog, errors, tag selection."""

import pytest

from repro.scenarios import (
    SCENARIOS,
    Scenario,
    ScenarioRegistry,
    get_scenario,
    register,
)
from repro.scenarios.components import (
    available_catalogs,
    available_plants,
    available_threats,
    available_topologies,
    register_topology,
    resolve_topology,
)


class TestBuiltinCatalog:
    def test_at_least_eight_builtins(self):
        assert len(SCENARIOS) >= 8

    def test_expected_names_present(self):
        names = SCENARIOS.names()
        for expected in (
            "smoke",
            "cooling_stuxnet",
            "cooling_duqu",
            "cooling_flame",
            "cooling_sabotage_physics",
            "smart_grid_stuxnet",
        ):
            assert expected in names

    def test_threat_sweep_covers_all_three_threats(self):
        threats = {s.threat for s in SCENARIOS.by_tag("threat-sweep")}
        assert threats == {"stuxnet_like", "duqu_like", "flame_like"}

    def test_doe_sweep_covers_all_design_kinds(self):
        kinds = {s.design_kind for s in SCENARIOS.by_tag("doe-sweep")}
        assert kinds == {"full", "fractional", "pb"}

    def test_every_builtin_round_trips_and_builds(self):
        for scenario in SCENARIOS:
            assert Scenario.from_dict(scenario.to_dict()) == scenario
            assert scenario.build_network().hosts
            assert scenario.build_threat().name == scenario.threat
            assert scenario.build_catalog().kinds()
            assert scenario.build_campaign_config().horizon > 0

    def test_registry_iteration_sorted(self):
        assert [s.name for s in SCENARIOS] == SCENARIOS.names()
        assert SCENARIOS.names() == sorted(SCENARIOS.names())


class TestRegistryErrors:
    def test_duplicate_name_rejected(self):
        registry = ScenarioRegistry()
        registry.add(Scenario(name="dup"))
        with pytest.raises(ValueError, match="already registered"):
            registry.add(Scenario(name="dup"))

    def test_unknown_name_error_lists_registered(self):
        registry = ScenarioRegistry()
        registry.add(Scenario(name="only_one"))
        with pytest.raises(ValueError, match="only_one"):
            registry.get("missing")

    def test_global_get_scenario_unknown(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            get_scenario("definitely_not_registered")

    def test_register_decorator_duplicate_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            @register
            def smoke_clone():
                return Scenario(name="smoke")

    def test_contains_and_len(self):
        registry = ScenarioRegistry()
        assert len(registry) == 0
        registry.add(Scenario(name="x"))
        assert "x" in registry and "y" not in registry
        assert len(registry) == 1

    def test_by_tag_and_tags(self):
        registry = ScenarioRegistry()
        registry.add(Scenario(name="a", tags=("t1",)))
        registry.add(Scenario(name="b", tags=("t1", "t2")))
        assert [s.name for s in registry.by_tag("t1")] == ["a", "b"]
        assert [s.name for s in registry.by_tag("t2")] == ["b"]
        assert registry.by_tag("t3") == []
        assert registry.tags() == ["t1", "t2"]


class TestComponentRegistries:
    def test_builtin_names(self):
        assert "scope_cooling" in available_topologies()
        assert "smart_grid_feeder" in available_topologies()
        assert set(available_threats()) >= {
            "stuxnet_like", "duqu_like", "flame_like",
        }
        assert "default" in available_catalogs()
        assert set(available_plants()) >= {"cooling", "feeder"}

    def test_resolver_error_names_choices(self):
        with pytest.raises(ValueError, match="scope_cooling"):
            resolve_topology("nope")

    def test_duplicate_component_registration_rejected(self):
        factory = resolve_topology("scope_cooling")
        with pytest.raises(ValueError, match="already registered"):
            register_topology("scope_cooling", factory)
