"""Unit tests for the campaign simulator's probability plumbing."""

import numpy as np
import pytest

from repro.attacks.campaign import AttackCampaign, CampaignConfig
from repro.attacks.profiles import stuxnet_like
from repro.scada.components import ComponentKind, Host, HostRole
from repro.scada.network import SCADANetwork, Zone
from repro.scada.topologies import scope_cooling_topology

K = ComponentKind


@pytest.fixture
def campaign(catalog):
    return AttackCampaign(
        scope_cooling_topology(), catalog, stuxnet_like(),
        CampaignConfig(horizon=50.0),
    )


class TestEntryCandidates:
    def test_enterprise_and_usb_hosts_are_candidates(self, campaign):
        candidates = set(campaign._entry_candidates())
        assert "office_0" in candidates       # enterprise zone
        assert "eng_ws" in candidates         # USB ports in supervisory
        assert "hmi_0" in candidates          # USB ports

    def test_plcs_and_field_devices_excluded(self, campaign):
        candidates = set(campaign._entry_candidates())
        assert "plc_0" not in candidates
        assert "temp_sensor_0" not in candidates

    def test_historian_without_usb_not_a_candidate(self, campaign):
        # DMZ zone, no usb_ports -> not an entry point.
        assert "historian" not in set(campaign._entry_candidates())


class TestProbabilities:
    def test_entry_probability_includes_av(self, campaign):
        # office_0: win_legacy usb 0.9 × av_signature evasion 0.8.
        assert campaign._entry_probability("office_0") == pytest.approx(0.72)

    def test_entry_probability_without_av(self, campaign):
        # hmi_0 has no antivirus slot filled.
        assert campaign._entry_probability("hmi_0") == pytest.approx(0.9)

    def test_escalation_probability(self, campaign):
        assert campaign._escalation_probability("hmi_0") == pytest.approx(
            0.85
        )

    def test_reprogram_probability_combines_firmware_and_stack(
        self, campaign
    ):
        # firmware_common 0.85 × modbus_standard 0.9.
        assert campaign._reprogram_probability("plc_0") == pytest.approx(
            0.765
        )

    def test_resilient_flag_scales_probabilities(self, campaign):
        plain = campaign._entry_probability("office_0")
        campaign.network.host("office_0").resilient = True
        hardened = campaign._entry_probability("office_0")
        assert hardened == pytest.approx(plain * 0.05)

    def test_spoof_probability_from_sensor_variants(self, campaign, catalog):
        assert campaign._spoof_probability() == pytest.approx(0.7)
        for host in campaign.network.hosts_with_role(HostRole.SENSOR):
            host.install(K.SENSOR_MODEL, "sensor_authenticated")
        assert campaign._spoof_probability() == pytest.approx(0.1)

    def test_spoof_probability_without_sensors(self, catalog):
        net = SCADANetwork()
        net.add_host(Host("pc", HostRole.CORPORATE_PC), Zone.ENTERPRISE)
        campaign = AttackCampaign(
            net, catalog, stuxnet_like(), CampaignConfig(horizon=10.0)
        )
        assert campaign._spoof_probability() == 1.0

    def test_detection_noise_raised_by_behavioral_av(self, campaign):
        base = campaign._detection_noise("hmi_0")  # no AV
        campaign.network.host("hmi_0").install(K.ANTIVIRUS, "av_behavioral")
        improved = campaign._detection_noise("hmi_0")
        assert improved > base


class TestDegenerateSystems:
    def test_system_without_entry_points_never_compromised(self, catalog):
        net = SCADANetwork()
        plc = Host("plc", HostRole.PLC)
        plc.install(K.PLC_FIRMWARE, "firmware_common")
        plc.install(K.PROTOCOL_STACK, "modbus_standard")
        net.add_host(plc, Zone.CONTROL)
        sensor = Host("s", HostRole.SENSOR)
        sensor.install(K.SENSOR_MODEL, "sensor_basic")
        net.add_host(sensor, Zone.FIELD)
        net.connect("plc", "s", ["fieldbus"])
        outcomes = AttackCampaign(
            net, catalog, stuxnet_like(),
            CampaignConfig(horizon=50.0, tick_interval=1.0),
        ).run_batch(5, np.random.default_rng(1))
        assert all(not o.success for o in outcomes)
        assert all(not o.compromise_times for o in outcomes)

    def test_immune_entry_host(self, catalog):
        net = SCADANetwork()
        pc = Host("pc", HostRole.CORPORATE_PC, usb_ports=True)
        pc.install(K.OPERATING_SYSTEM, "rtos_minimal")  # usb 0.02
        pc.install(K.ANTIVIRUS, "av_behavioral")        # evasion 0.35
        net.add_host(pc, Zone.ENTERPRISE)
        campaign = AttackCampaign(
            net, catalog, stuxnet_like(), CampaignConfig(horizon=20.0)
        )
        assert campaign._entry_probability("pc") == pytest.approx(
            0.02 * 0.35
        )

    def test_impair_goal_without_plc_never_succeeds(self, catalog):
        net = SCADANetwork()
        pc = Host("pc", HostRole.CORPORATE_PC, usb_ports=True)
        pc.install(K.OPERATING_SYSTEM, "win_legacy")
        net.add_host(pc, Zone.ENTERPRISE)
        outcomes = AttackCampaign(
            net, catalog, stuxnet_like(),
            CampaignConfig(horizon=80.0, tick_interval=1.0),
        ).run_batch(8, np.random.default_rng(2))
        assert all(not o.success for o in outcomes)
        # The entry host still gets compromised.
        assert any(o.compromise_times for o in outcomes)


class TestCompiledTables:
    def test_tables_match_inline_helpers(self, campaign):
        tables = campaign._compile_tables()
        assert campaign._compile_tables() is tables  # memoized
        for host, p in tables.entry:
            assert p == campaign._entry_probability(host)
        for host, p in tables.escalation.items():
            assert p == campaign._escalation_probability(host)
        for host, plans in tables.propagation.items():
            assert plans == campaign._propagation_plans(host)
        assert tables.spoof == campaign._spoof_probability()

    def test_invalidate_tables_recompiles(self, campaign):
        first = campaign._compile_tables()
        campaign.invalidate_tables()
        second = campaign._compile_tables()
        assert second is not first
        assert second.entry == first.entry

    def test_mutation_honoured_after_invalidation(self, campaign):
        rng = np.random.default_rng(0)
        campaign.run(rng)  # compiles the tables
        entry_host = campaign._compile_tables().entry[0][0]
        before = dict(campaign._compile_tables().entry)[entry_host]
        campaign.network.host(entry_host).resilient = True
        campaign.invalidate_tables()
        after = dict(campaign._compile_tables().entry)[entry_host]
        assert after == pytest.approx(before * 0.05)
