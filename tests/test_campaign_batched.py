"""The campaign mega-batch lowering and its wiring.

``CampaignBatchEngine`` vectorizes exfiltration and reconnaissance
campaigns (duqu-like, flame-like goals) as flat array resolutions;
impair-goal campaigns resume the scalar tick loop per lane.  Either
way the public contract holds: ``batch_size=1`` is bit-identical to
the scalar runner path, wider batches are distribution-identical, and
``batch_size`` threads through ``run_batch_table``, the scenario
suite, ``Session`` and ``StudyBuilder``, recorded on
``Provenance.execution`` outside the spec digest.
"""

import math

import numpy as np
import pytest

from repro.api import Session
from repro.attacks.batched import CampaignBatchEngine
from repro.attacks.campaign import AttackCampaign
from repro.scenarios.registry import SCENARIOS, get_scenario
from repro.scenarios.suite import ScenarioSuite

VECTORIZED = {"cooling_duqu", "smart_grid_duqu", "cooling_flame"}


def campaign_for(name: str) -> AttackCampaign:
    scenario = get_scenario(name)
    return AttackCampaign(
        scenario.build_network(),
        scenario.build_catalog(),
        scenario.build_threat(),
        scenario.build_campaign_config(),
    )


def columns(table):
    return {c: np.asarray(table.column(c)) for c in table.columns}


def assert_tables_identical(a, b):
    ca, cb = columns(a), columns(b)
    assert sorted(ca) == sorted(cb)
    for name in ca:
        np.testing.assert_array_equal(ca[name], cb[name], err_msg=name)


class TestEngineLowering:
    def test_exfiltration_and_recon_goals_vectorize(self):
        for name in sorted(VECTORIZED):
            engine = CampaignBatchEngine(campaign_for(name))
            assert engine.vectorized, (name, engine.fallback_reason)

    def test_impair_goal_falls_back(self):
        engine = CampaignBatchEngine(campaign_for("cooling_stuxnet"))
        assert not engine.vectorized
        assert "impair" in engine.fallback_reason

    def test_fallback_rows_match_sequential_scalar_runs(self):
        campaign = campaign_for("smoke")
        engine = CampaignBatchEngine(campaign)
        rows = engine.run_rows(5, np.random.default_rng(3))
        assert rows.shape == (5, 4)
        reference_rng = np.random.default_rng(3)
        for row in rows:
            expected = campaign.run(reference_rng).response_row(
                campaign.config.horizon
            )
            np.testing.assert_array_equal(row, np.asarray(expected))


class TestBitExactness:
    def test_batch_size_one_bit_identical_fallback_scenario(self):
        campaign = campaign_for("smoke")
        scalar = campaign.run_batch_table(6, rng=11)
        batched = campaign.run_batch_table(6, rng=11, batch_size=1)
        assert_tables_identical(scalar, batched)

    def test_batch_size_one_bit_identical_vectorized_scenario(self):
        campaign = campaign_for("cooling_duqu")
        scalar = campaign.run_batch_table(6, rng=11)
        batched = campaign.run_batch_table(6, rng=11, batch_size=1)
        assert_tables_identical(scalar, batched)

    def test_ragged_batch_deterministic(self):
        campaign = campaign_for("cooling_duqu")
        first = campaign.run_batch_table(10, rng=5, batch_size=4)
        again = campaign.run_batch_table(10, rng=5, batch_size=4)
        assert len(first) == 10
        assert_tables_identical(first, again)

    def test_streaming_rows_identical_to_collected(self):
        campaign = campaign_for("cooling_duqu")
        collected = campaign.run_batch_table(20, rng=7, batch_size=8)
        streamed = campaign.run_batch_table(
            20, rng=7, batch_size=8, max_records_in_ram=6
        )
        assert_tables_identical(collected, streamed)


@pytest.mark.scenario
class TestDistributionalIdentity:
    """Every built-in scenario: batched statistics agree with scalar
    within Monte-Carlo error at fixed seeds."""

    REPS = 256

    @pytest.mark.parametrize("name", sorted(SCENARIOS.names()))
    def test_builtin_scenario(self, name):
        campaign = campaign_for(name)
        n = self.REPS
        scalar = columns(campaign.run_batch_table(n, rng=2026))
        batched = columns(
            campaign.run_batch_table(n, rng=8080, batch_size=n)
        )

        p1 = float(scalar["success"].mean())
        p2 = float(batched["success"].mean())
        pooled = (p1 + p2) / 2.0
        se = math.sqrt(max(pooled * (1 - pooled), 1e-4) * 2.0 / n)
        assert abs(p1 - p2) < 4.0 * se + 1e-9, (name, p1, p2)

        r1, r2 = scalar["final_ratio"], batched["final_ratio"]
        spread = max(float(np.std(r1)), float(np.std(r2)), 1e-2)
        assert abs(float(r1.mean()) - float(r2.mean())) < (
            4.0 * spread * math.sqrt(2.0 / n)
        ), (name, r1.mean(), r2.mean())

        for column in ("tta", "ttsf"):
            m1 = scalar[column][np.isfinite(scalar[column])]
            m2 = batched[column][np.isfinite(batched[column])]
            if len(m1) < 30 or len(m2) < 30:
                continue
            spread = max(float(np.std(m1)), float(np.std(m2)), 1e-2)
            se = spread * math.sqrt(1.0 / len(m1) + 1.0 / len(m2))
            assert abs(float(m1.mean()) - float(m2.mean())) < 4.5 * se, (
                name,
                column,
            )


class TestValidation:
    def test_error_messages_match_san_batch(self):
        campaign = campaign_for("smoke")
        with pytest.raises(
            TypeError, match=r"replications must be an integer, got 2\.5"
        ):
            campaign.run_batch_table(2.5)
        with pytest.raises(
            TypeError, match=r"replications must be an integer, got True"
        ):
            campaign.run_batch_table(True)
        with pytest.raises(
            ValueError, match=r"replications must be >= 1, got 0"
        ):
            campaign.run_batch_table(0)
        with pytest.raises(
            ValueError, match=r"batch_size must be >= 1, got 0"
        ):
            campaign.run_batch_table(4, batch_size=0)
        with pytest.raises(
            TypeError, match=r"batch_size must be an integer, got 2\.5"
        ):
            campaign.run_batch_table(4, batch_size=2.5)


class TestSuiteWiring:
    def test_suite_batch_size_one_bit_identical(self):
        baseline = ScenarioSuite(["smoke"]).run(seed=42)
        batched = ScenarioSuite(["smoke"]).run(seed=42, batch_size=1)
        assert (
            baseline.records_by_scenario() == batched.records_by_scenario()
        )
        assert (
            baseline.provenance.spec_digest
            == batched.provenance.spec_digest
        )
        assert baseline.provenance.execution is None
        assert batched.provenance.execution == {"batch_size": 1}

    def test_suite_rejects_bad_batch_size(self):
        with pytest.raises(
            ValueError, match=r"batch_size must be >= 1, got 0"
        ):
            ScenarioSuite(["smoke"]).run(seed=1, batch_size=0)


class TestSessionWiring:
    def test_campaign_batch_size_recorded_on_provenance(self):
        with Session() as session:
            result = session.campaign("smoke", 8, seed=3, batch_size=4)
        assert result.provenance.execution == {"batch_size": 4}
        assert len(result.table) == 8

    def test_campaign_batch_size_one_bit_identical(self):
        with Session() as session:
            scalar = session.campaign("smoke", 8, seed=3)
            batched = session.campaign("smoke", 8, seed=3, batch_size=1)
        assert scalar.provenance.execution is None
        assert (
            scalar.provenance.spec_digest == batched.provenance.spec_digest
        )
        assert_tables_identical(scalar.table, batched.table)

    def test_streaming_campaign_merges_batch_execution(self):
        with Session() as session:
            result = session.campaign(
                "cooling_duqu",
                16,
                seed=5,
                batch_size=8,
                max_records_in_ram=6,
            )
        execution = result.provenance.execution
        assert execution["stream"] is True
        assert execution["batch_size"] == 8

    def test_builder_pins_batch_size(self):
        with Session() as session:
            study = session.study("smoke").batch_size(4)
            result = session.campaign(study, 8, seed=3)
            explicit = session.campaign("smoke", 8, seed=3, batch_size=4)
        assert result.provenance.execution == {"batch_size": 4}
        assert_tables_identical(result.table, explicit.table)

    def test_builder_rejects_bad_batch_size(self):
        with Session() as session:
            with pytest.raises(
                ValueError, match=r"batch_size must be >= 1, got 0"
            ):
                session.study("smoke").batch_size(0)
