"""Unit tests of the repro.telemetry substrate.

Covers the aggregated span tree, the metrics registry, worker-delta
merging, snapshot serialization (JSON + JSON lines), the report
renderer and CLI, the profiling hooks, and the no-op guarantees of the
disabled path.
"""

from __future__ import annotations

import json
import logging
import time

import pytest

from repro.telemetry import (
    HotspotTable,
    MetricsRegistry,
    Telemetry,
    TelemetrySnapshot,
    configure_logging,
    current,
    load_telemetry,
    metric_gauge,
    metric_inc,
    metric_observe,
    trace,
)
from repro.telemetry.core import _NULL_SPAN, SpanNode, emit_event
from repro.telemetry.profiling import PROFILE_MODES, profile_scope


class TestSpanTree:
    def test_record_aggregates_count_total_min_max(self):
        node = SpanNode("work")
        for elapsed in (0.2, 0.1, 0.3):
            node.record(elapsed)
        assert node.count == 3
        assert node.total_s == pytest.approx(0.6)
        assert node.min_s == pytest.approx(0.1)
        assert node.max_s == pytest.approx(0.3)

    def test_children_keep_first_seen_order(self):
        root = SpanNode("run")
        for name in ("b", "a", "c", "a"):
            root.child(name)
        assert list(root.children) == ["b", "a", "c"]

    def test_merge_sums_and_appends_unknown_children(self):
        left = SpanNode("run")
        left.child("x").record(1.0)
        right = SpanNode("run")
        right.child("x").record(2.0)
        right.child("y").record(0.5)
        left.merge(right.to_dict())
        assert list(left.children) == ["x", "y"]
        assert left.children["x"].count == 2
        assert left.children["x"].total_s == pytest.approx(3.0)
        assert left.children["x"].max_s == pytest.approx(2.0)

    def test_nested_spans_build_a_path_tree(self):
        telemetry = Telemetry()
        with telemetry.span("outer"):
            with telemetry.span("inner"):
                pass
            with telemetry.span("inner"):
                pass
        snapshot = telemetry.snapshot()
        paths = snapshot.span_paths()
        assert set(paths) == {"outer", "outer/inner"}
        assert paths["outer"]["count"] == 1
        assert paths["outer/inner"]["count"] == 2

    def test_cursor_restores_after_exception(self):
        telemetry = Telemetry()
        with pytest.raises(RuntimeError):
            with telemetry.span("outer"):
                raise RuntimeError("boom")
        with telemetry.span("sibling"):
            pass
        assert set(telemetry.snapshot().span_paths()) == {"outer", "sibling"}


class TestDisabledFastPath:
    def test_trace_returns_shared_null_span_when_inactive(self):
        assert current() is None
        assert trace("anything") is _NULL_SPAN
        with trace("anything"):
            pass  # must be a no-op

    def test_metric_helpers_are_noops_when_inactive(self):
        metric_inc("x")
        metric_gauge("y", 1.0)
        metric_observe("z", 2.0)
        emit_event("e", data=1)
        # Nothing to assert beyond "did not raise": there is no global
        # registry to leak into.
        assert current() is None

    def test_activation_installs_and_restores(self):
        telemetry = Telemetry()
        assert current() is None
        with telemetry.activate():
            assert current() is telemetry
            with trace("seen"):
                pass
        assert current() is None
        assert "seen" in telemetry.snapshot().span_paths()


class TestMetricsRegistry:
    def test_counters_sum(self):
        registry = MetricsRegistry()
        registry.inc("hits")
        registry.inc("hits", 2.0)
        assert registry.counter("hits") == 3.0
        assert registry.counter("absent") == 0.0

    def test_gauges_track_running_maximum(self):
        registry = MetricsRegistry()
        registry.gauge("rows", 10.0)
        registry.gauge("rows", 50.0)
        registry.gauge("rows", 20.0)
        assert registry.gauges["rows"] == 20.0
        assert registry.gauge_maxima["rows"] == 50.0

    def test_observe_keeps_scalar_summaries(self):
        registry = MetricsRegistry()
        for value in (5.0, 1.0, 3.0):
            registry.observe("wait_ms", value)
        hist = registry.histograms["wait_ms"]
        assert hist == {"count": 3.0, "total": 9.0, "min": 1.0, "max": 5.0}

    def test_merge_combines_all_kinds(self):
        left = MetricsRegistry()
        left.inc("n", 1.0)
        left.gauge("g", 2.0)
        left.observe("h", 1.0)
        right = MetricsRegistry()
        right.inc("n", 4.0)
        right.gauge("g", 9.0)
        right.observe("h", 7.0)
        left.merge(right.to_dict())
        assert left.counter("n") == 5.0
        assert left.gauge_maxima["g"] == 9.0
        assert left.histograms["h"]["count"] == 2.0
        assert left.histograms["h"]["max"] == 7.0


class TestWorkerDelta:
    def test_merge_delta_folds_under_current_cursor(self):
        worker = Telemetry()
        with worker.span("exec.chunk"):
            with worker.span("unit.work"):
                pass
        worker.metrics.inc("unit.calls", 4.0)

        coordinator = Telemetry()
        with coordinator.span("exec.map"):
            coordinator.merge_delta(worker.delta())
        paths = coordinator.snapshot().span_paths()
        assert "exec.map/exec.chunk/unit.work" in paths
        assert coordinator.metrics.counter("unit.calls") == 4.0

    def test_merge_order_determines_child_order(self):
        def delta_with(name):
            worker = Telemetry()
            with worker.span(name):
                pass
            return worker.delta()

        coordinator = Telemetry()
        with coordinator.span("exec.map"):
            coordinator.merge_delta(delta_with("b"))
            coordinator.merge_delta(delta_with("a"))
        paths = list(coordinator.snapshot().span_paths())
        assert paths == ["exec.map", "exec.map/b", "exec.map/a"]

    def test_delta_is_json_serializable(self):
        telemetry = Telemetry()
        with telemetry.span("s"):
            pass
        telemetry.emit_event("job.state", state="running")
        round_tripped = json.loads(json.dumps(telemetry.delta()))
        other = Telemetry()
        other.merge_delta(round_tripped)
        assert other.events[0]["kind"] == "job.state"

    def test_events_get_monotonic_sequence_numbers(self):
        telemetry = Telemetry()
        telemetry.emit_event("a")
        telemetry.emit_event("b")
        assert [e["seq"] for e in telemetry.events] == [0, 1]


class TestSnapshot:
    def _sample(self):
        telemetry = Telemetry(meta={"source": "test"})
        with telemetry.span("suite.run"):
            with telemetry.span("exec.map"):
                time.sleep(0.001)
        telemetry.metrics.inc("cache.hit", 2.0)
        telemetry.metrics.gauge("exec.n_workers", 4.0)
        telemetry.metrics.observe("exec.chunk_wait_ms", 1.5)
        telemetry.emit_event("job.state", state="done")
        return telemetry.snapshot()

    def test_counter_and_total_seconds(self):
        snapshot = self._sample()
        assert snapshot.counter("cache.hit") == 2.0
        assert snapshot.total_seconds("exec.map") > 0.0
        assert snapshot.total_seconds("absent") == 0.0

    def test_dict_round_trip(self):
        snapshot = self._sample()
        clone = TelemetrySnapshot.from_dict(snapshot.to_dict())
        assert clone.to_dict() == snapshot.to_dict()
        assert clone.to_dict()["format"] == "repro.telemetry/1"

    def test_save_and_load(self, tmp_path):
        snapshot = self._sample()
        path = str(tmp_path / "telemetry.json")
        snapshot.save(path)
        loaded = load_telemetry(path)
        assert loaded.counter("cache.hit") == 2.0
        assert "suite.run/exec.map" in loaded.span_paths()

    def test_jsonl_export_and_load(self, tmp_path):
        snapshot = self._sample()
        path = str(tmp_path / "telemetry.jsonl")
        snapshot.export_jsonl(path)
        kinds = [
            json.loads(line)["kind"]
            for line in open(path).read().splitlines()
        ]
        assert kinds[0] == "meta"
        assert {"span", "counter", "gauge", "histogram", "event"} <= set(kinds)
        loaded = load_telemetry(path)
        assert loaded.counter("cache.hit") == 2.0
        assert loaded.total_seconds("suite.run") > 0.0

    def test_load_rejects_non_telemetry_files(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"unrelated": true}\n')
        with pytest.raises(ValueError):
            load_telemetry(str(path))

    def test_render_contains_report_sections(self):
        text = self._sample().render()
        assert "TELEMETRY REPORT" in text
        assert "Phase timings" in text
        assert "suite.run" in text
        assert "cache.hit" in text


class TestProfiling:
    def test_profile_modes_constant(self):
        assert PROFILE_MODES == (None, "cprofile", "tracemalloc")

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError):
            with profile_scope("perf", HotspotTable(), lambda *_: None):
                pass

    def test_cprofile_populates_hotspots(self):
        telemetry = Telemetry(profile="cprofile")
        with telemetry.profile_scope():
            sum(i * i for i in range(2000))
        assert len(telemetry.hotspots) > 0
        top = telemetry.hotspots.top(3)
        assert all("site" in row for row in top)

    def test_tracemalloc_records_peak(self):
        telemetry = Telemetry(profile="tracemalloc")
        with telemetry.profile_scope():
            _ = [0] * 50_000
        assert "profile.peak_kib" in telemetry.metrics.histograms

    def test_hotspot_merge_and_top(self):
        left = HotspotTable()
        left.add("a.py:1(f)", ncalls=2, tottime=0.2, cumtime=0.4)
        right = HotspotTable()
        right.add("a.py:1(f)", ncalls=1, tottime=0.1, cumtime=0.1)
        right.add("b.py:2(g)", ncalls=5, tottime=0.9, cumtime=0.9)
        left.merge(right.to_dict())
        top = left.top(2)
        assert top[0]["site"] == "b.py:2(g)"
        assert left.rows["a.py:1(f)"]["ncalls"] == 3


class TestCli:
    def test_report_command(self, tmp_path, capsys):
        from repro.telemetry.__main__ import main

        telemetry = Telemetry()
        with telemetry.span("suite.run"):
            pass
        path = str(tmp_path / "snap.json")
        telemetry.snapshot().save(path)
        assert main(["report", path]) == 0
        out = capsys.readouterr().out
        assert "TELEMETRY REPORT" in out
        assert "suite.run" in out

    def test_export_command(self, tmp_path):
        from repro.telemetry.__main__ import main

        telemetry = Telemetry()
        telemetry.metrics.inc("n", 3.0)
        src = str(tmp_path / "snap.json")
        dst = str(tmp_path / "snap.jsonl")
        telemetry.snapshot().save(src)
        assert main(["export", src, "-o", dst]) == 0
        assert load_telemetry(dst).counter("n") == 3.0

    def test_missing_file_fails_cleanly(self, tmp_path, capsys):
        from repro.telemetry.__main__ import main

        assert main(["report", str(tmp_path / "nope.json")]) == 2


class TestLogging:
    def test_root_package_has_null_handler(self):
        import repro  # noqa: F401  (import installs the handler)

        handlers = logging.getLogger("repro").handlers
        assert any(isinstance(h, logging.NullHandler) for h in handlers)

    def test_configure_logging_is_idempotent(self):
        logger = logging.getLogger("repro")
        before = list(logger.handlers)
        try:
            first = configure_logging()
            second = configure_logging()
            flagged = [
                h for h in logger.handlers
                if getattr(h, "_repro_verbose_handler", False)
            ]
            assert flagged == [second]
            assert first is not second
        finally:
            for handler in list(logger.handlers):
                if getattr(handler, "_repro_verbose_handler", False):
                    logger.removeHandler(handler)
            assert [
                h for h in logger.handlers if not getattr(
                    h, "_repro_verbose_handler", False
                )
            ] == before
