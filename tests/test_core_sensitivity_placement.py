"""Tests for sensitivity analysis and placement optimization."""

import numpy as np
import pytest

from repro.attacks.campaign import CampaignConfig
from repro.attacks.profiles import stuxnet_like
from repro.core.placement import PlacementProblem
from repro.core.sensitivity import morris, oat_sweep, tornado
from repro.scada.topologies import scope_cooling_topology

TINY = CampaignConfig(horizon=25.0, tick_interval=1.0)


class TestOATSweep:
    def evaluator(self, assignment):
        # Synthetic response: factor "a" matters 10x more than "b".
        return 10.0 * float(assignment["a"]) + 1.0 * float(assignment["b"])

    def test_sweep_covers_all_levels(self):
        points = oat_sweep(
            self.evaluator,
            baseline={"a": 0, "b": 0},
            levels={"a": [0, 1], "b": [0, 1]},
        )
        assert len(points) == 4

    def test_sweep_holds_other_factors_at_baseline(self):
        points = oat_sweep(
            self.evaluator,
            baseline={"a": 0, "b": 0},
            levels={"b": [0, 1]},
        )
        responses = {p.level: p.response for p in points}
        assert responses[1] == pytest.approx(1.0)

    def test_missing_baseline_factor_rejected(self):
        with pytest.raises(ValueError):
            oat_sweep(self.evaluator, baseline={"a": 0}, levels={"z": [1]})

    def test_tornado_ranks_by_range(self):
        points = oat_sweep(
            self.evaluator,
            baseline={"a": 0, "b": 0},
            levels={"a": [0, 1], "b": [0, 1]},
        )
        ranked = tornado(points)
        assert ranked[0][0] == "a"
        assert ranked[0][3] == pytest.approx(10.0)
        assert ranked[1][0] == "b"


class TestMorris:
    def test_influential_parameter_identified(self):
        def f(x):
            return 10.0 * x[0] + 0.1 * x[1]

        results = morris(
            f,
            bounds=[(0, 1), (0, 1)],
            names=["big", "small"],
            n_trajectories=8,
            rng=np.random.default_rng(2),
        )
        assert results[0].name == "big"
        assert results[0].mu_star == pytest.approx(10.0, rel=0.01)

    def test_nonlinear_parameter_has_sigma(self):
        def f(x):
            return x[0] ** 2 + x[1]

        results = morris(
            f,
            bounds=[(0, 1), (0, 1)],
            names=["quad", "lin"],
            n_trajectories=12,
            rng=np.random.default_rng(3),
        )
        by_name = {r.name: r for r in results}
        assert by_name["quad"].sigma > by_name["lin"].sigma

    def test_mismatched_names_rejected(self):
        with pytest.raises(ValueError):
            morris(lambda x: 0.0, bounds=[(0, 1)], names=["a", "b"])


class TestPlacement:
    @pytest.fixture(scope="class")
    def problem(self):
        from repro.diversity.catalog import default_catalog

        return PlacementProblem(
            scope_cooling_topology,
            default_catalog(),
            stuxnet_like(),
            budget=2,
            candidates=["eng_ws", "scada_server", "plc_0", "office_0"],
            replications=12,
            campaign_config=TINY,
        )

    def test_evaluation_cached(self, problem):
        rng = np.random.default_rng(1)
        before = problem.evaluations
        problem.evaluate(["eng_ws", "plc_0"], rng)
        problem.evaluate(["plc_0", "eng_ws"], rng)  # same subset
        assert problem.evaluations == before + 1

    def test_greedy_respects_budget(self, problem):
        result = problem.greedy(np.random.default_rng(2))
        assert len(result.subset) == 2
        assert result.strategy == "greedy"
        assert 0.0 <= result.objective <= 1.0

    def test_exhaustive_finds_global_minimum(self, problem):
        rng = np.random.default_rng(3)
        result = problem.exhaustive(rng)
        # Every evaluated subset must be >= the reported optimum.
        for subset, value in problem._cache.items():
            if len(subset) == 2:
                assert result.objective <= value + 1e-12

    def test_annealing_returns_valid_subset(self, problem):
        result = problem.annealing(np.random.default_rng(4), iterations=10)
        assert len(result.subset) == 2
        assert set(result.subset) <= set(problem.candidates)

    def test_random_placement_averages(self, problem):
        result = problem.random_placement(np.random.default_rng(5), samples=4)
        assert result.strategy == "random"
        assert 0.0 <= result.objective <= 1.0

    def test_budget_validation(self):
        from repro.diversity.catalog import default_catalog

        with pytest.raises(ValueError):
            PlacementProblem(
                scope_cooling_topology,
                default_catalog(),
                stuxnet_like(),
                budget=99,
                candidates=["eng_ws"],
            )
        with pytest.raises(ValueError):
            PlacementProblem(
                scope_cooling_topology,
                default_catalog(),
                stuxnet_like(),
                budget=-1,
            )

    def test_exhaustive_size_guard(self):
        from repro.diversity.catalog import default_catalog

        problem = PlacementProblem(
            scope_cooling_topology,
            default_catalog(),
            stuxnet_like(),
            budget=5,
            replications=2,
            campaign_config=TINY,
        )
        # C(16ish, 5) > 5000 -> must refuse.
        if len(problem.candidates) >= 12:
            with pytest.raises(ValueError):
                problem.exhaustive(np.random.default_rng(1))
