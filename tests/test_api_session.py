"""Session facade: resources, builders, catalogs, results, caching."""

import dataclasses
import json

import pytest

from repro.api import (
    CampaignRunResult,
    Provenance,
    RunResult,
    Session,
    StudyBuilder,
)
from repro.scenarios import SCENARIOS, Scenario
from repro.scenarios.suite import ScenarioRunResult, SuiteResult


class TestConstruction:
    def test_defaults(self):
        session = Session()
        assert session.backend_name == "serial"
        assert session.default_seed == 0
        assert session.cache is None
        assert session.registry.names() == SCENARIOS.names()

    def test_default_registry_is_isolated_from_global(self):
        session = Session()
        assert session.registry is not SCENARIOS
        session.registry.add(
            dataclasses.replace(SCENARIOS.get("smoke"), name="local_only")
        )
        assert "local_only" in session.registry
        assert "local_only" not in SCENARIOS

    def test_explicit_registry_used_as_is(self):
        registry = SCENARIOS.copy()
        session = Session(registry=registry)
        assert session.registry is registry

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            Session(backend="quantum")

    def test_bad_max_parallel_jobs_rejected(self):
        with pytest.raises(ValueError, match="max_parallel_jobs"):
            Session(max_parallel_jobs=0)

    def test_context_manager_closes(self):
        with Session() as session:
            session.run("smoke", seed=1)
        with pytest.raises(RuntimeError, match="closed"):
            session.run("smoke", seed=1)

    def test_catalog_dirs_layer_onto_a_copy(self, tmp_path):
        spec = dataclasses.replace(
            SCENARIOS.get("smoke"), name="from_file", tags=("filecat",)
        )
        (tmp_path / "from_file.json").write_text(spec.to_json())
        session = Session(catalog_dirs=[str(tmp_path)])
        assert "from_file" in session.registry
        # The library-wide catalog is never mutated.
        assert "from_file" not in SCENARIOS
        assert session.scenario("from_file").tags == ("filecat",)


class TestAccessors:
    def test_scenario_resolves_names_and_passes_specs(self):
        session = Session()
        smoke = session.scenario("smoke")
        assert smoke.name == "smoke"
        assert session.scenario(smoke) is smoke
        with pytest.raises(ValueError, match="unknown scenario"):
            session.scenario("nope")

    def test_scenarios_by_tag(self):
        session = Session()
        names = [s.name for s in session.scenarios(tag="threat-sweep")]
        assert "cooling_duqu" in names
        assert len(session.scenarios()) == len(SCENARIOS)


class TestStudyBuilder:
    def test_build_without_overrides_returns_base(self):
        session = Session()
        assert session.study("smoke").build() is session.scenario("smoke")

    def test_override_and_shorthands(self):
        session = Session()
        scenario = (
            session.study("smoke")
            .override(threat_params={"entry_rate": 0.9})
            .replications(5)
            .horizon(10.0)
            .named("smoke_hot")
            .build()
        )
        assert scenario.threat_params == {"entry_rate": 0.9}
        assert scenario.replications == 5
        assert scenario.horizon == 10.0
        assert scenario.name == "smoke_hot"

    def test_builders_are_immutable(self):
        session = Session()
        base = session.study("smoke")
        hot = base.replications(99)
        assert base.build().replications != 99
        assert hot.build().replications == 99

    def test_unknown_field_fails_at_build(self):
        builder = Session().study("smoke").override(warp_factor=9)
        with pytest.raises(ValueError, match="warp_factor"):
            builder.build()

    def test_invalid_value_fails_with_spec_validation(self):
        builder = Session().study("smoke").replications(0)
        with pytest.raises(ValueError, match="replications"):
            builder.build()

    def test_study_of_builder_passes_through(self):
        session = Session()
        builder = session.study("smoke")
        assert session.study(builder) is builder

    def test_pinned_builder_seed_respected_by_session_run(self):
        session = Session(seed=0)
        pinned = session.study("smoke").seed(7)
        via_session = session.run(pinned)
        explicit = session.run("smoke", seed=7)
        assert via_session.records == explicit.records
        # An explicit seed still wins over the pin.
        assert (
            session.run(pinned, seed=8).records
            == session.run("smoke", seed=8).records
        )

    def test_pinned_seed_inside_suite_rejected(self):
        session = Session()
        pinned = session.study("smoke").seed(7)
        with pytest.raises(ValueError, match="pins its own seed"):
            session.run([pinned, "cooling_stuxnet"])


class TestRun:
    def test_single_target_returns_scenario_result(self):
        result = Session().run("smoke", seed=7)
        assert isinstance(result, ScenarioRunResult)
        assert isinstance(result, RunResult)
        assert len(result.table) > 0
        assert "psa" in result.summary

    def test_list_target_returns_suite_result(self):
        result = Session().run(["smoke"], seed=7)
        assert isinstance(result, SuiteResult)
        assert isinstance(result, RunResult)
        assert result.names() == ["smoke"]
        assert set(result.table.columns) == {
            "scenario", "success", "tta", "ttsf", "final_ratio"
        }

    def test_empty_suite_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            Session().run([], seed=7)

    def test_default_seed_policy(self):
        session = Session(seed=123)
        by_policy = session.run("smoke")
        explicit = session.run("smoke", seed=123)
        assert by_policy.records == explicit.records

    def test_none_default_seed_draws_fresh_entropy(self):
        session = Session(seed=None)
        first = session.run("smoke")
        # Entropy is recorded, so even unseeded runs reproduce.
        replay = session.run(
            "smoke", seed=int(first.provenance.entropy)
        )
        assert replay.records == first.records

    def test_provenance_populated(self):
        session = Session()
        result = session.run("smoke", seed=9)
        prov = result.provenance
        assert isinstance(prov, Provenance)
        assert prov.backend == "serial"
        assert prov.source == "scenario_suite"
        assert len(prov.spec_digest) == 64
        assert prov.spawn_key == (0,)
        assert json.loads(json.dumps(prov.to_dict())) == prov.to_dict()

    def test_run_with_cache_warm_equals_cold(self, tmp_path):
        cold = Session(cache_dir=str(tmp_path)).run("smoke", seed=5)
        warm = Session(cache_dir=str(tmp_path)).run("smoke", seed=5)
        assert warm.records == cold.records
        assert warm.provenance.spec_digest == cold.provenance.spec_digest

    def test_shard_merge_equals_full_run(self):
        session = Session()
        names = ["smoke", "cooling_stuxnet"]
        full = session.run(names, seed=3)
        shards = [
            session.run(names, seed=3, shard=(i, 2)) for i in range(2)
        ]
        merged = SuiteResult.merge(shards)
        assert merged.records_by_scenario() == full.records_by_scenario()

    def test_shard_on_single_target_rejected(self):
        session = Session()
        with pytest.raises(ValueError, match="shard"):
            session.run("smoke", seed=3, shard=(1, 2))
        with pytest.raises(ValueError, match="shard"):
            session.submit("smoke", seed=3, shard=(0, 2))

    def test_on_result_hook_sees_provenance(self, tmp_path):
        from repro.scenarios.suite import ScenarioSuite

        seen = []
        suite = ScenarioSuite(["smoke"], cache_dir=str(tmp_path))
        suite.run(seed=4, on_result=lambda r: seen.append(r.provenance))
        suite.run(seed=4, on_result=lambda r: seen.append(r.provenance))
        assert len(seen) == 2  # one executed, one cache hit
        assert all(p is not None for p in seen)
        assert seen[0].spec_digest == seen[1].spec_digest


class TestCampaign:
    def test_campaign_result_shape(self):
        result = Session().campaign("smoke", 6, seed=2)
        assert isinstance(result, CampaignRunResult)
        assert isinstance(result, RunResult)
        assert len(result.table) == 6
        assert result.scenario_name == "smoke"
        assert result.provenance.source == "campaign"

    def test_campaign_accepts_builder(self):
        session = Session()
        builder = session.study("smoke").horizon(10.0)
        result = session.campaign(builder, 4, seed=2)
        assert len(result.table) == 4


class TestResultProtocol:
    def test_all_result_types_satisfy_runresult(self):
        session = Session()
        single = session.run("smoke", seed=1)
        suite = session.run(["smoke"], seed=1)
        campaign = session.campaign("smoke", 3, seed=1)
        study = session.full_study("smoke", seed=1)
        for result in (single, suite, campaign, study):
            assert isinstance(result, RunResult)
            assert len(result.table) >= 1
            assert "psa" in result.summary
            assert result.provenance is not None

    def test_measurement_result_satisfies_runresult(self):
        measurement = Session().full_study("smoke", seed=1).measurement
        assert isinstance(measurement, RunResult)
        assert measurement.provenance.source == "measurement_plan"


class TestSelftest:
    def test_selftest_passes_in_process(self, capsys):
        from repro.api.__main__ import main

        assert main(["--selftest"]) == 0
        out = capsys.readouterr().out
        assert "selftest ok" in out

    def test_no_arguments_prints_help(self, capsys):
        from repro.api.__main__ import main

        assert main([]) == 2
