"""Tests for the SAN simulator."""

import numpy as np
import pytest

from repro.san.builder import SANBuilder
from repro.san.model import SANModel, simple_case
from repro.san.simulator import SANSimulator, SimulationRun
from repro.stats.distributions import Deterministic, Exponential


class TestBasicExecution:
    def test_two_stage_chain_completes(self, rng):
        builder = SANBuilder()
        builder.place("s0", 1).place("s1", 0).place("s2", 0)
        builder.stage("a1", "s0", "s1", rate=5.0)
        builder.stage("a2", "s1", "s2", rate=5.0)
        sim = SANSimulator(builder.build())
        run = sim.simulate(1000.0, rng, stop=lambda m: m["s2"] > 0)
        assert run.stopped
        assert run.final_marking["s2"] == 1

    def test_deterministic_delays_accumulate(self, rng):
        builder = SANBuilder()
        builder.place("s0", 1).place("s1", 0).place("s2", 0)
        builder.timed("a1", Deterministic(2.0), inputs={"s0": 1},
                      outputs={"s1": 1})
        builder.timed("a2", Deterministic(3.0), inputs={"s1": 1},
                      outputs={"s2": 1})
        sim = SANSimulator(builder.build())
        run = sim.simulate(100.0, rng, stop=lambda m: m["s2"] > 0)
        assert run.stop_time == pytest.approx(5.0)

    def test_horizon_truncates(self, rng):
        builder = SANBuilder()
        builder.place("s0", 1).place("s1", 0)
        builder.timed("slow", Deterministic(50.0), inputs={"s0": 1},
                      outputs={"s1": 1})
        sim = SANSimulator(builder.build())
        run = sim.simulate(10.0, rng)
        assert not run.stopped
        assert run.final_marking["s1"] == 0
        assert run.end_time == 10.0

    def test_dead_marking_ends_run(self, rng):
        builder = SANBuilder()
        builder.place("s0", 1).place("s1", 0)
        builder.timed("a", Deterministic(1.0), inputs={"s0": 1},
                      outputs={"s1": 1})
        sim = SANSimulator(builder.build())
        run = sim.simulate(100.0, rng)
        assert run.end_time == pytest.approx(1.0)
        assert len(run.completions) == 1

    def test_stop_predicate_immediately_true(self, rng):
        builder = SANBuilder()
        builder.place("s0", 1)
        builder.timed("a", Exponential(1.0), inputs={"s0": 1},
                      outputs={"s0": 1})
        sim = SANSimulator(builder.build())
        run = sim.simulate(10.0, rng, stop=lambda m: m["s0"] > 0)
        assert run.stop_time == 0.0


class TestCaseSelection:
    def test_case_frequencies_follow_probabilities(self):
        builder = SANBuilder()
        builder.place("src", 1).place("win", 0).place("lose", 0)
        builder.stage("try", "src", "win", rate=1.0,
                      success_probability=0.3, failure_place="lose")
        model = builder.build()
        rng = np.random.default_rng(2)
        wins = 0
        sim = SANSimulator(model)
        n = 3000
        for _ in range(n):
            run = sim.simulate(1000.0, rng)
            wins += run.final_marking["win"]
        assert wins / n == pytest.approx(0.3, abs=0.03)

    def test_completion_labels_recorded(self, rng):
        builder = SANBuilder()
        builder.place("src", 1).place("dst", 0)
        builder.stage("move", "src", "dst", rate=1.0,
                      success_probability=0.5)
        sim = SANSimulator(builder.build())
        run = sim.simulate(1000.0, rng, stop=lambda m: m["dst"] > 0)
        labels = {label for _, _, label in run.completions}
        assert labels <= {"success", "failure"}


class TestInstantaneousActivities:
    def test_instantaneous_fires_in_zero_time(self, rng):
        model = SANModel()
        model.set_initial("a", 1)
        model.add_instantaneous_activity(
            "jump", input_places={"a": 1}, output_places={"b": 1}
        )
        sim = SANSimulator(model)
        run = sim.simulate(10.0, rng)
        assert run.final_marking["b"] == 1
        assert run.completions[0][0] == 0.0

    def test_priority_ordering(self, rng):
        model = SANModel()
        model.set_initial("p", 1)
        model.add_instantaneous_activity(
            "low", input_places={"p": 1}, output_places={"lo": 1},
            priority=1,
        )
        model.add_instantaneous_activity(
            "high", input_places={"p": 1}, output_places={"hi": 1},
            priority=5,
        )
        sim = SANSimulator(model)
        run = sim.simulate(1.0, rng)
        assert run.final_marking["hi"] == 1

    def test_instantaneous_loop_detected(self, rng):
        model = SANModel()
        model.set_initial("a", 1)
        model.add_instantaneous_activity(
            "ping", input_places={"a": 1}, output_places={"b": 1}
        )
        model.add_instantaneous_activity(
            "pong", input_places={"b": 1}, output_places={"a": 1}
        )
        sim = SANSimulator(model)
        with pytest.raises(RuntimeError):
            sim.simulate(1.0, rng, max_completions=100)


class TestAbortSemantics:
    def test_disabled_activation_is_aborted(self, rng):
        # Two activities race for the same token; after one completes the
        # other must not fire.
        model = SANModel()
        model.set_initial("shared", 1)
        model.add_timed_activity(
            "fast", Exponential(100.0), input_places={"shared": 1},
            output_places={"a": 1},
        )
        model.add_timed_activity(
            "slow", Exponential(0.01), input_places={"shared": 1},
            output_places={"b": 1},
        )
        sim = SANSimulator(model)
        run = sim.simulate(10000.0, rng)
        assert run.final_marking["a"] + run.final_marking["b"] == 1

    def test_on_completion_hook_called(self, rng):
        builder = SANBuilder()
        builder.place("s0", 1).place("s1", 0)
        builder.stage("a", "s0", "s1", rate=10.0)
        sim = SANSimulator(builder.build())
        seen = []
        sim.simulate(
            100.0, rng,
            on_completion=lambda t, a, label, m: seen.append((a, label)),
        )
        assert ("a", "success") in seen


class TestBatch:
    def test_batch_size(self, rng):
        builder = SANBuilder()
        builder.place("s0", 1).place("s1", 0)
        builder.stage("a", "s0", "s1", rate=1.0)
        sim = SANSimulator(builder.build())
        runs = sim.batch(10.0, 25, rng)
        assert len(runs) == 25

    def test_zero_replications_rejected(self, rng):
        builder = SANBuilder()
        builder.place("s0", 1)
        builder.stage("a", "s0", "s0", rate=1.0)
        sim = SANSimulator(builder.build())
        with pytest.raises(ValueError):
            sim.batch(10.0, 0, rng)


class TestStoppedProperty:
    """SimulationRun.stopped is the NaN-ness of stop_time (math.isnan)."""

    def _sim(self):
        builder = SANBuilder()
        builder.place("s0", 1).place("s1", 0)
        builder.timed("a", Deterministic(2.0), inputs={"s0": 1},
                      outputs={"s1": 1})
        return SANSimulator(builder.build())

    def test_stopped_true_when_predicate_fires(self, rng):
        run = self._sim().simulate(10.0, rng, stop=lambda m: m["s1"] > 0)
        assert run.stopped
        assert run.stop_time == pytest.approx(2.0)

    def test_stopped_false_when_predicate_never_fires(self, rng):
        run = self._sim().simulate(10.0, rng, stop=lambda m: m["s1"] > 5)
        assert not run.stopped
        assert np.isnan(run.stop_time)

    def test_stopped_false_without_predicate(self, rng):
        run = self._sim().simulate(10.0, rng)
        assert not run.stopped

    def test_stopped_true_on_immediately_satisfied_predicate(self, rng):
        run = self._sim().simulate(10.0, rng, stop=lambda m: m["s0"] > 0)
        assert run.stopped
        assert run.stop_time == 0.0

    def test_direct_construction_with_nan(self):
        from repro.san.model import SANMarking

        run = SimulationRun(SANMarking({}), 1.0, float("nan"))
        assert not run.stopped
        run = SimulationRun(SANMarking({}), 1.0, 0.5)
        assert run.stopped
