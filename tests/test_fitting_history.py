"""Tests for distribution fitting and attack-history calibration."""

import numpy as np
import pytest

from repro.attacks.history import (
    HISTORY_STEPS,
    IncidentRecord,
    calibrate,
    generate_incident_history,
)
from repro.stats.distributions import Exponential, LogNormal, Weibull
from repro.stats.fitting import (
    best_fit,
    empirical_cdf,
    fit_exponential,
    fit_lognormal,
    fit_weibull,
)


class TestFitting:
    def test_exponential_recovers_rate(self, rng):
        samples = Exponential(0.4).sample_many(rng, 5000)
        fit = fit_exponential(samples)
        assert fit.distribution.rate == pytest.approx(0.4, rel=0.1)

    def test_lognormal_recovers_parameters(self, rng):
        samples = LogNormal(1.2, 0.4).sample_many(rng, 5000)
        fit = fit_lognormal(samples)
        assert fit.distribution.mu == pytest.approx(1.2, abs=0.05)
        assert fit.distribution.sigma == pytest.approx(0.4, abs=0.05)

    def test_weibull_recovers_parameters(self, rng):
        samples = Weibull(1.8, 3.0).sample_many(rng, 5000)
        fit = fit_weibull(samples)
        assert fit.distribution.shape == pytest.approx(1.8, rel=0.1)
        assert fit.distribution.scale == pytest.approx(3.0, rel=0.1)

    def test_ks_small_for_correct_family(self, rng):
        samples = Exponential(1.0).sample_many(rng, 2000)
        assert fit_exponential(samples).ks_statistic < 0.05

    def test_ks_large_for_wrong_family(self, rng):
        samples = LogNormal(0.0, 1.5).sample_many(rng, 2000)
        exp_fit = fit_exponential(samples)
        ln_fit = fit_lognormal(samples)
        assert ln_fit.ks_statistic < exp_fit.ks_statistic

    def test_best_fit_selects_true_family(self, rng):
        samples = Weibull(2.5, 1.0).sample_many(rng, 4000)
        fit = best_fit(samples)
        assert isinstance(fit.distribution, Weibull)

    def test_best_fit_exponential_data(self, rng):
        samples = Exponential(2.0).sample_many(rng, 4000)
        fit = best_fit(samples)
        # Weibull with shape~1 is an acceptable tie; the AIC penalty
        # should usually prefer the 1-parameter exponential.
        name = type(fit.distribution).__name__
        assert name in ("Exponential", "Weibull")

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_exponential([1.0])
        with pytest.raises(ValueError):
            fit_exponential([1.0, -2.0])

    def test_empirical_cdf_steps(self):
        points = empirical_cdf([3.0, 1.0, 2.0])
        assert points == [(1.0, pytest.approx(1 / 3)),
                          (2.0, pytest.approx(2 / 3)),
                          (3.0, pytest.approx(1.0))]

    def test_empirical_cdf_empty(self):
        assert empirical_cdf([]) == []

    def test_aic_prefers_likelihood(self, rng):
        samples = Exponential(1.0).sample_many(rng, 1000)
        fit = fit_exponential(samples)
        assert fit.aic == pytest.approx(2 - 2 * fit.log_likelihood)


class TestIncidentHistory:
    def test_generator_shape(self, rng):
        history = generate_incident_history(50, rng)
        assert len(history) == 50
        for record in history:
            # Durations exist exactly for the successful steps.
            for step, ok in record.step_success.items():
                assert (step in record.step_durations) == ok

    def test_incident_stops_at_first_failure(self, rng):
        history = generate_incident_history(200, rng)
        for record in history:
            steps = list(record.step_success)
            assert steps == list(HISTORY_STEPS[: len(steps)])
            for step in steps[:-1]:
                assert record.step_success[step]

    def test_record_validation(self):
        with pytest.raises(ValueError):
            IncidentRecord("x", {"teleport": 1.0}, {"teleport": True})
        with pytest.raises(ValueError):
            IncidentRecord("x", {"entry": -1.0}, {"entry": True})

    def test_generator_validation(self, rng):
        with pytest.raises(ValueError):
            generate_incident_history(0, rng)


class TestCalibration:
    def test_recovers_ground_truth(self):
        rng = np.random.default_rng(9)
        true_rates = {"entry": 0.25, "activation": 2.0, "escalation": 1.5,
                      "propagation": 0.5, "reprogram": 0.8}
        true_probs = {"entry": 0.9, "activation": 1.0, "escalation": 0.7,
                      "propagation": 0.6, "reprogram": 0.5}
        history = generate_incident_history(
            3000, rng, true_rates=true_rates, true_probabilities=true_probs
        )
        calibrated = calibrate(history)
        assert calibrated.success_probabilities["entry"] == pytest.approx(
            0.9, abs=0.03
        )
        assert calibrated.success_probabilities["reprogram"] == pytest.approx(
            0.5, abs=0.06
        )
        assert calibrated.rates["entry"] == pytest.approx(0.25, rel=0.15)
        assert calibrated.rates["escalation"] == pytest.approx(1.5, rel=0.15)

    def test_attempt_counts_decrease_along_chain(self, rng):
        history = generate_incident_history(500, rng)
        calibrated = calibrate(history)
        counts = [calibrated.attempts[s] for s in HISTORY_STEPS]
        assert counts == sorted(counts, reverse=True)

    def test_empty_history_rejected(self):
        with pytest.raises(ValueError):
            calibrate([])

    def test_to_threat_profile(self, rng):
        history = generate_incident_history(800, rng)
        calibrated = calibrate(history)
        threat = calibrated.to_threat_profile()
        assert threat.goal == "impair"
        assert threat.entry_rate == pytest.approx(
            calibrated.rates["entry"]
        )
        assert threat.name.endswith("_calibrated")

    def test_calibrated_threat_runs_in_campaign(self, catalog, rng):
        from repro.attacks.campaign import AttackCampaign, CampaignConfig
        from repro.scada.topologies import scope_cooling_topology

        history = generate_incident_history(300, rng)
        threat = calibrate(history).to_threat_profile()
        outcomes = AttackCampaign(
            scope_cooling_topology(), catalog, threat,
            CampaignConfig(horizon=60.0, tick_interval=0.5),
        ).run_batch(10, rng)
        assert len(outcomes) == 10
