"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacktree.analysis import evaluate
from repro.attacktree.nodes import AndNode, KofNNode, LeafAttack, OrNode
from repro.attacktree.tree import AttackTree
from repro.diversity.metrics import shannon_entropy, simpson_index
from repro.diversity.psa import diverse_chain, identical_chain
from repro.petri.net import Marking
from repro.scada.protocol import (
    FunctionCode,
    ModbusDialect,
    ModbusFrame,
    STANDARD_DIALECT,
    decode_frame,
    encode_frame,
    remapped_dialect,
)
from repro.sim.events import EventQueue
from repro.stats.anova import anova
from repro.stats.ci import proportion_ci


# ---------------------------------------------------------------- sim kernel
@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1,
                max_size=50))
def test_event_queue_pops_sorted(times):
    q = EventQueue()
    for t in times:
        q.schedule(t)
    popped = []
    while q:
        popped.append(q.pop().time)
    assert popped == sorted(times)


@given(
    st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=20)
)
def test_event_queue_fifo_for_equal_times(payloads):
    q = EventQueue()
    for p in payloads:
        q.schedule(1.0, payload=p)
    assert [q.pop().payload for _ in payloads] == payloads


# -------------------------------------------------------------------- petri
@given(
    st.dictionaries(
        st.sampled_from(["p", "q", "r"]),
        st.integers(min_value=0, max_value=100),
    )
)
def test_marking_delta_roundtrip(counts):
    m = Marking(counts)
    delta = {p: 1 for p in counts}
    m2 = m.with_delta(delta).with_delta({p: -1 for p in counts})
    assert m2 == m


# ----------------------------------------------------------------- protocol
frames = st.builds(
    ModbusFrame,
    unit=st.integers(min_value=0, max_value=207),
    function=st.sampled_from(list(FunctionCode)),
    address=st.integers(min_value=0, max_value=0xFFFF),
    values=st.lists(
        st.integers(min_value=0, max_value=0xFFFF), max_size=10
    ).map(tuple),
    count=st.integers(min_value=0, max_value=125),
)


@given(frames)
def test_protocol_roundtrip_standard(frame):
    assert decode_frame(encode_frame(frame, STANDARD_DIALECT),
                        STANDARD_DIALECT) == frame


@given(frames)
def test_protocol_roundtrip_remapped(frame):
    dialect = remapped_dialect("property_variant")
    assert decode_frame(encode_frame(frame, dialect), dialect) == frame


@given(frames)
@settings(max_examples=30)
def test_protocol_cross_dialect_never_silently_misparses(frame):
    # Decoding under a different dialect must either fail or at minimum
    # not produce the same frame with a different meaning silently; the
    # checksum families differ so failure is expected.
    raw = encode_frame(frame, STANDARD_DIALECT)
    other = remapped_dialect("property_variant")
    try:
        decoded = decode_frame(raw, other)
    except Exception:
        return
    assert decoded != frame


# -------------------------------------------------------------- attack tree
probabilities = st.floats(min_value=0.0, max_value=1.0)


@given(st.lists(probabilities, min_size=1, max_size=6))
def test_and_probability_never_exceeds_min(ps):
    leaves = [LeafAttack(f"l{i}", probability=p) for i, p in enumerate(ps)]
    tree = AttackTree(AndNode("root", leaves))
    assert evaluate(tree).probability <= min(ps) + 1e-12


@given(st.lists(probabilities, min_size=1, max_size=6))
def test_or_probability_at_least_max(ps):
    leaves = [LeafAttack(f"l{i}", probability=p) for i, p in enumerate(ps)]
    tree = AttackTree(OrNode("root", leaves))
    metrics = evaluate(tree)
    assert metrics.probability >= max(ps) - 1e-12
    assert metrics.probability <= 1.0 + 1e-12


@given(st.lists(probabilities, min_size=2, max_size=6), st.data())
def test_kofn_monotone_in_k(ps, data):
    leaves = [LeafAttack(f"l{i}", probability=p) for i, p in enumerate(ps)]
    k = data.draw(st.integers(min_value=1, max_value=len(ps) - 1))
    p_k = evaluate(AttackTree(KofNNode("a", leaves, k=k))).probability
    leaves2 = [LeafAttack(f"m{i}", probability=p) for i, p in enumerate(ps)]
    p_k1 = evaluate(AttackTree(KofNNode("b", leaves2, k=k + 1))).probability
    assert p_k1 <= p_k + 1e-9


# ---------------------------------------------------------------- diversity
@given(st.floats(min_value=0.01, max_value=0.99),
       st.integers(min_value=2, max_value=8))
def test_diverse_psa_never_exceeds_identical(pm, n):
    psa_identical, t_identical = identical_chain(pm, n)
    psa_diverse, t_diverse = diverse_chain([pm] * n)
    assert psa_diverse <= psa_identical + 1e-12
    assert t_diverse >= t_identical - 1e-12


@given(
    st.dictionaries(
        st.text(min_size=1, max_size=5),
        st.integers(min_value=0, max_value=50),
        min_size=1,
        max_size=8,
    )
)
def test_diversity_indices_bounds(counts):
    h = shannon_entropy(counts)
    s = simpson_index(counts)
    k = sum(1 for c in counts.values() if c > 0)
    assert 0.0 <= s < 1.0 or math.isclose(s, 0.0)
    assert -1e-12 <= h <= math.log(max(k, 1)) + 1e-9


# -------------------------------------------------------------------- stats
@given(
    st.integers(min_value=0, max_value=50),
    st.integers(min_value=1, max_value=50),
)
def test_proportion_ci_always_valid(successes, extra):
    trials = successes + extra
    ci = proportion_ci(successes, trials)
    assert 0.0 <= ci.low <= ci.estimate <= ci.high <= 1.0


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=1),
            st.integers(min_value=0, max_value=1),
            st.floats(min_value=-100, max_value=100),
        ),
        min_size=8,
        max_size=40,
    )
)
@settings(max_examples=50)
def test_anova_partition_property(rows):
    data = [{"a": a, "b": b, "y": y} for a, b, y in rows]
    levels_a = {r["a"] for r in data}
    levels_b = {r["b"] for r in data}
    if len(levels_a) < 2 or len(levels_b) < 2:
        return
    result = anova(data, "y", ["a", "b"])
    parts = sum(r.ss for r in result.rows) + result.residual_ss
    assert parts == pytest.approx(result.total_ss, rel=1e-6, abs=1e-6)
    for row in result.rows:
        assert row.ss >= -1e-9
