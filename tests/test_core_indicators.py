"""Tests for the security indicators."""

import math

import numpy as np
import pytest

from repro.attacks.campaign import AttackOutcome
from repro.attacks.stages import AttackStage
from repro.core.indicators import (
    CompromisedRatio,
    TimeToAttack,
    TimeToSecurityFailure,
    compute_indicators,
)
from repro.sim.trace import TraceRecorder


def outcome(
    success_time=float("nan"),
    detection_time=float("nan"),
    compromises=None,
    horizon=100.0,
    n_hosts=4,
):
    return AttackOutcome(
        success=not math.isnan(success_time),
        success_time=success_time,
        detection_time=detection_time,
        compromise_times=dict(compromises or {}),
        root_times={},
        sabotage_start=float("nan"),
        stage_times={},
        horizon=horizon,
        n_hosts=n_hosts,
        trace=TraceRecorder(),
    )


class TestTimeToAttack:
    def test_observed_and_censored_split(self):
        outcomes = [outcome(10.0), outcome(20.0), outcome()]
        tta = TimeToAttack.from_outcomes(outcomes)
        assert tta.observed == [10.0, 20.0]
        assert tta.n_censored == 1
        assert tta.n_total == 3

    def test_event_probability(self):
        outcomes = [outcome(10.0), outcome(), outcome(), outcome()]
        tta = TimeToAttack.from_outcomes(outcomes)
        assert tta.event_probability == pytest.approx(0.25)

    def test_conditional_mean(self):
        tta = TimeToAttack.from_outcomes([outcome(10.0), outcome(30.0)])
        ci = tta.conditional_mean()
        assert ci.estimate == pytest.approx(20.0)

    def test_conditional_mean_none_when_all_censored(self):
        tta = TimeToAttack.from_outcomes([outcome(), outcome()])
        assert tta.conditional_mean() is None

    def test_restricted_mean_counts_censored_at_horizon(self):
        tta = TimeToAttack.from_outcomes([outcome(20.0), outcome()])
        assert tta.restricted_mean() == pytest.approx((20.0 + 100.0) / 2)

    def test_restricted_mean_upper_bounded_by_horizon(self):
        tta = TimeToAttack.from_outcomes(
            [outcome(), outcome(), outcome(50.0)]
        )
        assert tta.restricted_mean() <= 100.0

    def test_median_with_majority_censored_is_inf(self):
        tta = TimeToAttack.from_outcomes([outcome(5.0), outcome(), outcome()])
        assert tta.median() == math.inf

    def test_median_observed(self):
        tta = TimeToAttack.from_outcomes(
            [outcome(5.0), outcome(10.0), outcome(20.0)]
        )
        assert tta.median() == 10.0

    def test_event_probability_ci_bounds(self):
        tta = TimeToAttack.from_outcomes([outcome(5.0)] * 3 + [outcome()])
        ci = tta.event_probability_ci()
        assert 0.0 <= ci.low <= ci.estimate <= ci.high <= 1.0

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            TimeToAttack.from_outcomes([])


class TestTimeToSecurityFailure:
    def test_detection_extraction(self):
        outcomes = [outcome(detection_time=3.0), outcome()]
        ttsf = TimeToSecurityFailure.from_outcomes(outcomes)
        assert ttsf.observed == [3.0]
        assert ttsf.n_censored == 1

    def test_ttsf_independent_of_success(self):
        # Detection without success and success without detection.
        outcomes = [
            outcome(detection_time=5.0),
            outcome(success_time=10.0),
        ]
        ttsf = TimeToSecurityFailure.from_outcomes(outcomes)
        assert ttsf.event_probability == pytest.approx(0.5)


class TestCompromisedRatio:
    def test_ratio_curve_monotone(self):
        outcomes = [
            outcome(compromises={"a": 10.0, "b": 30.0}),
            outcome(compromises={"a": 20.0}),
        ]
        ratio = CompromisedRatio.from_outcomes(outcomes, n_points=11)
        assert ratio.mean_ratio == sorted(ratio.mean_ratio)

    def test_final_ratio(self):
        outcomes = [outcome(compromises={"a": 10.0, "b": 20.0}, n_hosts=4)]
        ratio = CompromisedRatio.from_outcomes(outcomes)
        assert ratio.final() == pytest.approx(0.5)

    def test_interpolation(self):
        outcomes = [outcome(compromises={"a": 50.0}, n_hosts=2)]
        ratio = CompromisedRatio.from_outcomes(outcomes, n_points=101)
        assert ratio.at(25.0) == pytest.approx(0.0)
        assert ratio.at(75.0) == pytest.approx(0.5)

    def test_grid_validation(self):
        with pytest.raises(ValueError):
            CompromisedRatio.from_outcomes([outcome()], n_points=1)

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            CompromisedRatio.from_outcomes([])


class TestIndicatorSet:
    def test_summary_row_keys(self):
        outcomes = [
            outcome(success_time=10.0, detection_time=5.0,
                    compromises={"a": 1.0}),
            outcome(),
        ]
        indicators = compute_indicators(outcomes)
        row = indicators.summary_row()
        assert set(row) == {
            "psa",
            "tta_restricted_mean",
            "tta_conditional_mean",
            "ttsf_restricted_mean",
            "detection_probability",
            "final_compromised_ratio",
        }
        assert row["psa"] == pytest.approx(0.5)

    def test_summary_nan_conditional_when_no_success(self):
        indicators = compute_indicators([outcome(), outcome()])
        row = indicators.summary_row()
        assert math.isnan(row["tta_conditional_mean"])
        assert row["psa"] == 0.0
