"""Tests for confidence intervals."""

import numpy as np
import pytest

from repro.stats.ci import bootstrap_ci, mean_ci, proportion_ci


class TestMeanCI:
    def test_interval_contains_estimate(self, rng):
        data = rng.normal(5.0, 1.0, 50)
        ci = mean_ci(data)
        assert ci.low <= ci.estimate <= ci.high

    def test_single_sample_degenerates(self):
        ci = mean_ci([3.0])
        assert ci.low == ci.estimate == ci.high == 3.0

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            mean_ci([])

    def test_invalid_level_rejected(self):
        with pytest.raises(ValueError):
            mean_ci([1.0, 2.0], level=1.5)

    def test_wider_level_gives_wider_interval(self, rng):
        data = rng.normal(0, 1, 30)
        assert mean_ci(data, 0.99).half_width > mean_ci(data, 0.9).half_width

    def test_coverage_is_approximately_nominal(self):
        rng = np.random.default_rng(77)
        covered = 0
        trials = 400
        for _ in range(trials):
            sample = rng.normal(10.0, 2.0, 20)
            if mean_ci(sample, 0.95).contains(10.0):
                covered += 1
        assert 0.90 <= covered / trials <= 0.99

    def test_str_mentions_level(self):
        assert "95%" in str(mean_ci([1.0, 2.0, 3.0]))


class TestProportionCI:
    def test_estimate_is_ratio(self):
        ci = proportion_ci(3, 10)
        assert ci.estimate == pytest.approx(0.3)

    def test_bounds_stay_in_unit_interval(self):
        assert proportion_ci(0, 10).low >= 0.0
        assert proportion_ci(10, 10).high <= 1.0

    def test_zero_successes_interval_excludes_large_p(self):
        ci = proportion_ci(0, 100)
        assert ci.high < 0.1

    def test_impossible_counts_rejected(self):
        with pytest.raises(ValueError):
            proportion_ci(11, 10)
        with pytest.raises(ValueError):
            proportion_ci(-1, 10)

    def test_zero_trials_rejected(self):
        with pytest.raises(ValueError):
            proportion_ci(0, 0)

    def test_more_trials_narrow_the_interval(self):
        assert (
            proportion_ci(50, 100).half_width
            > proportion_ci(500, 1000).half_width
        )


class TestBootstrapCI:
    def test_mean_bootstrap_contains_sample_mean(self, rng):
        data = rng.exponential(2.0, 60)
        ci = bootstrap_ci(data, rng=rng)
        assert ci.low <= data.mean() <= ci.high

    def test_median_statistic(self, rng):
        data = rng.exponential(2.0, 80)
        ci = bootstrap_ci(data, statistic=np.median, rng=rng)
        assert ci.low <= np.median(data) <= ci.high

    def test_empty_sample_rejected(self, rng):
        with pytest.raises(ValueError):
            bootstrap_ci([], rng=rng)

    def test_single_sample_degenerates(self, rng):
        ci = bootstrap_ci([4.2], rng=rng)
        assert ci.low == ci.high == 4.2

    def test_reproducible_with_seeded_rng(self):
        data = list(range(20))
        a = bootstrap_ci(data, rng=np.random.default_rng(1))
        b = bootstrap_ci(data, rng=np.random.default_rng(1))
        assert (a.low, a.high) == (b.low, b.high)
