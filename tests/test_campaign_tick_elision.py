"""Equivalence suite for the campaign tick-elision fast path.

The acceptance guarantee of the elided event loop: for every built-in
scenario and the same seed, ``tick_elision=True`` (the default) and the
retained legacy per-tick loop (``tick_elision=False``) produce
*identical* :class:`~repro.attacks.campaign.AttackOutcome` fields — TTA,
TTSF, the compromised set, stage/alarm times — and identical event
traces.
"""

import math
from dataclasses import replace

import numpy as np
import pytest

from repro.attacks.campaign import (
    AttackCampaign,
    CampaignConfig,
    _HealthyTickTrajectory,
)
from repro.scada.monitoring import SpoofDetector
from repro.scenarios.registry import SCENARIOS


def outcome_signature(outcome):
    """Every outcome field (NaN-safe) plus the full event trace."""
    return (
        outcome.success,
        repr(outcome.success_time),
        repr(outcome.detection_time),
        sorted(outcome.compromise_times.items()),
        sorted(outcome.root_times.items()),
        repr(outcome.sabotage_start),
        sorted((s.value, t) for s, t in outcome.stage_times.items()),
        outcome.horizon,
        outcome.n_hosts,
        outcome.evicted,
        [
            (r.time, r.kind, r.subject, tuple(sorted(r.data.items())))
            for r in outcome.trace
        ],
    )


def signatures(scenario, config, seeds):
    campaign = AttackCampaign(
        scenario.build_network(),
        scenario.build_catalog(),
        scenario.build_threat(),
        config,
    )
    return [
        outcome_signature(campaign.run(np.random.default_rng(seed)))
        for seed in seeds
    ]


def assert_modes_equivalent(scenario, seeds, **config_overrides):
    base = scenario.build_campaign_config()
    legacy = signatures(
        scenario,
        replace(base, tick_elision=False, **config_overrides),
        seeds,
    )
    elided = signatures(
        scenario,
        replace(base, tick_elision=True, **config_overrides),
        seeds,
    )
    assert legacy == elided


class TestAllBuiltinScenariosEquivalent:
    """The headline guarantee, across the full scenario catalog."""

    @pytest.mark.parametrize("name", sorted(SCENARIOS.names()))
    def test_identical_outcomes(self, name):
        assert_modes_equivalent(SCENARIOS.get(name), seeds=range(3))


class TestEdgeCaseEquivalence:
    def test_incident_response_immediate_eviction(self):
        # The response knobs ride on the scenario spec itself (no
        # hand-patched CampaignConfig).
        assert_modes_equivalent(
            replace(
                SCENARIOS.get("cooling_stuxnet"), response_enabled=True
            ),
            seeds=range(4),
        )

    def test_incident_response_delayed_eviction(self):
        # The eviction delay is an rng draw made at detection time —
        # it must land at the same point of the stream in both modes.
        # This is the spec behind the cooling_stuxnet_response built-in.
        assert_modes_equivalent(
            replace(
                SCENARIOS.get("cooling_stuxnet"),
                response_enabled=True,
                response_delay_rate=0.5,
            ),
            seeds=range(4),
        )

    def test_exfiltration_accrual_long_horizon(self):
        # Exfiltration success happens at a tick boundary computed
        # arithmetically on the elided path.
        assert_modes_equivalent(
            SCENARIOS.get("cooling_duqu"),
            seeds=range(3),
            horizon=200.0,
            tick_interval=0.25,
        )

    def test_feeder_plant_healthy_stream(self):
        # The feeder's diurnal demand keeps the healthy signal moving;
        # no frozen-signal finding, different trajectory shape.
        assert_modes_equivalent(
            SCENARIOS.get("smart_grid_duqu"), seeds=range(3)
        )

    def test_tick_interval_longer_than_horizon(self):
        # Zero ticks ever fire; both modes must agree trivially.
        assert_modes_equivalent(
            SCENARIOS.get("smoke"), seeds=range(2), tick_interval=50.0
        )


class _RampPlant:
    """A plant whose healthy reading ramps deterministically.

    Tuned so the master's threshold alarm and damage impairment land on
    the *same* tick: the legacy tick body then runs detect → evict →
    succeed inside one tick, which the elided dispatcher must replay in
    that exact sub-order (an eviction does not stop the rest of the
    tick).
    """

    MONITORED = 7

    def default_registers(self):
        return {self.MONITORED: 0}

    def __init__(self):
        self._level = 0.0

    def step(self, registers, dt):
        self._level += 10.0
        registers[self.MONITORED] = int(self._level)

    def stress_level(self):
        return self._level

    def sabotage(self, registers):
        registers[self.MONITORED] = 999

    @property
    def monitored_register(self):
        return self.MONITORED

    @property
    def alarm_scale(self):
        return 1.0

    @property
    def alarm_threshold(self):
        return 25.0  # trips at the tick where the ramp reaches 30

    def make_damage_model(self):
        from repro.scada.plant.damage import DamageModel

        # Damage explodes the instant stress exceeds 25 → impairment on
        # the same tick the alarm first trips.
        return DamageModel(
            safe_temperature=25.0,
            critical_temperature=26.0,
            critical_rate=1.0,
        )


class TestSameTickEvictionAndSuccess:
    def test_detect_evict_then_succeed_in_one_tick(self):
        # Immediate incident response: detection evicts (sets done) in
        # the same tick that damage impairment completes the goal; the
        # legacy loop records BOTH eviction and success.
        scenario = SCENARIOS.get("cooling_stuxnet")
        catalog, threat = scenario.build_catalog(), scenario.build_threat()
        results = {}
        for elide in (False, True):
            config = CampaignConfig(
                horizon=10.0,
                tick_interval=1.0,
                response_enabled=True,
                plant_factory=_RampPlant,
                tick_elision=elide,
            )
            campaign = AttackCampaign(
                scenario.build_network(), catalog, threat, config
            )
            results[elide] = [
                outcome_signature(campaign.run(np.random.default_rng(s)))
                for s in range(5)
            ]
        assert results[False] == results[True]
        # The scenario really exercises the same-tick corner.
        some = [
            sig for sig in results[False] if sig[0] and sig[9]
        ]  # success AND evicted
        assert some, "expected at least one evicted-yet-successful run"


class TestHealthyTrajectory:
    def test_shared_across_replications(self):
        scenario = SCENARIOS.get("cooling_stuxnet")
        campaign = AttackCampaign(
            scenario.build_network(),
            scenario.build_catalog(),
            scenario.build_threat(),
            scenario.build_campaign_config(),
        )
        campaign.run(np.random.default_rng(0))
        trajectory = campaign._trajectory
        assert trajectory is not None
        campaign.run(np.random.default_rng(1))
        assert campaign._trajectory is trajectory

    def test_invalidate_tables_resets_trajectory(self):
        scenario = SCENARIOS.get("smoke")
        campaign = AttackCampaign(
            scenario.build_network(),
            scenario.build_catalog(),
            scenario.build_threat(),
            scenario.build_campaign_config(),
        )
        campaign.run(np.random.default_rng(0))
        assert campaign._trajectory is not None
        campaign.invalidate_tables()
        assert campaign._trajectory is None
        assert campaign._tables is None

    def test_pickling_drops_trajectory(self):
        import pickle

        scenario = SCENARIOS.get("smoke")
        campaign = AttackCampaign(
            scenario.build_network(),
            scenario.build_catalog(),
            scenario.build_threat(),
            scenario.build_campaign_config(),
        )
        campaign.run(np.random.default_rng(0))
        clone = pickle.loads(pickle.dumps(campaign))
        assert clone._trajectory is None
        # The clone still reproduces outcomes bit-exactly.
        a = outcome_signature(campaign.run(np.random.default_rng(5)))
        b = outcome_signature(clone.run(np.random.default_rng(5)))
        assert a == b

    def test_tick_times_match_float_accumulation(self):
        config = CampaignConfig(horizon=1.0, tick_interval=0.1)
        trajectory = _HealthyTickTrajectory(config)
        expected = []
        t = 0.0
        while True:
            t = t + 0.1
            if t > 1.0:
                break
            expected.append(t)
        assert trajectory.times[1:] == expected
        assert trajectory.n_ticks == len(expected)
        assert trajectory.ticks_at_or_before(0.0) == 0
        assert trajectory.ticks_at_or_before(expected[2]) == 3
        assert trajectory.ticks_at_or_before(1e9) == trajectory.n_ticks

    def test_lazy_scan_extends_on_demand(self):
        scenario = SCENARIOS.get("cooling_stuxnet")
        trajectory = _HealthyTickTrajectory(
            scenario.build_campaign_config()
        )
        assert trajectory.scanned == 0
        trajectory.scan_to(10)
        assert trajectory.scanned == 10
        trajectory.scan_to(5)  # never shrinks
        assert trajectory.scanned == 10
        trajectory.scan_to(10 ** 9)  # clamped to the horizon
        assert trajectory.scanned == trajectory.n_ticks
        assert trajectory.scan_exhausted
        # The cooling plant's steady healthy signal trips the master's
        # frozen-signal check once the detector window fills.
        k, label = trajectory.first_finding
        assert label.startswith("spoof:frozen_signal")
        assert k == 20  # detector window
        assert trajectory.first_impairment is None


class TestRunBatchTable:
    @pytest.fixture(scope="class", name="campaign")
    def campaign_fixture(self):
        scenario = SCENARIOS.get("cooling_stuxnet")
        return AttackCampaign(
            scenario.build_network(),
            scenario.build_catalog(),
            scenario.build_threat(),
            scenario.build_campaign_config(),
        )

    def test_matches_run_batch_rows(self, campaign):
        table = campaign.run_batch_table(8, rng=7)
        outcomes = campaign.run_batch(8, rng=7)
        horizon = campaign.config.horizon
        assert table.columns == ["success", "tta", "ttsf", "final_ratio"]
        rows = [
            tuple(table.row(i)[c] for c in table.columns)
            for i in range(len(table))
        ]
        assert rows == [o.response_row(horizon) for o in outcomes]

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_identical_across_backends(self, campaign, backend):
        from repro.exec import ExperimentRunner

        serial = campaign.run_batch_table(6, rng=11)
        parallel = campaign.run_batch_table(
            6, rng=11, runner=ExperimentRunner(backend, n_workers=2)
        )
        assert serial == parallel

    def test_shared_generator_mode(self, campaign):
        rng_a = np.random.default_rng(3)
        rng_b = np.random.default_rng(3)
        table = campaign.run_batch_table(4, rng=rng_a)
        outcomes = campaign.run_batch(4, rng=rng_b)
        assert table.values("tta") == [
            o.response_row(campaign.config.horizon)[1] for o in outcomes
        ]

    def test_rejects_bad_replications(self, campaign):
        with pytest.raises(ValueError, match="replications"):
            campaign.run_batch_table(0)


class TestSpoofDetectorPreload:
    def test_preload_matches_observed_stream(self):
        stream = [float(v) for v in range(40)]
        observed = SpoofDetector(window=5)
        for value in stream:
            observed.observe(value)
        preloaded = SpoofDetector(window=5)
        preloaded.preload(stream)
        assert list(observed._samples) == list(preloaded._samples)

    def test_preload_short_stream(self):
        detector = SpoofDetector(window=5)
        detector.preload([1.0, 2.0])
        assert list(detector._samples) == [1.0, 2.0]
