"""Fault-tolerant execution: retry, watchdog, degradation, journal.

Two tiers live here.  The fast tests pin the :class:`RetryPolicy`
contract, remote-traceback transport, the ``poll_interval`` knob and
the suite-level failure isolation / run-journal plumbing.  The
``chaos``-marked tests inject real faults (crashes, hangs, worker
kills) through :class:`repro.faults.FaultPlan` and pin the tentpole
invariant: **records with injected faults are bit-identical to records
without**, on every backend — retries re-dispatch the originally
spawned seed material, so fault tolerance can never change results.
"""

import os
import pickle
import threading
import time

import pytest
from concurrent.futures import BrokenExecutor

from repro.exec import (
    ChunkTimeoutError,
    DegradedExecutionWarning,
    ExperimentRunner,
    RemoteTracebackError,
    RetryPolicy,
    TransientWorkerError,
)
from repro.exec.backends import (
    ExecutionCancelled,
    ProcessBackend,
    ThreadBackend,
)
from repro.exec.resilience import (
    LEGACY_POLICY,
    attach_remote_traceback,
    ensure_remote_cause,
)
from repro.faults import FaultInjectionError, FaultPlan

BACKENDS = ["serial", "thread", "process"]

#: Fast-backoff policy for the injection tests: generous attempts, no
#: watchdog unless a test opts in.
FAST_RETRY = RetryPolicy(max_attempts=4, base_delay_s=0.01)


# Module-level work functions so the process backend can pickle them.
def _draw_digest(rng):
    return (float(rng.random()), float(rng.standard_normal()))


def _identity(x):
    return x


def _flaky_once(marker_dir, x):
    """Fails with ValueError the first time each unit runs."""
    marker = os.path.join(marker_dir, f"unit-{x}")
    if not os.path.exists(marker):
        with open(marker, "w"):
            pass
        raise ValueError(f"flaky unit {x}")
    return x


def _raise_value_error(x):
    raise ValueError(f"fatal unit {x}")


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="timeout_s"):
            RetryPolicy(timeout_s=0.0)
        with pytest.raises(ValueError, match="max_pool_respawns"):
            RetryPolicy(max_pool_respawns=-1)

    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(
            base_delay_s=0.1, backoff_factor=2.0, max_delay_s=0.5,
            jitter=0.0,
        )
        delays = [policy.delay_s(n, None) for n in range(5)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_delay_s=0.1, jitter=0.25)
        a = [policy.delay_s(n, policy.jitter_generator()) for n in range(4)]
        b = [policy.delay_s(n, policy.jitter_generator()) for n in range(4)]
        assert a == b  # dedicated seed stream: runs back off identically
        for n, delay in enumerate(a):
            base = policy.delay_s(n, None)
            assert base <= delay <= base * 1.25

    def test_transient_classification(self):
        policy = RetryPolicy()
        assert policy.is_transient(TransientWorkerError("x"))
        assert policy.is_transient(ConnectionResetError())
        assert policy.is_transient(BrokenPipeError())
        assert not policy.is_transient(ValueError("x"))
        widened = RetryPolicy(retry_on=(ValueError,))
        assert widened.is_transient(ValueError("x"))

    def test_legacy_policy_never_retries_worker_errors(self):
        assert LEGACY_POLICY.max_attempts == 1
        assert LEGACY_POLICY.timeout_s is None
        assert LEGACY_POLICY.max_pool_respawns > 0  # pool deaths survived

    def test_to_dict_is_json_plain(self):
        payload = RetryPolicy(retry_on=(ValueError,)).to_dict()
        assert payload["max_attempts"] == 3
        assert payload["retry_on"] == ["ValueError"]
        assert set(payload) == {
            "max_attempts", "base_delay_s", "backoff_factor",
            "max_delay_s", "jitter", "jitter_seed", "timeout_s",
            "retry_on", "max_pool_respawns", "degrade",
        }


class TestRemoteTraceback:
    def _pickled_worker_error(self):
        try:
            raise TypeError("unexpected keyword argument 'bogus_kw'")
        except TypeError as exc:
            stamped = attach_remote_traceback(exc)
        return pickle.loads(pickle.dumps(stamped))

    def test_survives_pickling_and_chains_cause(self):
        exc = ensure_remote_cause(self._pickled_worker_error())
        assert isinstance(exc, TypeError)  # original type preserved
        assert isinstance(exc.__cause__, RemoteTracebackError)
        formatted = exc.__cause__.formatted
        assert "Traceback (most recent call last)" in formatted
        assert "bogus_kw" in formatted

    def test_ensure_remote_cause_is_idempotent(self):
        exc = ensure_remote_cause(self._pickled_worker_error())
        cause = exc.__cause__
        assert ensure_remote_cause(exc).__cause__ is cause

    def test_unstamped_exception_passes_through(self):
        exc = ValueError("local")
        assert ensure_remote_cause(exc) is exc
        assert exc.__cause__ is None


class TestPollInterval:
    def test_positive_validation(self):
        for backend_cls in (ThreadBackend, ProcessBackend):
            with pytest.raises(ValueError, match="poll_interval"):
                backend_cls(poll_interval=0.0)
            with pytest.raises(ValueError, match="poll_interval"):
                backend_cls(poll_interval=-1.0)

    def test_default_matches_historic_50ms(self):
        assert ThreadBackend().poll_interval == pytest.approx(0.05)

    def test_cancel_latency_tracks_poll_interval(self):
        # A worker sets the cancel event and then keeps sleeping; the
        # coordinator must abandon the batch within a few poll periods
        # instead of draining the in-flight chunk.
        backend = ThreadBackend(poll_interval=0.01)
        runner = ExperimentRunner(backend, n_workers=1, chunk_size=1)
        cancel = threading.Event()
        set_at = []

        def arm_then_hang(index):
            set_at.append(time.monotonic())
            cancel.set()
            time.sleep(1.0)
            return index

        with pytest.raises(ExecutionCancelled):
            runner.map(arm_then_hang, [(i,) for i in range(3)],
                       cancel=cancel)
        latency = time.monotonic() - set_at[0]
        assert latency < 0.5  # far below the 1s the chunk still sleeps


class TestRetryExecution:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_injected_crash_is_retried_transparently(self, backend):
        plan = FaultPlan(crash_units={2: 2})
        runner = ExperimentRunner(
            backend, n_workers=2, chunk_size=2,
            retry=FAST_RETRY, fault_plan=plan,
        )
        assert runner.map(_identity, [(i,) for i in range(6)]) == list(
            range(6)
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_retry_on_widens_transient_set(self, backend, tmp_path):
        marker_dir = str(tmp_path)
        policy = RetryPolicy(
            max_attempts=3, base_delay_s=0.01, retry_on=(ValueError,)
        )
        runner = ExperimentRunner(
            backend, n_workers=2, chunk_size=1, retry=policy
        )
        result = runner.map(
            _flaky_once, [(marker_dir, i) for i in range(4)]
        )
        assert result == list(range(4))

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_fatal_error_is_not_retried(self, backend):
        runner = ExperimentRunner(
            backend, n_workers=2, chunk_size=1, retry=FAST_RETRY
        )
        with pytest.raises(ValueError, match="fatal unit"):
            runner.map(_raise_value_error, [(i,) for i in range(3)])

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_transient_budget_exhaustion_raises(self, backend):
        plan = FaultPlan(crash_units={1: 10})  # outlives every attempt
        policy = RetryPolicy(max_attempts=2, base_delay_s=0.01)
        runner = ExperimentRunner(
            backend, n_workers=2, chunk_size=1,
            retry=policy, fault_plan=plan,
        )
        with pytest.raises(FaultInjectionError):
            runner.map(_identity, [(i,) for i in range(3)])

    def test_retried_records_match_fault_free_serial_reference(self):
        reference = ExperimentRunner("serial").run_replications(
            _draw_digest, 12, seed=77
        )
        plan = FaultPlan(crash_units={0: 1, 7: 2})
        runner = ExperimentRunner(
            "serial", retry=FAST_RETRY, fault_plan=plan
        )
        assert runner.run_replications(_draw_digest, 12, seed=77) == (
            reference
        )


class TestSuiteFailureIsolation:
    @pytest.fixture(name="failing_spec")
    def failing_spec_fixture(self):
        import dataclasses

        from repro.scenarios import SCENARIOS

        # The spec validates fine; the network factory explodes when
        # the work unit runs (topology_params are opaque to the spec).
        return dataclasses.replace(
            SCENARIOS.get("smoke"), name="failing",
            topology_params={"bogus_kw": 1},
        )

    def test_on_error_raise_is_the_default(self, failing_spec):
        from repro.scenarios import ScenarioSuite

        with pytest.raises(TypeError, match="bogus_kw"):
            ScenarioSuite(["smoke", failing_spec]).run(seed=7)

    def test_on_error_skip_isolates_the_failure(self, failing_spec):
        from repro.scenarios import ScenarioSuite

        reference = ScenarioSuite(["smoke"]).run(seed=7)
        result = ScenarioSuite(["smoke", failing_spec]).run(
            seed=7, on_error="skip"
        )
        # The healthy scenario completes with its usual records ...
        assert result.records_by_scenario() == (
            reference.records_by_scenario()
        )
        # ... and the failure is a structured record, not an exception.
        assert len(result.errors) == 1
        failure = result.errors[0]
        assert failure.scenario == "failing"
        assert failure.error_type == "TypeError"
        assert "bogus_kw" in failure.message
        assert "Traceback (most recent call last)" in failure.traceback
        assert "failing" in str(failure)

    def test_on_error_validated(self):
        from repro.scenarios import ScenarioSuite

        with pytest.raises(ValueError, match="on_error"):
            ScenarioSuite(["smoke"]).run(seed=7, on_error="ignore")

    def test_session_surfaces_skip_errors(self, failing_spec):
        from repro.api import Session

        with Session() as session:
            result = session.run(
                ["smoke", failing_spec], seed=7, on_error="skip"
            )
        assert [f.scenario for f in result.errors] == ["failing"]

    def test_session_single_target_failure_carries_traceback(
        self, failing_spec
    ):
        from repro.api import Session

        with Session() as session:
            with pytest.raises(RuntimeError, match="bogus_kw") as exc_info:
                session.run(failing_spec, seed=7, on_error="skip")
        assert "captured traceback" in str(exc_info.value)


class TestRunJournal:
    def test_fresh_begin_mark_finish_roundtrip(self, tmp_path):
        from repro.scenarios import RunJournal

        journal = RunJournal(tmp_path / "run.json")
        assert journal.begin("identity-a", total=3) == set()
        journal.mark(0, "cache-key-0")
        journal.mark(1, "cache-key-1")
        reopened = RunJournal(tmp_path / "run.json")
        assert reopened.begin("identity-a", total=3) == {0, 1}
        assert reopened.cache_keys()[0] == "cache-key-0"
        reopened.mark(2, "cache-key-2")
        reopened.finish()
        assert reopened.status == "done"

    def test_different_identity_resets(self, tmp_path):
        from repro.scenarios import RunJournal

        journal = RunJournal(tmp_path / "run.json")
        journal.begin("identity-a", total=2)
        journal.mark(0)
        other = RunJournal(tmp_path / "run.json")
        assert other.begin("identity-b", total=2) == set()

    def test_torn_file_is_tolerated(self, tmp_path):
        from repro.scenarios import RunJournal

        path = tmp_path / "run.json"
        path.write_text('{"format": 1, "truncated')
        journal = RunJournal(path)
        assert journal.begin("identity-a", total=1) == set()

    def test_suite_resumes_after_simulated_crash(self, tmp_path):
        from repro.scenarios import ScenarioSuite

        names = ["smoke", "cooling_duqu"]
        seed = 2013
        cache_dir = str(tmp_path / "cache")
        journal_path = tmp_path / "run.json"
        reference = ScenarioSuite(names).run(seed=seed)

        # "Crash" the run right after the first scenario completes, by
        # cancelling from the per-scenario progress hook.
        cancel = threading.Event()
        with pytest.raises(ExecutionCancelled):
            ScenarioSuite(names, cache_dir=cache_dir).run(
                seed=seed,
                on_result=lambda _result: cancel.set(),
                cancel=cancel,
                journal=journal_path,
            )
        import json

        crashed = json.loads(journal_path.read_text())
        assert crashed["status"] == "running"
        assert "0" in crashed["completed"]

        # Re-invoking the same run resumes from the journal + cache and
        # produces records bit-identical to an uninterrupted run.
        resumed = ScenarioSuite(names, cache_dir=cache_dir).run(
            seed=seed, journal=journal_path
        )
        assert resumed.records_by_scenario() == (
            reference.records_by_scenario()
        )
        assert json.loads(journal_path.read_text())["status"] == "done"


@pytest.mark.chaos
class TestChaosBitIdentity:
    """The tentpole invariant, under real injected faults."""

    REFERENCE = ExperimentRunner("serial").run_replications(
        _draw_digest, 24, seed=2013
    )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_crash_and_hang_faults_do_not_change_records(self, backend):
        plan = FaultPlan(
            crash_units={1: 1, 5: 2}, hang_units={3: 1}, hang_s=1.0
        )
        policy = RetryPolicy(
            max_attempts=4, base_delay_s=0.01, timeout_s=30.0
        )
        runner = ExperimentRunner(
            backend, n_workers=3, chunk_size=2,
            retry=policy, fault_plan=plan,
        )
        result = runner.run_replications(_draw_digest, 24, seed=2013)
        assert result == self.REFERENCE

    def test_watchdog_redispatches_hung_process_chunk(self):
        # The hung worker sleeps far longer than the test is willing to
        # wait; the watchdog abandons the chunk, the pool is respawned
        # (terminating the hung worker) and the retried attempt is
        # clean and bit-identical.
        plan = FaultPlan(hang_units={2: 1}, hang_s=60.0)
        policy = RetryPolicy(
            max_attempts=3, base_delay_s=0.01, timeout_s=1.0
        )
        runner = ExperimentRunner(
            "process", n_workers=2, chunk_size=1,
            retry=policy, fault_plan=plan,
        )
        start = time.monotonic()
        result = runner.run_replications(_draw_digest, 24, seed=2013)
        assert result == self.REFERENCE
        assert time.monotonic() - start < 30.0

    def test_watchdog_redispatches_hung_thread_chunk(self):
        # Thread pools cannot terminate a hung worker, so the hang must
        # be short enough for the final drain; the watchdog still beats
        # it by re-dispatching to a free slot.
        plan = FaultPlan(hang_units={0: 1}, hang_s=2.0)
        policy = RetryPolicy(
            max_attempts=3, base_delay_s=0.01, timeout_s=0.3
        )
        runner = ExperimentRunner(
            "thread", n_workers=3, chunk_size=1,
            retry=policy, fault_plan=plan,
        )
        result = runner.run_replications(_draw_digest, 24, seed=2013)
        assert result == self.REFERENCE

    def test_timeout_budget_exhaustion_raises_chunk_timeout(self):
        plan = FaultPlan(hang_units={0: 10}, hang_s=60.0)
        policy = RetryPolicy(
            max_attempts=2, base_delay_s=0.01, timeout_s=0.5
        )
        runner = ExperimentRunner(
            "process", n_workers=2, chunk_size=1,
            retry=policy, fault_plan=plan,
        )
        with pytest.raises(ChunkTimeoutError):
            runner.run_replications(_draw_digest, 6, seed=2013)

    def test_pool_death_survived_without_retry_policy(self):
        # A worker kill (os._exit) breaks the whole process pool; even
        # the legacy no-policy path respawns it and re-runs the
        # in-flight chunks rather than failing the batch.
        plan = FaultPlan(kill_units={2: 1})
        runner = ExperimentRunner(
            "process", n_workers=2, chunk_size=1, fault_plan=plan
        )
        result = runner.run_replications(_draw_digest, 24, seed=2013)
        assert result == self.REFERENCE

    def test_degrades_to_inline_after_respawn_budget(self):
        plan = FaultPlan(kill_units={2: 3})
        policy = RetryPolicy(
            max_attempts=6, base_delay_s=0.01, max_pool_respawns=1
        )
        runner = ExperimentRunner(
            "process", n_workers=2, chunk_size=1,
            retry=policy, fault_plan=plan,
        )
        with pytest.warns(DegradedExecutionWarning):
            result = runner.run_replications(_draw_digest, 24, seed=2013)
        assert result == self.REFERENCE

    def test_degrade_false_fails_fast_after_budget(self):
        plan = FaultPlan(kill_units={2: 5})
        policy = RetryPolicy(
            max_attempts=6, base_delay_s=0.01,
            max_pool_respawns=0, degrade=False,
        )
        runner = ExperimentRunner(
            "process", n_workers=2, chunk_size=1,
            retry=policy, fault_plan=plan,
        )
        with pytest.raises(BrokenExecutor):
            runner.run_replications(_draw_digest, 12, seed=2013)
