"""Remaining-surface tests: study reports, LHS metadata, outcome curves,
report helpers and catalog consistency."""

import numpy as np
import pytest

from repro.core.report import format_series, format_table
from repro.diversity.catalog import EXPLOIT_ACTIONS, default_catalog
from repro.doe.lhs import latin_hypercube
from repro.scada.components import ROLE_SLOTS, ComponentKind, HostRole
from tests.test_core_indicators import outcome

K = ComponentKind


class TestOutcomeCurves:
    def test_ratio_curve_samples_grid(self):
        o = outcome(compromises={"a": 10.0, "b": 20.0}, n_hosts=4)
        curve = o.compromised_ratio_curve([0.0, 15.0, 25.0])
        assert curve == [(0.0, 0.0), (15.0, 0.25), (25.0, 0.5)]

    def test_ratio_zero_hosts(self):
        o = outcome(n_hosts=0)
        assert o.compromised_ratio_at(50.0) == 0.0


class TestLHSDesignContainer:
    def test_metadata_carries_matrix_and_bounds(self, rng):
        design, matrix = latin_hypercube(
            ["p_entry", "p_root"], [(0.0, 1.0), (0.2, 0.8)], 8, rng=rng
        )
        assert design.n_runs == 8
        assert np.allclose(design.metadata["matrix"], matrix)
        assert design.metadata["bounds"] == [(0.0, 1.0), (0.2, 0.8)]

    def test_runs_indexable_by_sample(self, rng):
        design, matrix = latin_hypercube(["x"], [(0.0, 1.0)], 5, rng=rng)
        for i, run in enumerate(design.runs):
            assert run["x"] == i


class TestReportFormatting:
    def test_format_table_column_alignment_width(self):
        text = format_table(["col", "value"], [("aaa", 1), ("b", 22)])
        lines = text.splitlines()
        assert len({len(line) for line in lines[1:]}) == 1  # equal widths

    def test_format_table_mixed_types(self):
        text = format_table(
            ["name", "x"], [("a", 1.23456), ("b", "text"), ("c", 7)]
        )
        assert "1.235" in text
        assert "text" in text

    def test_format_series_title(self):
        text = format_series("t", ["y"], [(0, 1.0)], title="Series")
        assert text.startswith("Series")


class TestCatalogConsistency:
    def test_every_kind_has_cost_ordered_security(self, catalog):
        """Within each kind, higher cost should not buy worse security."""
        for kind in catalog.kinds():
            variants = catalog.variants_for(kind)
            by_cost = sorted(variants, key=lambda v: v.cost)
            exploitabilities = [v.mean_exploitability for v in by_cost]
            # Monotone non-increasing: you never pay more for less.
            assert all(
                b <= a + 1e-9
                for a, b in zip(exploitabilities, exploitabilities[1:])
            )

    def test_all_actions_documented(self, catalog):
        used = {
            action
            for kind in catalog.kinds()
            for variant in catalog.variants_for(kind)
            for action in variant.exploitability
        }
        assert used <= set(EXPLOIT_ACTIONS)

    def test_role_slots_cover_catalog_kinds(self, catalog):
        slot_kinds = {k for slots in ROLE_SLOTS.values() for k in slots}
        for kind in catalog.kinds():
            assert kind in slot_kinds, (
                f"catalog kind {kind} is not installable in any role"
            )

    def test_default_catalog_deterministic(self):
        a = default_catalog()
        b = default_catalog()
        for kind in a.kinds():
            assert a.names_for(kind) == b.names_for(kind)


class TestStudyReportContents:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.attacks.campaign import CampaignConfig
        from repro.attacks.profiles import stuxnet_like
        from repro.core.study import DiversityStudy
        from repro.scada.topologies import scope_cooling_topology

        study = DiversityStudy(
            network_factory=scope_cooling_topology,
            catalog=default_catalog(),
            threat=stuxnet_like(),
            kinds=[K.OPERATING_SYSTEM, K.ANTIVIRUS],
            design_kind="full",
            two_level=True,
            replications=3,
            campaign_config=CampaignConfig(horizon=40.0, tick_interval=0.5),
        )
        return study.execute(np.random.default_rng(77))

    def test_report_has_all_steps(self, result):
        report = result.report()
        for token in ("Step 1", "Step 2", "Step 3",
                      "Recommended diversification"):
            assert token in report

    def test_report_names_every_factor(self, result):
        report = result.report()
        for factor in result.factors:
            assert factor.name in report

    def test_report_mentions_design_size(self, result):
        assert f"{result.design.n_runs} runs" in result.report()

    def test_measurement_indicator_parity(self, result):
        # Per-run PSA from indicators equals success-record mean.
        for run_index, indicators in enumerate(
            result.measurement.run_indicators
        ):
            records = [
                r for r in result.measurement.records
                if r["run"] == run_index
            ]
            mean_success = np.mean([float(r["success"]) for r in records])
            assert indicators.tta.event_probability == pytest.approx(
                mean_success
            )
