"""JobHandle lifecycle: status, progress, cancellation, errors.

Cancellation and error propagation are exercised across all three
execution backends — the cooperative cancel path lives in
``repro.exec.backends`` and behaves the same whether units run
in-process, on a thread pool or on a process pool.
"""

import dataclasses
import time

import pytest

from repro.api import JobCancelled, JobState, Session
from repro.scenarios import SCENARIOS

BACKENDS = ["serial", "thread", "process"]

#: A scenario whose network factory explodes when the work unit runs
#: (the spec itself validates fine — topology_params are opaque).
FAILING = dataclasses.replace(
    SCENARIOS.get("smoke"), name="failing", topology_params={"bogus_kw": 1}
)


def wait_until(predicate, timeout=30.0, interval=0.005):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestLifecycle:
    def test_submit_runs_to_done_with_full_progress(self):
        with Session() as session:
            job = session.submit("smoke", seed=7)
            result = job.result()
            assert job.status is JobState.DONE
            assert job.done()
            assert job.progress.completed == job.progress.total == 1
            assert job.progress.fraction == 1.0
            assert result.scenario.name == "smoke"

    def test_job_result_bit_identical_to_sync_run(self):
        with Session() as session:
            sync = session.run("smoke", seed=11)
            job = session.submit("smoke", seed=11)
            assert job.result().records == sync.records

    def test_suite_job_counts_scenarios(self):
        with Session() as session:
            job = session.submit(["smoke", "cooling_stuxnet"], seed=1)
            result = job.result()
            assert job.progress.total == 2
            assert job.progress.completed == 2
            assert result.names() == ["smoke", "cooling_stuxnet"]

    def test_campaign_job_counts_replications(self):
        with Session() as session:
            job = session.submit_campaign("smoke", 5, seed=1)
            result = job.result()
            assert job.progress.total == 5
            assert job.progress.completed == 5
            assert len(result.table) == 5

    def test_jobs_listing_and_wait(self):
        with Session() as session:
            job = session.submit("smoke", seed=1)
            assert job in session.jobs
            assert job.wait(timeout=60) is JobState.DONE

    def test_dropped_handles_are_not_pinned_by_the_session(self):
        import gc

        with Session() as session:
            job = session.submit("smoke", seed=1)
            job.result()
            del job
            gc.collect()
            assert session.jobs == []

    def test_warm_cache_suite_still_honors_cancel(self, tmp_path):
        # A fully cached run must not be uncancellable: pre-warm, then
        # cancel before the queued job starts consuming cache hits.
        with Session(cache_dir=str(tmp_path), max_parallel_jobs=1) as session:
            session.run(["smoke"], seed=5)  # warm the cache
            blocker = session.submit_campaign("cooling_stuxnet", 200, seed=1)
            queued = session.submit(["smoke"], seed=5)
            queued._cancel_event.set()  # cancel signal before it runs
            blocker.cancel()
            with pytest.raises(JobCancelled):
                queued.result(timeout=60)
            session.close(cancel_jobs=True)

    def test_descriptions(self):
        with Session() as session:
            job = session.submit("smoke", seed=1)
            assert "smoke" in job.description
            job.result()


class TestQueueing:
    def test_jobs_queue_and_cancel_before_start(self):
        with Session(max_parallel_jobs=1) as session:
            blocker = session.submit_campaign(
                "cooling_stuxnet", 300, seed=1
            )
            queued = session.submit("smoke", seed=1)
            # The first job occupies the only slot; the queued job can
            # be cancelled before it ever starts.
            assert queued.cancel()
            assert queued.status is JobState.CANCELLED
            with pytest.raises(JobCancelled):
                queued.result(timeout=5)
            blocker.cancel()
            session.close(cancel_jobs=True)

    def test_parallel_jobs_run_concurrently(self):
        with Session(max_parallel_jobs=2) as session:
            jobs = [session.submit("smoke", seed=s) for s in (1, 2)]
            results = [job.result() for job in jobs]
            assert all(job.status is JobState.DONE for job in jobs)
            assert results[0].records != results[1].records


@pytest.mark.parametrize("backend", BACKENDS)
class TestCancellation:
    def test_cancel_mid_campaign(self, backend):
        session = Session(
            backend=backend, n_workers=2, chunk_size=1
        )
        try:
            job = session.submit_campaign("cooling_stuxnet", 400, seed=3)
            assert wait_until(lambda: job.progress.completed >= 2)
            assert job.cancel()
            with pytest.raises(JobCancelled):
                job.result(timeout=60)
            assert job.status is JobState.CANCELLED
            assert job.progress.completed < 400
        finally:
            session.close(cancel_jobs=True)

    def test_cancel_is_idempotent_after_done(self, backend):
        with Session(backend=backend, n_workers=1) as session:
            job = session.submit("smoke", seed=1)
            job.result()
            assert not job.cancel()
            assert job.status is JobState.DONE


@pytest.mark.parametrize("backend", BACKENDS)
class TestErrorPropagation:
    def test_failing_unit_propagates_original_error(self, backend):
        with Session(backend=backend, n_workers=1) as session:
            job = session.submit(FAILING, seed=1)
            with pytest.raises(TypeError, match="bogus_kw"):
                job.result(timeout=120)
            assert job.status is JobState.FAILED
            assert job.done()

    def test_failure_mid_suite_reports_failed(self, backend):
        with Session(backend=backend, n_workers=1) as session:
            job = session.submit(["smoke", FAILING], seed=1)
            with pytest.raises(TypeError, match="bogus_kw"):
                job.result(timeout=120)
            assert job.status is JobState.FAILED


class TestRemoteTraceback:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_pool_failure_chains_worker_traceback(self, backend):
        # The worker-side traceback does not survive pickling, so the
        # exec layer re-chains it as a RemoteTracebackError cause; the
        # original exception type is preserved for except/match logic.
        from repro.exec import RemoteTracebackError

        with Session(backend=backend, n_workers=1) as session:
            job = session.submit(FAILING, seed=1)
            with pytest.raises(TypeError, match="bogus_kw") as exc_info:
                job.result(timeout=120)
        cause = exc_info.value.__cause__
        assert isinstance(cause, RemoteTracebackError)
        assert "Traceback (most recent call last)" in cause.formatted
        assert "bogus_kw" in cause.formatted

    def test_failure_traceback_captures_full_chain(self):
        with Session(backend="process", n_workers=1) as session:
            job = session.submit(FAILING, seed=1)
            with pytest.raises(TypeError):
                job.result(timeout=120)
            assert job.status is JobState.FAILED
            assert "bogus_kw" in job.failure_traceback
            # The worker-side frames show up in the coordinator-side
            # post-mortem even though the failure crossed a process
            # boundary.
            assert "Traceback (most recent call last)" in (
                job.failure_traceback
            )

    def test_failure_traceback_is_none_unless_failed(self):
        with Session() as session:
            job = session.submit("smoke", seed=7)
            job.result()
            assert job.status is JobState.DONE
            assert job.failure_traceback is None
