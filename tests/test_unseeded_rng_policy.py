"""The fresh-entropy policy for rng=None entry points.

Mirrors the ``Session`` seed policy: a routine that accepts ``rng=None``
must not silently call ``default_rng()`` — it draws a fresh
``SeedSequence()``, *records* the entropy on the returned object and
builds its generator from it, so every ad-hoc run can be reproduced
bit-exactly from its own output.  Covers the three fixed call sites:
``bootstrap_ci``, ``morris`` and ``latin_hypercube``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.sensitivity import morris
from repro.doe.lhs import latin_hypercube
from repro.stats.ci import bootstrap_ci

SAMPLE = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
BOUNDS = [(0.0, 1.0), (10.0, 20.0)]
NAMES = ["alpha", "beta"]


def evaluator(x: np.ndarray) -> float:
    return float(x[0] * 2.0 + x[1])


class TestBootstrapCi:
    def test_entropy_recorded_when_rng_omitted(self):
        ci = bootstrap_ci(SAMPLE, n_resamples=50)
        assert ci.entropy is not None

    def test_entropy_none_for_caller_generator(self):
        ci = bootstrap_ci(SAMPLE, n_resamples=50, rng=np.random.default_rng(7))
        assert ci.entropy is None

    def test_recorded_entropy_reproduces_interval(self):
        first = bootstrap_ci(SAMPLE, n_resamples=200)
        replay = bootstrap_ci(
            SAMPLE,
            n_resamples=200,
            rng=np.random.default_rng(np.random.SeedSequence(first.entropy)),
        )
        assert (first.low, first.high) == (replay.low, replay.high)

    def test_same_seed_bit_identity(self):
        a = bootstrap_ci(SAMPLE, n_resamples=200, rng=np.random.default_rng(42))
        b = bootstrap_ci(SAMPLE, n_resamples=200, rng=np.random.default_rng(42))
        assert (a.low, a.high) == (b.low, b.high)

    def test_single_value_sample_keeps_entropy_field(self):
        ci = bootstrap_ci([1.0], n_resamples=50)
        assert ci.n == 1
        assert ci.entropy is not None


class TestMorris:
    def test_entropy_recorded_on_every_result(self):
        results = morris(evaluator, BOUNDS, NAMES, n_trajectories=3)
        entropies = {r.entropy for r in results}
        assert len(entropies) == 1
        assert entropies.pop() is not None

    def test_entropy_none_for_caller_generator(self):
        results = morris(
            evaluator, BOUNDS, NAMES, n_trajectories=3,
            rng=np.random.default_rng(7),
        )
        assert all(r.entropy is None for r in results)

    def test_recorded_entropy_reproduces_screening(self):
        first = morris(evaluator, BOUNDS, NAMES, n_trajectories=5)
        replay = morris(
            evaluator, BOUNDS, NAMES, n_trajectories=5,
            rng=np.random.default_rng(
                np.random.SeedSequence(first[0].entropy)
            ),
        )
        assert [(r.name, r.mu_star, r.sigma) for r in first] == [
            (r.name, r.mu_star, r.sigma) for r in replay
        ]

    def test_same_seed_bit_identity(self):
        runs = [
            morris(
                evaluator, BOUNDS, NAMES, n_trajectories=5,
                rng=np.random.default_rng(42),
            )
            for _ in range(2)
        ]
        assert [(r.mu_star, r.sigma) for r in runs[0]] == [
            (r.mu_star, r.sigma) for r in runs[1]
        ]


class TestLatinHypercube:
    def test_entropy_recorded_in_design_metadata(self):
        design, _ = latin_hypercube(NAMES, BOUNDS, n_samples=6)
        assert design.metadata["entropy"] is not None

    def test_entropy_none_for_caller_generator(self):
        design, _ = latin_hypercube(
            NAMES, BOUNDS, n_samples=6, rng=np.random.default_rng(7)
        )
        assert design.metadata["entropy"] is None

    def test_recorded_entropy_reproduces_design(self):
        design, matrix = latin_hypercube(NAMES, BOUNDS, n_samples=6)
        _, replay = latin_hypercube(
            NAMES,
            BOUNDS,
            n_samples=6,
            rng=np.random.default_rng(
                np.random.SeedSequence(design.metadata["entropy"])
            ),
        )
        np.testing.assert_array_equal(matrix, replay)

    def test_same_seed_bit_identity(self):
        matrices = [
            latin_hypercube(
                NAMES, BOUNDS, n_samples=6, rng=np.random.default_rng(42)
            )[1]
            for _ in range(2)
        ]
        np.testing.assert_array_equal(matrices[0], matrices[1])
