"""Cross-module integration tests: full workflows spanning the library."""

import math

import numpy as np
import pytest

from repro.attacks.campaign import AttackCampaign, CampaignConfig
from repro.attacks.history import calibrate, generate_incident_history
from repro.attacks.profiles import stuxnet_like
from repro.core.assessment import assess
from repro.core.measurement import MeasurementPlan
from repro.core.modeling import bayesian_attack_graph_for, san_model_for
from repro.core.portfolio import PortfolioOptimizer
from repro.core.study import DiversityStudy
from repro.doe.design import Factor
from repro.doe.factorial import full_factorial
from repro.san.ctmc import san_to_ctmc
from repro.scada.components import ComponentKind
from repro.scada.plant.feeder import PowerFeeder
from repro.scada.topologies import scope_cooling_topology, smart_grid_feeder

K = ComponentKind
FAST = CampaignConfig(horizon=50.0, tick_interval=0.5)


class TestPortfolioValidatedByCampaign:
    def test_optimized_portfolio_beats_baseline_in_simulation(self, catalog):
        """The analytic portfolio choice must hold up in the full simulator."""
        threat = stuxnet_like()
        optimizer = PortfolioOptimizer(
            scope_cooling_topology, catalog, threat,
            kinds=[K.OPERATING_SYSTEM, K.PLC_FIRMWARE],
        )
        base_choice = optimizer.evaluate(optimizer.cheapest_assignment())
        best = optimizer.exhaustive(base_choice.cost * 2.0)
        assert best is not None

        def psa_of(assignment):
            from repro.diversity.config import configuration_from_run

            network = scope_cooling_topology()
            run = dict(assignment)
            configuration_from_run(network, run).apply(network)
            outcomes = AttackCampaign(
                network, catalog, threat, FAST
            ).run_batch(30, np.random.default_rng(5))
            return sum(o.success for o in outcomes) / len(outcomes)

        psa_base = psa_of(dict(base_choice.assignment))
        psa_best = psa_of(dict(best.assignment))
        assert psa_best <= psa_base

    def test_bag_and_campaign_agree_on_ordering(self, catalog):
        """The Bayesian attack graph's ranking matches the simulator's."""
        threat = stuxnet_like()
        systems = {
            "soft": scope_cooling_topology(),
            "hard": scope_cooling_topology(
                default_os="linux_hardened",
                default_firmware="firmware_signed",
            ),
        }
        bag_p = {}
        campaign_p = {}
        rng = np.random.default_rng(6)
        for label, network in systems.items():
            bag_p[label] = bayesian_attack_graph_for(
                network, catalog, threat
            ).compromise_probability("plc_0")
            outcomes = AttackCampaign(
                network, catalog, threat,
                CampaignConfig(horizon=25.0, tick_interval=0.5),
            ).run_batch(30, rng)
            campaign_p[label] = sum(o.success for o in outcomes) / 30
        assert (bag_p["hard"] < bag_p["soft"]) == (
            campaign_p["hard"] <= campaign_p["soft"]
        )


class TestCalibratedEndToEnd:
    def test_history_to_study(self, catalog):
        """History calibration feeds a complete diversity study."""
        rng = np.random.default_rng(7)
        history = generate_incident_history(400, rng)
        threat = calibrate(history).to_threat_profile()
        study = DiversityStudy(
            network_factory=scope_cooling_topology,
            catalog=catalog,
            threat=threat,
            kinds=[K.OPERATING_SYSTEM, K.PLC_FIRMWARE],
            design_kind="full",
            two_level=True,
            replications=4,
            campaign_config=FAST,
        )
        result = study.execute(rng)
        assert result.design.n_runs == 4
        assert result.assessment.recommended_diversification("tta")

    def test_calibrated_san_is_analyzable(self, catalog):
        rng = np.random.default_rng(8)
        history = generate_incident_history(300, rng)
        threat = calibrate(history).to_threat_profile()
        san = san_model_for(
            scope_cooling_topology(), catalog, threat, give_up=True
        )
        ctmc = san_to_ctmc(san)
        impair = [
            i for i, s in enumerate(ctmc.states) if dict(s).get("impaired")
        ]
        p = ctmc.hitting_probability(impair)[int(np.argmax(ctmc.initial))]
        assert 0.0 <= p <= 1.0


class TestGridStudy:
    def test_full_study_on_smart_grid(self, catalog):
        """The three-step pipeline generalizes to the feeder scenario."""
        study = DiversityStudy(
            network_factory=smart_grid_feeder,
            catalog=catalog,
            threat=stuxnet_like(),
            kinds=[K.OPERATING_SYSTEM, K.PLC_FIRMWARE],
            design_kind="full",
            two_level=True,
            replications=4,
            campaign_config=CampaignConfig(
                horizon=50.0, tick_interval=0.5, plant_factory=PowerFeeder
            ),
        )
        result = study.execute(np.random.default_rng(9))
        assert len(result.measurement.records) == 16
        table = result.assessment.anova_tables["tta"]
        assert sum(table.allocation().values()) == pytest.approx(1.0)


class TestSeedDiscipline:
    def test_full_measurement_reproducible(self, catalog):
        """Identical seeds produce byte-identical measurement records."""
        design = full_factorial(
            [Factor("operating_system", ("win_legacy", "linux_hardened"))]
        )

        def run(seed):
            plan = MeasurementPlan(
                scope_cooling_topology, catalog, stuxnet_like(), design,
                replications=5, campaign_config=FAST,
            )
            return plan.execute(np.random.default_rng(seed)).records

        a = run(13)
        b = run(13)
        c = run(14)
        assert a == b
        assert a != c

    def test_assessment_deterministic(self, catalog):
        design = full_factorial(
            [Factor("operating_system", ("win_legacy", "linux_hardened")),
             Factor("plc_firmware", ("firmware_common", "firmware_signed"))]
        )
        plan = MeasurementPlan(
            scope_cooling_topology, catalog, stuxnet_like(), design,
            replications=5, campaign_config=FAST,
        )
        measurement = plan.execute(np.random.default_rng(21))
        a = assess(measurement).anova_tables["tta"].format_table()
        b = assess(measurement).anova_tables["tta"].format_table()
        assert a == b
