"""Property-style tests for the runner's SeedSequence spawning discipline.

The guarantees under test (see repro/exec/seeding.py):

* no two replication streams ever share a seed;
* the stream of replication ``i`` is a pure function of the root seed
  and ``i`` — chunking or distributing the work differently never
  changes per-replication draws.
"""

import numpy as np
import pytest

from repro.exec import (
    ExperimentRunner,
    as_seed_sequence,
    replication_generators,
    sequence_state,
    spawn_sequences,
)


def _first_draw(rng):
    return float(rng.random())


class TestAsSeedSequence:
    def test_int_seed_roundtrip(self):
        assert as_seed_sequence(42).entropy == 42

    def test_seed_sequence_preserves_identity(self):
        seq = np.random.SeedSequence(7, spawn_key=(3,))
        rebuilt = as_seed_sequence(seq)
        assert sequence_state(rebuilt) == sequence_state(seq)
        assert rebuilt.spawn_key == seq.spawn_key

    def test_seed_sequence_reuse_is_deterministic(self):
        # spawn() advances a SeedSequence's child counter, so a naive
        # pass-through would make the second run differ from the first.
        seq = np.random.SeedSequence(7)
        first = ExperimentRunner().run_replications(_first_draw, 3, seed=seq)
        second = ExperimentRunner().run_replications(_first_draw, 3, seed=seq)
        assert first == second

    def test_partially_spawned_seed_sequence_is_reset(self):
        fresh = np.random.SeedSequence(7)
        used = np.random.SeedSequence(7)
        used.spawn(5)  # advance the child counter
        assert [sequence_state(s) for s in as_seed_sequence(used).spawn(3)] == [
            sequence_state(s) for s in as_seed_sequence(fresh).spawn(3)
        ]

    def test_none_uses_fresh_entropy(self):
        a, b = as_seed_sequence(None), as_seed_sequence(None)
        assert a.entropy != b.entropy

    def test_generator_derivation_is_deterministic(self):
        roots = [
            as_seed_sequence(np.random.default_rng(99)) for _ in range(2)
        ]
        assert sequence_state(roots[0]) == sequence_state(roots[1])

    def test_generator_derivation_advances_the_generator(self):
        rng = np.random.default_rng(99)
        first = as_seed_sequence(rng)
        second = as_seed_sequence(rng)
        assert sequence_state(first) != sequence_state(second)

    def test_rejects_unsupported_types(self):
        with pytest.raises(TypeError):
            as_seed_sequence("42")


class TestSpawnIndependence:
    @pytest.mark.parametrize("count", [1, 2, 7, 64, 257])
    def test_no_two_replication_streams_share_a_seed(self, count):
        states = {
            sequence_state(seq) for seq in spawn_sequences(1234, count)
        }
        assert len(states) == count

    @pytest.mark.parametrize("count", [2, 16, 128])
    def test_first_draws_are_pairwise_distinct(self, count):
        draws = [
            rng.random() for rng in replication_generators(77, count)
        ]
        assert len(set(draws)) == count

    def test_streams_are_independent_of_sibling_count(self):
        # Child i is the same whether 10 or 1000 siblings are spawned.
        few = spawn_sequences(5, 10)
        many = spawn_sequences(5, 1000)
        for a, b in zip(few, many):
            assert sequence_state(a) == sequence_state(b)

    def test_spawn_is_reproducible(self):
        a = [sequence_state(s) for s in spawn_sequences(2026, 20)]
        b = [sequence_state(s) for s in spawn_sequences(2026, 20)]
        assert a == b

    def test_distinct_roots_give_distinct_children(self):
        a = {sequence_state(s) for s in spawn_sequences(1, 50)}
        b = {sequence_state(s) for s in spawn_sequences(2, 50)}
        assert not a & b

    def test_zero_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_sequences(1, 0)


class TestChunkingInvariance:
    """Chunking the work differently never changes per-replication draws."""

    REFERENCE = ExperimentRunner("serial").run_replications(
        _first_draw, 24, seed=31337
    )

    @pytest.mark.parametrize("chunk_size", [1, 2, 3, 5, 24, 100])
    def test_chunk_size_never_changes_draws(self, chunk_size):
        runner = ExperimentRunner(
            "thread", n_workers=3, chunk_size=chunk_size
        )
        assert runner.run_replications(_first_draw, 24, seed=31337) == (
            self.REFERENCE
        )

    @pytest.mark.parametrize("n_workers", [1, 2, 5, 8])
    def test_worker_count_never_changes_draws(self, n_workers):
        runner = ExperimentRunner("thread", n_workers=n_workers)
        assert runner.run_replications(_first_draw, 24, seed=31337) == (
            self.REFERENCE
        )

    def test_splitting_a_batch_matches_one_big_batch(self):
        # Running [0..n) as one batch equals running the same spawned
        # sequences in two manually split halves.
        seqs = spawn_sequences(8, 10)
        whole = [
            _first_draw(np.random.default_rng(s)) for s in seqs
        ]
        halves = [
            _first_draw(np.random.default_rng(s)) for s in seqs[:5]
        ] + [_first_draw(np.random.default_rng(s)) for s in seqs[5:]]
        assert whole == halves
