#!/usr/bin/env bash
# Single CI gate: tier-1 unit suite, facade selftest, perf regression,
# telemetry overhead.
#
#   scripts/ci.sh                 # full gate (tier-1 + selftest + bench)
#   SKIP_BENCH=1 scripts/ci.sh    # fast gate (no benchmark re-run)
#
# The benchmark stage re-times the perf suites and compares medians
# against the persisted baseline (BENCH_PR8.json by default — the most
# recent baseline, so every benchmark incl. the telemetry-enabled suite
# run and the mega-batch pairs is gated) via `python -m repro.bench
# --compare` — non-zero exit on any regression beyond tolerance.
# Override with BENCH_BASELINE=path.
#
# The telemetry overhead gate (`python -m repro.bench.overhead`) times
# the perf_suite_run workload with telemetry off vs on as interleaved
# pairs and fails when the median on/off ratio exceeds the 2% budget —
# paired rounds, because separately-timed medians cannot resolve 2% on
# a noisy shared box.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 test suite =="
python -m pytest -x -q

echo
echo "== repro.api selftest =="
python -m repro.api --selftest

if [[ "${SKIP_BENCH:-0}" != "1" ]]; then
    echo
    echo "== benchmark regression gate =="
    baseline="${BENCH_BASELINE:-BENCH_PR8.json}"
    python -m repro.bench -o /tmp/bench-ci.json --compare "$baseline"

    echo
    echo "== telemetry overhead gate (<= 2%) =="
    python -m repro.bench.overhead
fi

echo
echo "ci.sh: all gates passed"
