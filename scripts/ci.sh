#!/usr/bin/env bash
# Single CI gate: tier-1 unit suite, facade selftest, perf regression.
#
#   scripts/ci.sh                 # full gate (tier-1 + selftest + bench)
#   SKIP_BENCH=1 scripts/ci.sh    # fast gate (no benchmark re-run)
#
# The benchmark stage re-times the perf suites and compares medians
# against the persisted baseline (BENCH_PR6.json by default — the most
# recent baseline, so every benchmark incl. the streaming out-of-core
# sink is gated) via `python -m repro.bench --compare` — non-zero exit
# on any regression beyond tolerance.  Override with BENCH_BASELINE=path.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 test suite =="
python -m pytest -x -q

echo
echo "== repro.api selftest =="
python -m repro.api --selftest

if [[ "${SKIP_BENCH:-0}" != "1" ]]; then
    echo
    echo "== benchmark regression gate =="
    baseline="${BENCH_BASELINE:-BENCH_PR6.json}"
    python -m repro.bench -o /tmp/bench-ci.json --compare "$baseline"
fi

echo
echo "ci.sh: all gates passed"
