#!/usr/bin/env bash
# Single CI gate: tier-1 unit suite, static-analysis lint, chaos tier,
# facade selftest, perf regression, telemetry + retry overhead.
#
#   scripts/ci.sh                 # full gate (tier-1 + chaos + selftest + bench)
#   SKIP_BENCH=1 scripts/ci.sh    # fast gate (no benchmark re-run)
#
# The chaos stage runs the seeded fault-injection tier (worker crashes,
# hangs, kills, corrupted chunk payloads) and pins that records with
# injected faults are bit-identical to records without, on every
# backend.
#
# The benchmark stage re-times the perf suites and compares medians
# against the persisted baseline (BENCH_PR9.json by default — the most
# recent baseline, so every benchmark incl. the telemetry-enabled suite
# run, the retry-armed suite run and the mega-batch pairs is gated)
# via `python -m repro.bench --compare` — non-zero exit on any
# regression beyond tolerance.  Override with BENCH_BASELINE=path.
#
# The overhead gates (`python -m repro.bench.overhead`) time the
# perf_suite_run workload with telemetry (then a retry policy) off vs
# on as interleaved pairs and fail when the median on/off ratio
# exceeds the 2% budget — paired rounds, because separately-timed
# medians cannot resolve 2% on a noisy shared box.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 test suite =="
python -m pytest -x -q

echo
echo "== static analysis lint gate =="
# New findings fail; legacy shared-generator findings live in the
# committed baseline (python -m repro.analysis --update-baseline).
python -m repro.analysis --baseline analysis-baseline.json src examples

echo
echo "== chaos tier (seeded fault injection) =="
python -m pytest -m chaos -q

echo
echo "== repro.api selftest =="
python -m repro.api --selftest

if [[ "${SKIP_BENCH:-0}" != "1" ]]; then
    echo
    echo "== benchmark regression gate =="
    baseline="${BENCH_BASELINE:-BENCH_PR9.json}"
    python -m repro.bench -o /tmp/bench-ci.json --compare "$baseline"

    echo
    echo "== telemetry overhead gate (<= 2%) =="
    python -m repro.bench.overhead --workload telemetry

    echo
    echo "== retry-policy overhead gate (<= 2%) =="
    python -m repro.bench.overhead --workload retry
fi

echo
echo "ci.sh: all gates passed"
